"""Section 5.2's in-text figure: collective-strategy comparison.

The paper reports the Gauss broadcast/reduction journey: a flat
broadcast (119.3M cycles), a binary tree (40.9M), and the final
lop-sided LogP-derived tree (30.1M). This bench reruns Gauss-MP under
all three strategies.
"""

from benchmarks.helpers import banner, run_and_check


def test_collective_strategy_ordering(benchmark):
    totals = run_and_check(benchmark, "gauss_collectives")
    print(banner("Gauss-MP collective strategies (Section 5.2 text)"))
    paper = {"flat": 119.3, "binary": 40.9, "lopsided": 30.1}
    for strategy in ("flat", "binary", "lopsided"):
        print(
            f"{strategy:>9}: {totals[strategy] / 1e6:8.2f}M cycles "
            f"(paper: {paper[strategy]:.1f}M for the collectives alone)"
        )
    assert totals["lopsided"] < totals["binary"] < totals["flat"]
