"""Paper Tables 12 and 14: EM3D breakdowns by phase (init/main/total)."""

from benchmarks.helpers import banner, run_and_check
from repro.core.tables import render_mp_breakdown, render_sm_breakdown


def test_table_12_em3d_mp_breakdown(benchmark):
    pair = run_and_check(benchmark, "em3d")
    print(banner("Table 12: EM3D, Message Passing (init / main / total)"))
    print(render_mp_breakdown(pair, phase="init"))
    print()
    print(render_mp_breakdown(pair, phase="main"))
    print()
    print(render_mp_breakdown(pair))
    # Initialization is computation-bound in MP (paper: 91%).
    init = pair.mp_breakdown(phase="init")
    assert init.computation / init.total > 0.5


def test_table_14_em3d_sm_breakdown(benchmark):
    pair = run_and_check(benchmark, "em3d")
    print(banner("Table 14: EM3D, Shared Memory (init / main / total)"))
    print(render_sm_breakdown(pair, phase="init"))
    print()
    print(render_sm_breakdown(pair, phase="main"))
    print()
    print(render_sm_breakdown(pair))
    # The headline: EM3D-SM substantially slower (paper: 200%).
    ratio = pair.sm_relative_to_mp
    print(f"\nSM relative to MP: {100 * ratio:.0f}% (paper: 200%)")
    assert ratio > 1.5
    # Locks appear in initialization only (paper Section 5.3.2).
    assert pair.sm_breakdown(phase="init").locks > 0
    assert pair.sm_breakdown(phase="main").locks == 0
