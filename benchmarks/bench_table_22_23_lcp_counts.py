"""Paper Tables 22 and 23: LCP event counts, synchronous vs asynchronous."""

from benchmarks.helpers import banner, run_and_check
from repro.api import run_raw
from repro.core.tables import render_mp_counts, render_sm_counts
from repro.stats.report import format_comparison, human_quantity


def test_table_22_lcp_mp_counts(benchmark):
    async_pair = run_and_check(benchmark, "alcp")
    sync_pair = run_raw("lcp")
    print(banner("Table 22: LCP-MP event counts, sync vs async"))
    sync_counts, async_counts = sync_pair.mp_counts(), async_pair.mp_counts()
    print(
        format_comparison(
            "LCP Message Passing",
            ["Synchronous", "Asynchronous"],
            [
                ("Channel writes",
                 [human_quantity(sync_counts.channel_writes),
                  human_quantity(async_counts.channel_writes)]),
                ("Active messages",
                 [human_quantity(sync_counts.active_messages),
                  human_quantity(async_counts.active_messages)]),
                ("Bytes transmitted",
                 [human_quantity(sync_counts.bytes_transmitted),
                  human_quantity(async_counts.bytes_transmitted)]),
                ("Comp cycles / data byte",
                 [f"{sync_counts.comp_cycles_per_data_byte:.1f}",
                  f"{async_counts.comp_cycles_per_data_byte:.1f}"]),
            ],
        )
    )
    # Channel writes balloon (paper: 220 -> 5,425) per unit of progress.
    sync_per_step = sync_counts.channel_writes / sync_pair.extra["mp_steps"]
    async_per_step = async_counts.channel_writes / async_pair.extra["mp_steps"]
    assert async_per_step > 3 * sync_per_step
    # Intensity collapses (paper: 29 -> 6).
    assert (
        async_counts.comp_cycles_per_data_byte
        < 0.6 * sync_counts.comp_cycles_per_data_byte
    )


def test_table_23_lcp_sm_counts(benchmark):
    async_pair = run_and_check(benchmark, "alcp")
    sync_pair = run_raw("lcp")
    print(banner("Table 23: LCP-SM event counts, sync vs async"))
    print(render_sm_counts(sync_pair))
    print()
    print(render_sm_counts(async_pair))
    sync_counts, async_counts = sync_pair.sm_counts(), async_pair.sm_counts()
    # Per step of progress, async moves more bytes (paper: 3.7M -> 17.0M
    # in 43 vs 34 steps).
    sync_per_step = sync_counts.bytes_transmitted / sync_pair.extra["sm_steps"]
    async_per_step = async_counts.bytes_transmitted / async_pair.extra["sm_steps"]
    print(f"\nbytes/step: {async_per_step:.0f} async vs {sync_per_step:.0f} sync")
    assert async_per_step > 1.5 * sync_per_step
    # Intensity collapses (paper: 26 -> 4).
    assert (
        async_counts.comp_cycles_per_data_byte
        < 0.6 * sync_counts.comp_cycles_per_data_byte
    )
