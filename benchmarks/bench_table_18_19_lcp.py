"""Paper Tables 18 and 19: synchronous LCP time breakdowns."""

from benchmarks.helpers import banner, run_and_check
from repro.core.tables import render_mp_breakdown, render_sm_breakdown


def test_table_18_lcp_mp_breakdown(benchmark):
    pair = run_and_check(benchmark, "lcp")
    print(banner("Table 18: LCP, Message Passing (synchronous)"))
    print(render_mp_breakdown(pair))
    mp = pair.mp_breakdown()
    # Computation dominates but communication is visible (paper: 73%/27%).
    assert mp.computation / mp.total > 0.5
    assert mp.communication > 0


def test_table_19_lcp_sm_breakdown(benchmark):
    pair = run_and_check(benchmark, "lcp")
    print(banner("Table 19: LCP, Shared Memory (synchronous)"))
    print(render_sm_breakdown(pair))
    print(f"\nconverged in {pair.extra['sm_steps']} steps (paper: 43)")
    sm = pair.sm_breakdown()
    # SM pays both cache misses and synchronization (paper: 20% + 17%).
    assert sm.data_access > 0
    assert sm.synchronization > 0
    # MP is modestly faster (paper: LCP-MP at 86% of LCP-SM).
    assert pair.mp_relative_to_sm < 1.05
