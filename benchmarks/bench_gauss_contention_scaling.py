"""Section 5.2's scalability remark: directory contention vs. machine size.

The paper measures an average 200-cycle directory queue delay and a
700-cycle average shared miss (vs. ~250 idle) in Gauss-SM at 32
processors, and warns the delays "will become untenable for larger
systems". This bench sweeps the processor count at a fixed problem
size and watches both quantities grow.
"""

from benchmarks.helpers import banner, run_and_check


def test_directory_contention_scaling(benchmark):
    results = run_and_check(benchmark, "gauss_contention")
    print(banner("Gauss-SM directory contention vs. processors"))
    print(f"{'procs':>6}{'mean queue delay':>18}{'avg miss cost':>15}")
    print("-" * 40)
    for nprocs in sorted(results):
        row = results[nprocs]
        print(f"{nprocs:>6}{row['queue_delay']:>17.0f}c{row['miss_cost']:>14.0f}c")
    print("\npaper at 32 procs: ~200-cycle queue delay, ~700-cycle miss "
          "(~250 idle)")
    procs = sorted(results)
    assert results[procs[0]]["queue_delay"] < results[procs[-1]]["queue_delay"]
