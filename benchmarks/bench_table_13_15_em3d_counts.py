"""Paper Tables 13 and 15: EM3D main-loop event counts."""

from benchmarks.helpers import banner, run_and_check
from repro.core.tables import render_mp_counts, render_sm_counts


def test_table_13_em3d_mp_main_counts(benchmark):
    pair = run_and_check(benchmark, "em3d")
    print(banner("Table 13: EM3D-MP event counts (main loop only)"))
    print(render_mp_counts(pair, phase="main"))
    counts = pair.mp_counts(phase="main")
    # Bulk transfer: a couple of channel writes per half-step move what
    # shared memory pays hundreds of misses for (paper: 200 writes).
    assert 0 < counts.channel_writes < counts.local_misses + 10_000
    # Data dominates control on bulk channels (paper: 1.6M vs 0.4M).
    assert counts.data_bytes > 2 * counts.control_bytes


def test_table_15_em3d_sm_main_counts(benchmark):
    pair = run_and_check(benchmark, "em3d")
    print(banner("Table 15: EM3D-SM event counts (main loop only)"))
    print(render_sm_counts(pair, phase="main"))
    mp = pair.mp_counts(phase="main")
    sm = pair.sm_counts(phase="main")
    # The paper's communication-intensity collapse: EM3D-SM moves an
    # order of magnitude more bytes for the same computation (22.9M vs
    # 2.0M; cycles/data byte 2 vs 20).
    assert sm.bytes_transmitted > 3 * mp.bytes_transmitted
    assert sm.comp_cycles_per_data_byte < mp.comp_cycles_per_data_byte
    assert sm.remote_fraction > 0.8  # paper: 97% remote
