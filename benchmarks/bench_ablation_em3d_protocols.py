"""Design-choice ablation: the protocol fixes of Section 5.3.4.

The paper diagnoses EM3D-SM's loss as the invalidation protocol's
4-message producer-consumer exchange and sketches two fixes: consumers
could *flush* their copies (one replacement message instead of a
2-message invalidation), and a *bulk update protocol* could carry new
values in a single message — citing Falsafi et al.'s result that the
latter made EM3D-SM perform equivalently to EM3D-MP. DESIGN.md lists
this as a design-choice ablation; this bench measures both fixes.
"""

from benchmarks.helpers import banner, run_and_check


def test_ablation_em3d_protocol_extensions(benchmark):
    results = run_and_check(benchmark, "em3d_protocols")
    mp_main = results["mp"].board.mean_total(phase="main")
    print(banner("EM3D-SM protocol ablation (Section 5.3.4)"))
    print(f"{'configuration':<22}{'main loop':>12}{'vs MP':>8}"
          f"{'invals recvd':>14}{'write faults':>14}")
    print("-" * 70)
    print(f"{'EM3D-MP (baseline)':<22}{mp_main / 1e3:>10.0f}K{1.0:>7.1f}x"
          f"{'—':>14}{'—':>14}")
    for variant in ("base", "flush", "update"):
        board = results[variant].board
        main = board.mean_total(phase="main")
        invals = board.mean_count("invalidations_received", phase="main")
        faults = board.mean_count("write_faults", phase="main")
        print(f"{'EM3D-SM ' + variant:<22}{main / 1e3:>10.0f}K"
              f"{main / mp_main:>7.1f}x{invals:>14.0f}{faults:>14.0f}")
    update_ratio = results["update"].board.mean_total(phase="main") / mp_main
    base_ratio = results["base"].board.mean_total(phase="main") / mp_main
    print(f"\nbulk update narrows SM/MP from {base_ratio:.1f}x to "
          f"{update_ratio:.1f}x (paper: 'performed equivalently')")
