"""Kernel throughput microbenchmarks (pytest-benchmark wrapper).

The same suite ``repro bench`` runs from the command line, exposed to
pytest-benchmark so ``pytest benchmarks/bench_kernel.py`` produces its
comparison tables. The committed ``BENCH_kernel.json`` at the repo root
is the CI regression baseline; regenerate it with::

    python -m repro bench --json BENCH_kernel.json
"""

from repro.runner import bench

from benchmarks.helpers import banner


def test_kernel_microbench(benchmark):
    document = benchmark.pedantic(
        lambda: bench.run_benchmarks(quick=True, apps=False, log=lambda _m: None),
        rounds=1,
        iterations=1,
    )
    kernel = document["kernel"]
    print(banner("Kernel microbenchmarks (quick sizes)"))
    for row in kernel["benches"]:
        print(f"{row['name']:>12}: {row['events']:>7} events  "
              f"{row['seconds']:.3f}s  {row['events_per_sec']:>9} ev/s")
    print(f"{'KERNEL':>12}: {kernel['events']:>7} events  "
          f"{kernel['seconds']:.3f}s  {kernel['events_per_sec']:>9} ev/s")
    hot = kernel["cache_hot"]
    print(f"{'cache_hot':>12}: {hot['ops']:>7} ops     "
          f"{hot['seconds']:.3f}s  {hot['ops_per_sec']:>9} op/s")
    assert kernel["events"] > 0
    assert kernel["events_per_sec"] > 0
