"""Section 4.1: simulator validation.

The paper validated its message-passing simulator against a physical
CM-5: three programs ran within 14-27% of the real machine. Without a
CM-5, this bench validates that the simulators' end-to-end primitive
latencies compose to the Table 1-3 costs they are built from, within
the paper's 27% band.
"""

from benchmarks.helpers import banner, run_and_check


def test_validation_microbenchmarks(benchmark):
    checks = run_and_check(benchmark, "validation")
    print(banner("Section 4.1: measured vs analytic primitive latencies"))
    for name, values in checks.items():
        measured, expected = values["measured"], values["expected"]
        error = abs(measured - expected) / expected
        print(f"{name:>22}: measured {measured:6.0f}  expected {expected:6.0f}"
              f"  ({error:.0%})")
        assert error <= 0.27
