"""Paper Table 16: EM3D-SM with a 4x larger cache.

In the paper, growing the cache from 256KB to 1MB removed the capacity
misses: main-loop misses fell to about a third and EM3D-SM's main loop
dropped below EM3D-MP's. The scaled run grows the cache by the same 4x
factor relative to the working set.
"""

from benchmarks.helpers import banner, run_and_check
from repro.api import run_raw
from repro.core.tables import render_sm_breakdown


def test_table_16_em3d_sm_big_cache(benchmark):
    pair = run_and_check(benchmark, "em3d_bigcache")
    base = run_raw("em3d")
    print(banner("Table 16: EM3D-SM main loop with a 4x cache"))
    print(render_sm_breakdown(pair, phase="main"))
    base_misses = base.sm_counts(phase="main").shared_misses
    big_misses = pair.sm_counts(phase="main").shared_misses
    base_total = base.sm_breakdown(phase="main").total
    big_total = pair.sm_breakdown(phase="main").total
    print(f"\nmain-loop shared misses: {big_misses:.0f} vs {base_misses:.0f} "
          f"base ({big_misses / base_misses:.0%}; paper: ~1/3)")
    print(f"main-loop cycles: {big_total / 1e6:.2f}M vs {base_total / 1e6:.2f}M "
          f"base ({big_total / base_total:.0%}; paper: 61.0M vs 130.0M)")
    assert big_misses < 0.6 * base_misses
    assert big_total < base_total
    # Intensity improves (paper: 2 -> 7 cycles per data byte).
    assert (
        pair.sm_counts(phase="main").comp_cycles_per_data_byte
        > base.sm_counts(phase="main").comp_cycles_per_data_byte
    )
