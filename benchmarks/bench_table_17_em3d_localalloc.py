"""Paper Table 17: EM3D-SM with local allocation.

Replacing gmalloc's round-robin placement with local placement turns a
processor's misses to its own data from remote to local: in the paper,
remote misses fall from 97% to 10% of shared misses and the main loop
runs in two thirds of the time.
"""

from benchmarks.helpers import banner, run_and_check
from repro.api import run_raw
from repro.core.tables import render_sm_breakdown


def test_table_17_em3d_sm_local_allocation(benchmark):
    pair = run_and_check(benchmark, "em3d_localalloc")
    base = run_raw("em3d")
    print(banner("Table 17: EM3D-SM main loop with local allocation"))
    print(render_sm_breakdown(pair, phase="main"))
    base_remote = base.sm_counts(phase="main").remote_fraction
    local_remote = pair.sm_counts(phase="main").remote_fraction
    base_total = base.sm_breakdown(phase="main").total
    local_total = pair.sm_breakdown(phase="main").total
    print(f"\nremote fraction of shared misses: {local_remote:.0%} vs "
          f"{base_remote:.0%} base (paper: 10% vs 97%)")
    print(f"main-loop cycles: {local_total / 1e6:.2f}M vs "
          f"{base_total / 1e6:.2f}M base "
          f"({local_total / base_total:.0%}; paper: ~2/3)")
    assert local_remote < 0.5 * base_remote
    assert local_total < base_total
    # Intensity improves (paper: 2 -> 16 cycles per data byte).
    assert (
        pair.sm_counts(phase="main").comp_cycles_per_data_byte
        > base.sm_counts(phase="main").comp_cycles_per_data_byte
    )
