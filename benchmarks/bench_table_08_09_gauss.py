"""Paper Tables 8 and 9: Gauss time breakdowns (MP and SM)."""

from benchmarks.helpers import banner, run_and_check
from repro.core.tables import render_mp_breakdown, render_sm_breakdown


def test_table_08_gauss_mp_breakdown(benchmark):
    pair = run_and_check(benchmark, "gauss")
    print(banner("Table 8: Gauss, Message Passing"))
    print(render_mp_breakdown(pair))


def test_table_09_gauss_sm_breakdown(benchmark):
    pair = run_and_check(benchmark, "gauss")
    print(banner("Table 9: Gauss, Shared Memory"))
    print(render_sm_breakdown(pair))
    sm = pair.sm_breakdown()
    # Reductions and barriers both appear in synchronization (paper:
    # reductions 6%, barriers 16%).
    assert sm.reductions > 0
    assert sm.barriers > 0
