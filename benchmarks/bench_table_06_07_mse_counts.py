"""Paper Tables 6 and 7: MSE per-processor event counts."""

from benchmarks.helpers import banner, run_and_check
from repro.core.tables import render_mp_counts, render_sm_counts


def test_table_06_mse_mp_counts(benchmark):
    pair = run_and_check(benchmark, "mse")
    print(banner("Table 6: MSE-MP per-processor event counts"))
    print(render_mp_counts(pair))
    counts = pair.mp_counts()
    # The paper's intensity metric marks MSE as computation-bound
    # (1452 cycles per data byte); ours must be likewise high.
    assert counts.comp_cycles_per_data_byte > 50


def test_table_07_mse_sm_counts(benchmark):
    pair = run_and_check(benchmark, "mse")
    print(banner("Table 7: MSE-SM per-processor event counts"))
    print(render_sm_counts(pair))
    counts = pair.sm_counts()
    # Shared misses are the minority of all misses (paper: 0.04M of
    # 2.5M), because communication follows the sparse schedule. The
    # paper's 60:1 ratio comes from capacity-driven private misses at
    # its working-set scale; at this scale the private side is mostly
    # cold misses, so only the ordering is asserted.
    assert counts.shared_misses < counts.private_misses
    # And the shared misses that do occur cost little time (paper: 5%).
    from repro.stats.categories import SmCat

    shared_share = (
        pair.sm_result.board.mean_cycles(SmCat.SHARED_MISS)
        / pair.sm_breakdown().total
    )
    assert shared_share < 0.10
