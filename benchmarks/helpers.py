"""Shared plumbing for the per-table benchmarks.

Each benchmark regenerates one table (or figure) of the paper's
evaluation: it runs the registered experiment through the harness's
in-process path (:func:`repro.runner.api.run_raw` — results are
memoized per configuration, so tables that share a simulation — e.g.
a breakdown table and its event counts — run it once), prints the
paper-style table, records headline metrics in the benchmark's
``extra_info``, and asserts the experiment's shape checks (who wins,
by roughly what factor — not absolute cycles).

The benchmarks deliberately bypass the on-disk result cache: they
exist to *time* the simulations, so serving a stored record would
defeat them.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
rendered tables.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.experiments import EXPERIMENTS
from repro.runner.api import run_raw
from repro.runner.cache import cache_key


def run_and_check(benchmark, exp_id: str, extra: Dict[str, Any] = None) -> Any:
    """Run an experiment under the benchmark fixture; assert its shape."""
    spec = EXPERIMENTS[exp_id]
    result = benchmark.pedantic(
        lambda: run_raw(exp_id), rounds=1, iterations=1
    )
    benchmark.extra_info["experiment"] = exp_id
    benchmark.extra_info["paper_tables"] = spec.paper_tables
    benchmark.extra_info["cache_key"] = cache_key(spec.config)[:16]
    for key, value in (extra or {}).items():
        benchmark.extra_info[key] = value
    checks = spec.shape(result)
    for name, ok, detail in checks:
        benchmark.extra_info[f"check:{name}"] = detail
    failures = [f"{name}: {detail}" for name, ok, detail in checks if not ok]
    assert not failures, (
        f"{exp_id} shape checks failed:\n  " + "\n  ".join(failures)
    )
    return result


def banner(title: str) -> str:
    bar = "=" * max(len(title), 60)
    return f"\n{bar}\n{title}\n{bar}"
