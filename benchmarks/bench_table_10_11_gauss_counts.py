"""Paper Tables 10 and 11: Gauss per-processor event counts."""

from benchmarks.helpers import banner, run_and_check
from repro.core.tables import render_mp_counts, render_sm_counts


def test_table_10_gauss_mp_counts(benchmark):
    pair = run_and_check(benchmark, "gauss")
    print(banner("Table 10: Gauss-MP per-processor event counts"))
    print(render_mp_counts(pair))
    counts = pair.mp_counts()
    # Gauss is communication-intensive (paper: 78 cycles/data byte,
    # versus MSE's 1452).
    assert counts.comp_cycles_per_data_byte < 200
    assert counts.channel_writes > 0
    assert counts.active_messages > 0


def test_table_11_gauss_sm_counts(benchmark):
    pair = run_and_check(benchmark, "gauss")
    print(banner("Table 11: Gauss-SM per-processor event counts"))
    print(render_sm_counts(pair))
    counts = pair.sm_counts()
    # Broadcast reads of pivot rows: misses overwhelmingly remote and
    # private misses negligible (paper: 92 private vs 23,590 shared).
    assert counts.private_misses < 0.2 * counts.shared_misses
    assert counts.remote_fraction > 0.8
    # Directory contention (paper: ~200-cycle mean queue delay).
    delay = pair.extra["directory_queue_delay"]
    print(f"\nmean directory queue delay: {delay:.0f} cycles (paper: ~200)")
    assert delay > 0
