"""Paper Tables 4 and 5: MSE time breakdowns (MP and SM)."""

from benchmarks.helpers import banner, run_and_check
from repro.core.tables import render_mp_breakdown, render_sm_breakdown


def test_table_04_mse_mp_breakdown(benchmark):
    pair = run_and_check(benchmark, "mse")
    print(banner("Table 4: Microstructure Electrostatics, Message Passing"))
    print(render_mp_breakdown(pair))


def test_table_05_mse_sm_breakdown(benchmark):
    pair = run_and_check(benchmark, "mse")
    print(banner("Table 5: Microstructure Electrostatics, Shared Memory"))
    print(render_sm_breakdown(pair))
