"""Paper Tables 1-3: machine parameters and primitive-operation costs.

Not a performance table in the paper, but the foundation every other
number rests on: this bench re-derives the primitive costs from live
machines and checks them against the transcribed tables.
"""

import numpy as np

from benchmarks.helpers import banner
from repro.arch.params import CommonParams, MachineParams, MpParams, SmParams
from repro.mp.machine import MpMachine
from repro.stats.categories import MpCat


def test_tables_1_2_3_transcription(benchmark):
    def build():
        return MachineParams.paper()

    params = benchmark.pedantic(build, rounds=1, iterations=1)
    print(banner("Tables 1-3: hardware parameters"))
    print(f"cache {params.common.cache_bytes // 1024} KB, "
          f"{params.common.cache_assoc}-way, {params.common.block_bytes}-byte "
          f"blocks, {params.common.cache_sets} sets")
    print(f"TLB {params.common.tlb_entries} entries, "
          f"{params.common.page_bytes}-byte pages")
    print(f"message latency {params.common.network_latency}, barrier "
          f"{params.common.barrier_latency}")
    assert params.common == CommonParams()
    assert params.mp == MpParams()
    assert params.sm == SmParams()


def test_ni_operation_costs(benchmark):
    """Table 2 microbenchmark: a packet injection costs 5 + 15 cycles."""

    def run():
        machine = MpMachine(MachineParams.paper(num_processors=2), seed=0)

        def program(ctx):
            if ctx.pid == 0:
                yield from ctx.inject(1, "_cmmd_data", payload=None)

        try:
            machine.run(program)
        except Exception:
            pass  # the lone packet is never drained; timing already done
        return machine

    machine = run()
    ni_cycles = machine.nodes[0].stats.cycles.get(MpCat.NETWORK_ACCESS, 0)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["send_packet_cycles"] = ni_cycles
    print(banner("Table 2: NI send = tag/dest write (5) + 5-word store (15)"))
    print(f"measured {ni_cycles} cycles")
    assert ni_cycles == 20
