"""Paper Tables 20 and 21: asynchronous LCP time breakdowns."""

from benchmarks.helpers import banner, run_and_check
from repro.api import run_raw
from repro.core.tables import render_mp_breakdown, render_sm_breakdown


def test_table_20_alcp_mp_breakdown(benchmark):
    pair = run_and_check(benchmark, "alcp")
    sync = run_raw("lcp")
    print(banner("Table 20: Asynchronous LCP, Message Passing"))
    print(render_mp_breakdown(pair))
    print(f"\nsteps: {pair.extra['mp_steps']} async vs "
          f"{sync.extra['mp_steps']} sync (paper: 35 vs 43)")
    # Communication share rises sharply vs the synchronous version
    # (paper: 27% -> 64%).
    sync_share = sync.mp_breakdown().communication / sync.mp_total
    async_share = pair.mp_breakdown().communication / pair.mp_total
    print(f"communication share: {async_share:.0%} async vs {sync_share:.0%} sync")
    assert async_share > sync_share


def test_table_21_alcp_sm_breakdown(benchmark):
    pair = run_and_check(benchmark, "alcp")
    sync = run_raw("lcp")
    print(banner("Table 21: Asynchronous LCP, Shared Memory"))
    print(render_sm_breakdown(pair))
    # Data-access share rises sharply vs synchronous (paper: 20% -> 64%).
    sync_share = sync.sm_breakdown().data_access / sync.sm_total
    async_share = pair.sm_breakdown().data_access / pair.sm_total
    print(f"\ndata-access share: {async_share:.0%} async vs {sync_share:.0%} sync")
    assert async_share > sync_share
