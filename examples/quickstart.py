#!/usr/bin/env python
"""Quickstart: write one program pair and compare where its time goes.

This example builds the smallest possible "paper-style" study: a toy
stencil program written twice — once for the message-passing machine
(explicit boundary exchange over CMMD channels) and once for the
shared-memory machine (reads through the coherence protocol) — run on
the two simulators with identical hardware assumptions, then broken
down into the paper's time categories.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.arch.params import MachineParams
from repro.core.breakdown import MpBreakdown, SmBreakdown
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine
from repro.stats.report import format_breakdown

PROCS = 4
CELLS = 64  # cells per processor
STEPS = 10


def stencil_mp(ctx):
    """Message-passing 1-D stencil: halo exchange over channels."""
    cells = ctx.alloc("cells", CELLS + 2, fill=0.0)  # + two halo slots
    yield from ctx.write(
        cells, 1, values=np.sin(np.arange(CELLS) + ctx.pid * CELLS)
    )
    left = (ctx.pid - 1) % ctx.nprocs
    right = (ctx.pid + 1) % ctx.nprocs
    # Static channels: neighbors write straight into my halo slots.
    recv_left = yield from ctx.cmmd.offer_channel(left, cells, 0, 1, key="halo_r")
    recv_right = yield from ctx.cmmd.offer_channel(
        right, cells, CELLS + 1, CELLS + 2, key="halo_l"
    )
    send_left = yield from ctx.cmmd.accept_channel(left, key="halo_l")
    send_right = yield from ctx.cmmd.accept_channel(right, key="halo_r")
    for _step in range(STEPS):
        edge = yield from ctx.read(cells, 1, 2)
        yield from ctx.cmmd.write_channel(send_left, np.array(edge))
        edge = yield from ctx.read(cells, CELLS, CELLS + 1)
        yield from ctx.cmmd.write_channel(send_right, np.array(edge))
        yield from ctx.cmmd.wait_channel(recv_left)
        yield from ctx.cmmd.wait_channel(recv_right)
        values = yield from ctx.read(cells)
        smoothed = 0.5 * values[1:-1] + 0.25 * (values[:-2] + values[2:])
        yield from ctx.write(cells, 1, values=smoothed)
        yield from ctx.compute_flops(4 * CELLS)
    return np.array(cells.np[1:-1])


def stencil_sm(ctx, shared):
    """Shared-memory 1-D stencil: neighbors read through the protocol."""
    if ctx.pid == 0:
        shared["field"] = ctx.gmalloc("field", PROCS * CELLS)
        ctx.create()
    else:
        yield from ctx.wait_create()
    field = shared["field"]
    lo = ctx.pid * CELLS
    yield from ctx.write(field, lo, values=np.sin(np.arange(CELLS) + lo))
    yield from ctx.barrier()
    total = PROCS * CELLS
    for _step in range(STEPS):
        lo_halo = (lo - 1) % total
        hi_halo = (lo + CELLS) % total
        left = yield from ctx.read_gather(field, [lo_halo])
        right = yield from ctx.read_gather(field, [hi_halo])
        values = yield from ctx.read(field, lo, lo + CELLS)
        padded = np.concatenate([left, values, right])
        smoothed = 0.5 * padded[1:-1] + 0.25 * (padded[:-2] + padded[2:])
        yield from ctx.barrier()  # everyone has read before anyone writes
        yield from ctx.write(field, lo, values=smoothed)
        yield from ctx.compute_flops(4 * CELLS)
        yield from ctx.barrier()
    return np.array(field.np[lo:lo + CELLS])


def main():
    params = MachineParams.paper(num_processors=PROCS)

    mp_machine = MpMachine(params, seed=7)
    mp_result = mp_machine.run(stencil_mp)

    sm_machine = SmMachine(params, seed=7)
    shared = {}
    sm_result = sm_machine.run(stencil_sm, shared)

    # Same values either way.
    mp_field = np.concatenate(mp_result.outputs)
    sm_field = np.concatenate(sm_result.outputs)
    assert np.allclose(mp_field, sm_field), "the two versions diverged!"

    mp_breakdown = MpBreakdown.from_board(mp_result.board)
    sm_breakdown = SmBreakdown.from_board(sm_result.board)
    print(format_breakdown("Stencil, Message Passing", mp_breakdown.rows(),
                           mp_breakdown.total))
    print()
    print(format_breakdown("Stencil, Shared Memory", sm_breakdown.rows(),
                           sm_breakdown.total))
    print()
    ratio = sm_breakdown.total / mp_breakdown.total
    print(f"Shared memory relative to message passing: {100 * ratio:.0f}%")
    print("(both versions computed identical fields)")


if __name__ == "__main__":
    main()
