#!/usr/bin/env python
"""EM3D cache and placement study (paper Tables 14, 16, 17).

Runs EM3D-SM across cache sizes and allocation policies and shows how
the main loop's character changes: with a small cache, capacity misses
to round-robin-placed data dominate and are nearly all remote; a larger
cache removes the capacity misses; local placement converts the rest
from remote to local.

Run:  python examples/em3d_cache_study.py
"""

from repro.apps.em3d.common import Em3dConfig
from repro.apps.em3d.mp import run_em3d_mp
from repro.apps.em3d.sm import run_em3d_sm
from repro.arch.params import MachineParams
from repro.core.breakdown import SmBreakdown, SmCounts
from repro.memory.dataspace import HomePolicy
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine

PROCS = 8
CONFIG = Em3dConfig(
    nodes_per_proc=80, degree=6, remote_frac=0.2, iterations=5, seed=11
)


def sm_run(cache_bytes, policy):
    params = MachineParams.paper(num_processors=PROCS).with_cache_bytes(cache_bytes)
    machine = SmMachine(params, seed=11, allocation_policy=policy)
    result, _e, _h = run_em3d_sm(machine, CONFIG)
    breakdown = SmBreakdown.from_board(result.board, phase="main")
    counts = SmCounts.from_board(result.board, phase="main")
    return breakdown, counts


def main():
    params = MachineParams.paper(num_processors=PROCS).with_cache_bytes(16 * 1024)
    mp_result, _e, _h = run_em3d_mp(MpMachine(params, seed=11), CONFIG)
    mp_main = mp_result.board.mean_total(phase="main")
    print(f"EM3D-MP main loop: {mp_main / 1e3:.0f}K cycles (the baseline)\n")

    rows = [
        ("16 KB, round-robin", 16 * 1024, HomePolicy.ROUND_ROBIN),
        ("64 KB, round-robin", 64 * 1024, HomePolicy.ROUND_ROBIN),
        ("16 KB, local", 16 * 1024, HomePolicy.LOCAL),
        ("64 KB, local", 64 * 1024, HomePolicy.LOCAL),
    ]
    header = (f"{'configuration':<22}{'main loop':>12}{'vs MP':>8}"
              f"{'shared misses':>15}{'remote':>8}")
    print(header)
    print("-" * len(header))
    for label, cache, policy in rows:
        breakdown, counts = sm_run(cache, policy)
        print(
            f"{label:<22}{breakdown.total / 1e3:>10.0f}K"
            f"{breakdown.total / mp_main:>7.1f}x"
            f"{counts.shared_misses:>15.0f}"
            f"{counts.remote_fraction:>8.0%}"
        )
    print("\nPaper shape: a 4x cache cuts misses to ~1/3 (Table 16); local")
    print("allocation turns remote misses local and recovers ~1/3 of the")
    print("main loop (Table 17). Message passing is immune to both knobs —")
    print("its ghost-node updates are bulk messages, not coherence misses.")


if __name__ == "__main__":
    main()
