#!/usr/bin/env python
"""Software broadcast/reduction strategies (paper Section 5.2).

The simulated machines have no broadcast hardware, so Gauss-MP's pivot
distribution is pure software. The paper's optimization journey — flat
broadcast (119.3M cycles), binary tree (40.9M), lop-sided LogP tree
(30.1M) — is replayed here, along with the shared-memory alternative:
write + barrier + everyone reads, at hardware speed but with directory
contention.

Run:  python examples/gauss_collectives.py
"""

from repro.apps.gauss.common import GaussConfig
from repro.apps.gauss.mp import run_gauss_mp
from repro.apps.gauss.sm import run_gauss_sm
from repro.arch.params import MachineParams
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine

# The lop-sided tree's advantage over a binary tree grows with the
# machine; 16 processors is enough to see the paper's ordering.
PROCS = 16
CONFIG = GaussConfig(n=96, seed=5)


def main():
    params = MachineParams.paper(num_processors=PROCS)
    print(f"Gauss, n={CONFIG.n}, {PROCS} processors\n")
    print(f"{'strategy':<28}{'total cycles':>14}")
    print("-" * 42)
    totals = {}
    for strategy in ("flat", "binary", "lopsided"):
        machine = MpMachine(params, seed=5, collective_strategy=strategy)
        result, _x = run_gauss_mp(machine, CONFIG)
        totals[strategy] = result.board.mean_total()
        print(f"MP, {strategy + ' tree':<24}{totals[strategy] / 1e6:>13.2f}M")

    sm_machine = SmMachine(params, seed=5)
    sm_result, _x = run_gauss_sm(sm_machine, CONFIG)
    sm_total = sm_result.board.mean_total()
    print(f"{'SM, write+barrier+read':<28}{sm_total / 1e6:>13.2f}M")
    print(f"\nmean directory queue delay in the SM run: "
          f"{sm_machine.directory_contention():.0f} cycles (paper: ~200)")
    print("\nPaper shape: lop-sided < binary < flat; the shared-memory")
    print("broadcast keeps pace with the best software tree because its")
    print("invalidations run at hardware speed — until directory queuing")
    print("grows with the machine (the paper's scalability caveat).")
    assert totals["lopsided"] < totals["binary"] < totals["flat"]


if __name__ == "__main__":
    main()
