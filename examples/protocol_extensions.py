#!/usr/bin/env python
"""The Section 5.3.4 toolbox on a minimal producer-consumer kernel.

The paper diagnoses EM3D-SM's loss as the invalidation protocol's
4-message producer-consumer exchange and sketches three remedies. This
example strips the problem to its essence — one producer repeatedly
updates a vector that one consumer repeatedly reads — and measures all
four protocol treatments on it:

* base         : invalidate on write, miss on read (4 messages/value)
* flush        : the consumer drops its copies after reading
* prefetch     : the consumer prefetches before reading
* bulk update  : the producer pushes values into the consumer's cache

Run:  python examples/protocol_extensions.py
"""

import numpy as np

from repro.arch.params import MachineParams
from repro.memory.dataspace import HomePolicy
from repro.sm.machine import SmMachine
from repro.stats.categories import SmCat

VALUES = 64  # 16 blocks
ROUNDS = 12


def make_program(treatment):
    def program(ctx, shared):
        if ctx.pid == 0:
            protocol = "update" if treatment == "update" else "dir"
            shared["v"] = ctx.gmalloc(
                "v", VALUES, policy=HomePolicy.LOCAL, protocol=protocol
            )
            ctx.create()
        else:
            yield from ctx.wait_create()
        region = shared["v"]
        indices = list(range(VALUES))
        for round_number in range(ROUNDS):
            if ctx.pid == 0:  # the producer
                yield from ctx.write(
                    region, 0, values=np.full(VALUES, float(round_number))
                )
                if treatment == "update":
                    yield from ctx.push_update(region, indices, [1])
            yield from ctx.barrier()
            if ctx.pid == 1:  # the consumer
                if treatment == "prefetch":
                    yield from ctx.prefetch_gather(region, indices)
                    yield from ctx.compute(600)  # overlap window
                values = yield from ctx.read(region)
                assert (values == float(round_number)).all()
                yield from ctx.compute(2 * VALUES)
                if treatment == "flush":
                    yield from ctx.flush(region)
            yield from ctx.barrier()
        return None

    return program


def main():
    params = MachineParams.paper(num_processors=2)
    print(f"{VALUES} values, {ROUNDS} producer->consumer rounds\n")
    header = (f"{'treatment':<12}{'elapsed':>10}{'consumer miss cy':>18}"
              f"{'producer fault cy':>19}{'invals':>8}{'wire KB':>9}")
    print(header)
    print("-" * len(header))
    for treatment in ("base", "flush", "prefetch", "update"):
        machine = SmMachine(params, seed=3)
        shared = {}
        result = machine.run(make_program(treatment), shared)
        consumer = result.board.procs[1]
        producer = result.board.procs[0]
        wire_kb = (
            result.board.total_count("data_bytes")
            + result.board.total_count("control_bytes")
        ) / 1024
        print(
            f"{treatment:<12}{result.elapsed_cycles:>10}"
            f"{consumer.cycles.get(SmCat.SHARED_MISS, 0):>18}"
            f"{producer.cycles.get(SmCat.WRITE_FAULT, 0):>19}"
            f"{result.board.total_count('invalidations_received'):>8}"
            f"{wire_kb:>9.1f}"
        )
    print("\nPaper shape: flush removes the invalidation half of the")
    print("exchange, prefetch hides the miss half, and the bulk-update")
    print("protocol replaces the whole 4-message pattern with one push")
    print("per round (Falsafi et al., cited in Section 5.3.4).")


if __name__ == "__main__":
    main()
