#!/usr/bin/env python
"""The LCP computation/communication tradeoff (paper Section 5.4).

Asynchronous SOR publishes updates after every sweep instead of every
step: convergence takes fewer steps, but communication multiplies. The
paper quantifies this with "computation cycles per data byte
transmitted", which collapses from 29 to 6 (MP) and 26 to 4 (SM).

Run:  python examples/lcp_async_tradeoff.py
"""

from repro.apps.lcp.common import LcpConfig, generate_problem
from repro.apps.lcp.mp import run_lcp_mp
from repro.apps.lcp.sm import run_lcp_sm
from repro.arch.params import MachineParams
from repro.core.breakdown import MpCounts, SmCounts
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine

PROCS = 8
CONFIG = LcpConfig(n=192, tolerance=1e-7, seed=9)


def main():
    params = MachineParams.paper(num_processors=PROCS)
    problem = generate_problem(CONFIG)
    print(f"LCP, n={CONFIG.n}, {PROCS} processors, "
          f"{CONFIG.sweeps_per_step} sweeps/step\n")
    header = (f"{'variant':<12}{'steps':>6}{'total cycles':>14}"
              f"{'bytes moved':>13}{'comp/databyte':>15}{'residual':>11}")
    print(header)
    print("-" * len(header))
    for label, runner, machine_cls, counts_cls in (
        ("LCP-MP", run_lcp_mp, MpMachine, MpCounts),
        ("LCP-SM", run_lcp_sm, SmMachine, SmCounts),
    ):
        for asynchronous in (False, True):
            machine = machine_cls(params, seed=9)
            result, z, steps = runner(machine, CONFIG, asynchronous=asynchronous)
            counts = counts_cls.from_board(result.board)
            name = ("A" if asynchronous else "") + label
            print(
                f"{name:<12}{steps:>6}"
                f"{result.board.mean_total() / 1e6:>13.2f}M"
                f"{counts.bytes_transmitted / 1e3:>12.1f}K"
                f"{counts.comp_cycles_per_data_byte:>15.1f}"
                f"{problem.complementarity_residual(z):>11.1e}"
            )
    print("\nPaper shape: the asynchronous variants converge in fewer steps")
    print("but move far more data per step; the intensity metric collapses")
    print("(paper: 29->6 for MP, 26->4 for SM).")


if __name__ == "__main__":
    main()
