"""Experiment registry: every table and figure of the paper's evaluation.

Each :class:`ExperimentSpec` names the paper tables it regenerates,
carries the paper's reported values (for EXPERIMENTS.md and the shape
checks), a default :class:`~repro.runner.config.ExperimentConfig`, and
a runner. Runners are **top-level functions of an explicit config** —
picklable and parameterizable — so the :mod:`repro.runner` harness can
execute them in worker processes, sweep them with overrides, and cache
their results content-addressed on disk.

The stable programmatic surface is :mod:`repro.api`
(``run_raw``/``record_for``/``execute``/``sweep``);
:func:`run_experiment` remains one release as a deprecated wrapper
over ``run_raw``. ``python -m repro run`` goes through the full
harness.

Scale: the paper's runs are hundreds of millions to billions of target
cycles on 32 processors; a pure-Python event simulation reproduces
*fractions and ratios*, which are scale-stable, at workloads a few
hundred times smaller (see DESIGN.md section 2.8). Cache sizes are
scaled with the working sets so that capacity effects (EM3D Tables
16/17) keep the paper's geometry.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.apps.em3d.common import Em3dConfig
from repro.apps.em3d.mp import run_em3d_mp
from repro.apps.em3d.sm import run_em3d_sm
from repro.apps.gauss.common import GaussConfig
from repro.apps.gauss.mp import run_gauss_mp
from repro.apps.gauss.sm import run_gauss_sm
from repro.apps.lcp.common import LcpConfig
from repro.apps.lcp.mp import run_lcp_mp
from repro.apps.lcp.sm import run_lcp_sm
from repro.apps.mse.common import MseConfig
from repro.apps.mse.mp import run_mse_mp
from repro.apps.mse.sm import run_mse_sm
from repro.core.study import PairResult
from repro.memory.dataspace import HomePolicy
from repro.mp.machine import MpMachine
from repro.runner.config import ExperimentConfig
from repro.sm.machine import SmMachine

#: A shape check: (description, passed, detail-string).
ShapeCheck = Tuple[str, bool, str]


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible experiment from the paper's evaluation."""

    id: str
    title: str
    paper_tables: str
    description: str
    runner: Callable[[ExperimentConfig], Any]
    config: ExperimentConfig
    shape: Callable[[Any], List[ShapeCheck]]
    paper: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""
    #: Baselines this experiment's shape checks compare against; the
    #: executor co-locates them in one worker so the in-process memo
    #: serves the comparison.
    after: Tuple[str, ...] = ()
    #: Check names that pin claims specific to the paper's 1994 machine
    #: (latency/overhead ratios that legitimately flip under the modern
    #: presets). Waived — recorded as passing with a "waived" detail —
    #: when the run's ``preset`` is not ``"paper"``.
    paper_only: Tuple[str, ...] = ()


def get_experiment(exp_id: str) -> ExperimentSpec:
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(exp_id: str, overrides: Dict[str, Any] = None) -> Any:
    """Deprecated: use :func:`repro.api.run_raw`.

    Thin compatibility wrapper kept one release for old scripts;
    :mod:`repro.api` is the stable surface
    (``run_raw("gauss", overrides={"app": {"n": 64}})`` is the direct
    equivalent).
    """
    from repro.runner.api import run_raw

    warnings.warn(
        "repro.core.experiments.run_experiment() is deprecated; use "
        "repro.api.run_raw() (same semantics) or repro.api.record_for() "
        "for cached, serializable records",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_raw(exp_id, overrides)


def clear_cache() -> None:
    """Deprecated: use :func:`repro.runner.api.clear_memory_cache`.

    The in-process memo moved into the runner harness; the persistent
    result store is :class:`repro.runner.cache.ResultCache`
    (``python -m repro cache {ls,clear}``).
    """
    from repro.runner.api import clear_memory_cache

    warnings.warn(
        "repro.core.experiments.clear_cache() is deprecated; use "
        "repro.runner.api.clear_memory_cache() (in-process memo) or "
        "repro.runner.cache.ResultCache.clear() (on-disk records)",
        DeprecationWarning,
        stacklevel=2,
    )
    clear_memory_cache()


# ---------------------------------------------------------------------------
# Scaled workload configurations (see module docstring).
# ---------------------------------------------------------------------------

_SEED = 1994

# The paper's MSE working set slightly exceeds what its 256 KB cache
# holds comfortably (local misses are 4-5% of time, and private misses
# dwarf the schedule-driven shared misses). 8 KB against this scaled
# run's ~8 KB of positions + vectors keeps both properties.
MSE_CONFIG = ExperimentConfig(
    exp_id="mse",
    procs=8,
    seed=_SEED,
    cache_bytes=8 * 1024,
    app=MseConfig(bodies=32, elements_per_body=6, iterations=8, seed=_SEED),
)

GAUSS_CONFIG = ExperimentConfig(
    exp_id="gauss", procs=8, seed=_SEED, app=GaussConfig(n=224, seed=_SEED)
)

# The strategy study uses more processors than the breakdown runs: the
# lop-sided tree's advantage over a binary tree grows with the machine
# (the paper ran 32 processors).
GAUSS_COLLECTIVES_CONFIG = ExperimentConfig(
    exp_id="gauss_collectives",
    procs=16,
    seed=_SEED,
    app=GaussConfig(n=96, seed=_SEED),
    options=(("strategies", ("flat", "binary", "lopsided")),),
)

GAUSS_CONTENTION_CONFIG = ExperimentConfig(
    exp_id="gauss_contention",
    procs=16,
    seed=_SEED,
    app=GaussConfig(n=96, seed=_SEED),
    options=(("proc_counts", (4, 8, 16)),),
)

EM3D_CACHE = 16 * 1024  # ~2/3 of the per-processor working set (paper: ~45%)
EM3D_BIG_CACHE = 4 * EM3D_CACHE  # the paper's 256KB -> 1MB step
_EM3D_APP = Em3dConfig(
    nodes_per_proc=100, degree=6, remote_frac=0.20, iterations=6, seed=_SEED
)

EM3D_CONFIG = ExperimentConfig(
    exp_id="em3d", procs=8, seed=_SEED, cache_bytes=EM3D_CACHE, app=_EM3D_APP
)
EM3D_BIGCACHE_CONFIG = ExperimentConfig(
    exp_id="em3d_bigcache",
    procs=8,
    seed=_SEED,
    cache_bytes=EM3D_BIG_CACHE,
    app=_EM3D_APP,
)
EM3D_LOCALALLOC_CONFIG = ExperimentConfig(
    exp_id="em3d_localalloc",
    procs=8,
    seed=_SEED,
    cache_bytes=EM3D_CACHE,
    app=_EM3D_APP,
    options=(("policy", HomePolicy.LOCAL.value),),
)
EM3D_PROTOCOLS_CONFIG = ExperimentConfig(
    exp_id="em3d_protocols",
    procs=8,
    seed=_SEED,
    cache_bytes=EM3D_CACHE,
    app=_EM3D_APP,
    options=(("variants", ("base", "flush", "update")),),
)

# band/stride chosen so rows couple across block boundaries the way the
# paper's matrices evidently did: the asynchronous variant's extra
# traffic (paper Table 23: 4.7x) needs real cross-processor reuse.
_LCP_APP = LcpConfig(n=256, band=6, stride_couples=2, tolerance=1e-7, seed=_SEED)

LCP_CONFIG = ExperimentConfig(
    exp_id="lcp", procs=8, seed=_SEED, app=_LCP_APP,
    options=(("asynchronous", False),),
)
ALCP_CONFIG = ExperimentConfig(
    exp_id="alcp", procs=8, seed=_SEED, app=_LCP_APP,
    options=(("asynchronous", True),),
)

VALIDATION_CONFIG = ExperimentConfig(exp_id="validation", procs=2, seed=_SEED)


# ---------------------------------------------------------------------------
# Runners: top-level functions of an explicit config.
# ---------------------------------------------------------------------------


def run_mse_pair(config: ExperimentConfig) -> PairResult:
    params = config.machine_params()
    mp_result, _x = run_mse_mp(MpMachine(params, seed=config.seed, backend=config.backend), config.app)
    sm_result, _x2 = run_mse_sm(SmMachine(params, seed=config.seed, backend=config.backend, consistency=config.consistency), config.app)
    return PairResult(
        name="MSE", mp_result=mp_result, sm_result=sm_result,
        phases=["init", "main"],
    )


def run_gauss_pair(config: ExperimentConfig) -> PairResult:
    params = config.machine_params()
    mp_result, _x = run_gauss_mp(MpMachine(params, seed=config.seed, backend=config.backend), config.app)
    sm_result, _x2 = run_gauss_sm(SmMachine(params, seed=config.seed, backend=config.backend, consistency=config.consistency), config.app)
    extra = {"directory_queue_delay": sm_result.machine.directory_contention()}
    return PairResult(
        name="Gauss", mp_result=mp_result, sm_result=sm_result,
        phases=["init", "main"], extra=extra,
    )


def run_gauss_collectives(config: ExperimentConfig) -> Dict[str, float]:
    """The text's strategy study: flat vs binary vs lop-sided trees."""
    totals: Dict[str, float] = {}
    for strategy in config.opt("strategies", ("flat", "binary", "lopsided")):
        machine = MpMachine(
            config.machine_params(),
            seed=config.seed, backend=config.backend,
            collective_strategy=strategy,
        )
        result, _x = run_gauss_mp(machine, config.app)
        totals[strategy] = result.board.mean_total()
    return totals


def run_gauss_contention(config: ExperimentConfig) -> Dict[int, Dict[str, float]]:
    """Section 5.2's scalability remark, measured.

    "These delays [directory queuing] ... will become untenable for
    larger systems": rerun Gauss-SM at growing processor counts (fixed
    problem size) and record the mean directory queue delay and the
    average cost of a shared miss.
    """
    from repro.stats.categories import SmCat

    results: Dict[int, Dict[str, float]] = {}
    for nprocs in config.opt("proc_counts", (4, 8, 16)):
        machine = SmMachine(
            config.machine_params(procs=nprocs), seed=config.seed, backend=config.backend, consistency=config.consistency
        )
        run, _x = run_gauss_sm(machine, config.app)
        board = run.board
        misses = board.mean_count("shared_misses_remote") + board.mean_count(
            "shared_misses_local"
        )
        results[nprocs] = {
            "queue_delay": machine.directory_contention(),
            "miss_cost": board.mean_cycles(SmCat.SHARED_MISS) / max(misses, 1),
            "total": board.mean_total(),
        }
    return results


def run_em3d_pair(config: ExperimentConfig) -> PairResult:
    params = config.machine_params()
    policy = HomePolicy(config.opt("policy", HomePolicy.ROUND_ROBIN.value))
    mp_result, _e, _h = run_em3d_mp(
        MpMachine(params, seed=config.seed, backend=config.backend), config.app
    )
    sm_result, _e2, _h2 = run_em3d_sm(
        SmMachine(params, seed=config.seed, backend=config.backend, consistency=config.consistency, allocation_policy=policy), config.app
    )
    return PairResult(
        name="EM3D", mp_result=mp_result, sm_result=sm_result,
        phases=["init", "main"],
    )


def run_em3d_protocols(config: ExperimentConfig) -> Dict[str, Any]:
    """Section 5.3.4's suggested fixes, implemented and measured.

    Runs EM3D-SM under the base invalidation protocol, with consumer
    flushes, and with the bulk-update protocol, against the EM3D-MP
    baseline.
    """
    params = config.machine_params()
    mp_result, _e, _h = run_em3d_mp(
        MpMachine(params, seed=config.seed, backend=config.backend), config.app
    )
    results: Dict[str, Any] = {"mp": mp_result}
    for variant in config.opt("variants", ("base", "flush", "update")):
        machine = SmMachine(params, seed=config.seed, backend=config.backend, consistency=config.consistency)
        sm_result, _e2, _h2 = run_em3d_sm(machine, config.app, variant=variant)
        results[variant] = sm_result
    return results


def run_lcp_pair(config: ExperimentConfig) -> PairResult:
    asynchronous = bool(config.opt("asynchronous", False))
    params = config.machine_params()
    mp_result, _z, mp_steps = run_lcp_mp(
        MpMachine(params, seed=config.seed, backend=config.backend), config.app, asynchronous=asynchronous
    )
    sm_result, _z2, sm_steps = run_lcp_sm(
        SmMachine(params, seed=config.seed, backend=config.backend, consistency=config.consistency), config.app, asynchronous=asynchronous
    )
    return PairResult(
        name="ALCP" if asynchronous else "LCP",
        mp_result=mp_result,
        sm_result=sm_result,
        phases=["init", "main"],
        extra={"mp_steps": mp_steps, "sm_steps": sm_steps},
    )


def run_validation_micro(config: ExperimentConfig) -> Dict[str, Dict[str, float]]:
    """Section 4.1's validation, adapted: measured vs analytic latencies.

    The paper validated its simulator against a physical CM-5 (within
    14-27%). Without the machine, we validate that the simulated
    latencies of the primitive operations compose to the Table 1-3
    costs they are built from.
    """
    checks: Dict[str, Dict[str, float]] = {}
    params = config.machine_params()

    # Message-passing: one-way active-message latency.
    mp_machine = MpMachine(params, seed=config.seed, backend=config.backend)
    times = {}

    def on_ping(ctx, packet):
        times["arrived"] = ctx.engine.now
        return
        yield

    def mp_program(ctx):
        ctx.am.register("ping", on_ping)
        if ctx.pid == 0:
            times["sent"] = ctx.engine.now
            yield from ctx.am.send(1, "ping")
        else:
            yield from ctx.poll_wait(lambda: "arrived" in times)

    mp_machine.run(mp_program)
    mp = mp_machine.params.mp
    # Topology-aware: the ping crosses 0 -> 1, which is an on-node hop
    # under the cluster preset (flat machines: == network_latency).
    expected = (
        mp.lib_am_send_cycles + mp.send_packet_cycles
        + mp_machine.params.common.message_latency(0, 1)
        + mp.ni_status_cycles + mp.recv_packet_cycles + mp.lib_am_handler_cycles
    )
    checks["am_one_way"] = {
        "measured": times["arrived"] - times["sent"],
        "expected": expected,
    }

    # Barrier release latency.
    bar_machine = MpMachine(params, seed=config.seed, backend=config.backend)
    release = {}

    def barrier_program(ctx):
        start = ctx.engine.now
        yield from ctx.barrier()
        release[ctx.pid] = ctx.engine.now - start

    bar_machine.run(barrier_program)
    checks["barrier"] = {
        "measured": max(release.values()),
        "expected": bar_machine.params.common.barrier_latency,
    }

    # Shared memory: remote miss to idle data (the paper's ~250 cycles).
    sm_machine = SmMachine(params, seed=config.seed, backend=config.backend, consistency=config.consistency)
    miss = {}

    def sm_program(ctx):
        if ctx.pid == 0:
            ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL)
        yield from ctx.barrier()
        if ctx.pid == 1:
            start = ctx.engine.now
            yield from ctx.read(ctx.machine.regions[0], 0, 1)
            miss["cycles"] = ctx.engine.now - start

    sm_machine.run(sm_program)
    sm = sm_machine.params.sm
    common = sm_machine.params.common
    # 19 + 100 + (10 + dram + 5 + 8) + 100, ignoring TLB (measured run
    # includes a TLB miss; keep it in the measured-vs-expected margin).
    # Both hops are 1 <-> 0 (the region is homed at processor 0), so the
    # expectation uses the same two-level latency the machine charges.
    expected_miss = (
        sm.shared_miss_cycles + 2 * common.message_latency(0, 1)
        + sm.directory_base_cycles + common.dram_cycles
        + sm.directory_send_msg_cycles + sm.directory_send_block_cycles
    )
    checks["sm_remote_miss_idle"] = {
        "measured": miss["cycles"],
        "expected": expected_miss,
    }
    return checks


# ---------------------------------------------------------------------------
# Shape checks.
# ---------------------------------------------------------------------------


def _check(name: str, ok: bool, detail: str) -> ShapeCheck:
    return (name, bool(ok), detail)


def _mse_shape(pair: PairResult) -> List[ShapeCheck]:
    mp, sm = pair.mp_breakdown(), pair.sm_breakdown()
    rel = pair.mp_relative_to_sm
    return [
        _check("near-parity", 0.70 <= rel <= 1.30,
               f"MP/SM = {rel:.2f} (paper: 0.98)"),
        _check("MP computation-bound", mp.computation / mp.total > 0.6,
               f"compute share {mp.computation / mp.total:.0%} (paper: 90%)"),
        _check("SM computation-bound", sm.computation / sm.total > 0.6,
               f"compute share {sm.computation / sm.total:.0%} (paper: 82%)"),
        _check("SM start-up imbalance visible",
               sm.startup_wait + sm.barriers > 0,
               f"startup+barrier {(sm.startup_wait + sm.barriers) / 1e3:.1f}K"),
        _check("shared misses a small fraction",
               pair.sm_counts().shared_misses
               < 0.25 * pair.sm_counts().private_misses
               + pair.sm_counts().shared_misses,
               f"shared {pair.sm_counts().shared_misses:.0f} vs private "
               f"{pair.sm_counts().private_misses:.0f}"),
    ]


def _gauss_shape(pair: PairResult) -> List[ShapeCheck]:
    mp, sm = pair.mp_breakdown(), pair.sm_breakdown()
    rel = pair.mp_relative_to_sm
    comm_share = mp.communication / mp.total
    return [
        _check("near-parity", 0.65 <= rel <= 1.5,
               f"MP/SM = {rel:.2f} (paper: 0.98)"),
        _check("MP communication substantial", 0.2 <= comm_share <= 0.7,
               f"comm share {comm_share:.0%} (paper: 42%)"),
        _check("SM misses + sync substantial",
               (sm.data_access + sm.synchronization) / sm.total > 0.25,
               f"share {(sm.data_access + sm.synchronization) / sm.total:.0%} "
               "(paper: 46%)"),
        _check("directory contention observed",
               pair.extra["directory_queue_delay"] > 0,
               f"mean queue delay {pair.extra['directory_queue_delay']:.0f} "
               "cycles (paper: ~200)"),
        _check("SM misses mostly remote",
               pair.sm_counts().remote_fraction > 0.8,
               f"remote fraction {pair.sm_counts().remote_fraction:.0%} "
               "(paper: 97%)"),
    ]


def _collectives_shape(totals: Dict[str, float]) -> List[ShapeCheck]:
    return [
        _check("lop-sided beats binary", totals["lopsided"] < totals["binary"],
               f"{totals['lopsided'] / 1e6:.2f}M vs {totals['binary'] / 1e6:.2f}M "
               "(paper: 30.1M vs 40.9M)"),
        _check("binary beats flat", totals["binary"] < totals["flat"],
               f"{totals['binary'] / 1e6:.2f}M vs {totals['flat'] / 1e6:.2f}M "
               "(paper: 40.9M vs 119.3M)"),
    ]


def _contention_scaling_shape(results: Dict[int, Dict[str, float]]) -> List[ShapeCheck]:
    procs = sorted(results)
    delays = [results[p]["queue_delay"] for p in procs]
    costs = [results[p]["miss_cost"] for p in procs]
    return [
        _check("queue delay grows with the machine",
               delays[0] < delays[-1],
               f"{delays[0]:.0f} -> {delays[-1]:.0f} cycles over {procs} procs"),
        _check("per-miss cost grows with the machine",
               costs[0] < costs[-1],
               f"{costs[0]:.0f} -> {costs[-1]:.0f} cycles (paper: ~700 "
               "contended vs ~250 idle at 32 procs)"),
    ]


def _em3d_shape(pair: PairResult) -> List[ShapeCheck]:
    sm = pair.sm_breakdown()
    rel = pair.sm_relative_to_mp
    data_share = sm.data_access / sm.total
    return [
        _check("MP substantially faster", rel > 1.5,
               f"SM/MP = {rel:.2f} (paper: 2.0)"),
        _check("SM dominated by data access", data_share > 0.4,
               f"data-access share {data_share:.0%} (paper: 64%)"),
        _check("SM misses mostly remote",
               pair.sm_counts(phase="main").remote_fraction > 0.8,
               f"remote {pair.sm_counts(phase='main').remote_fraction:.0%} "
               "(paper: 97%)"),
        _check("MP bulk transfers",
               pair.mp_counts(phase="main").channel_writes
               < 0.1 * pair.sm_counts(phase="main").shared_misses,
               f"{pair.mp_counts(phase='main').channel_writes:.0f} channel "
               f"writes vs {pair.sm_counts(phase='main').shared_misses:.0f} "
               "SM misses (paper: 200 vs 330K)"),
        _check("SM locks only in initialization",
               pair.sm_breakdown(phase="init").locks > 0
               and pair.sm_breakdown(phase="main").locks == 0,
               "locks charged in init phase only"),
    ]


def _em3d_bigcache_shape(pair: PairResult) -> List[ShapeCheck]:
    from repro.runner.api import run_raw

    base = run_raw("em3d")
    base_sm = base.sm_breakdown(phase="main")
    big_sm = pair.sm_breakdown(phase="main")
    base_misses = base.sm_counts(phase="main").shared_misses
    big_misses = pair.sm_counts(phase="main").shared_misses
    return [
        _check("main-loop time drops", big_sm.total < base_sm.total,
               f"{big_sm.total / 1e6:.2f}M vs {base_sm.total / 1e6:.2f}M "
               "(paper: 61.0M vs 130.0M)"),
        _check("misses drop sharply", big_misses < 0.6 * base_misses,
               f"{big_misses:.0f} vs {base_misses:.0f} (paper: ~1/3)"),
    ]


def _em3d_localalloc_shape(pair: PairResult) -> List[ShapeCheck]:
    from repro.runner.api import run_raw

    base = run_raw("em3d")
    base_remote = base.sm_counts(phase="main").remote_fraction
    local_remote = pair.sm_counts(phase="main").remote_fraction
    base_total = base.sm_breakdown(phase="main").total
    local_total = pair.sm_breakdown(phase="main").total
    return [
        _check("remote fraction collapses",
               local_remote < 0.5 * base_remote,
               f"{local_remote:.0%} vs {base_remote:.0%} "
               "(paper: 10% vs 97%)"),
        _check("main loop faster", local_total < base_total,
               f"{local_total / 1e6:.2f}M vs {base_total / 1e6:.2f}M "
               "(paper: 86.3M vs 130.0M, ~2/3)"),
    ]


def _em3d_protocols_shape(results: Dict[str, Any]) -> List[ShapeCheck]:
    mp_main = results["mp"].board.mean_total(phase="main")
    ratios = {
        variant: results[variant].board.mean_total(phase="main") / mp_main
        for variant in ("base", "flush", "update")
    }
    base_invals = results["base"].board.mean_count(
        "invalidations_received", phase="main"
    )
    flush_invals = results["flush"].board.mean_count(
        "invalidations_received", phase="main"
    )
    return [
        _check("flush cuts invalidations", flush_invals < 0.5 * base_invals,
               f"{flush_invals:.0f} vs {base_invals:.0f} per processor"),
        _check("flush does not regress", ratios["flush"] <= ratios["base"] * 1.02,
               f"SM/MP {ratios['flush']:.2f} vs base {ratios['base']:.2f}"),
        _check("bulk update closes the gap", ratios["update"] < ratios["base"],
               f"SM/MP {ratios['update']:.2f} vs base {ratios['base']:.2f} "
               "(paper: 'performed equivalently with EM3D-MP')"),
    ]


def _lcp_shape(pair: PairResult) -> List[ShapeCheck]:
    rel = pair.mp_relative_to_sm
    return [
        _check("MP modestly faster", rel < 1.05,
               f"MP/SM = {rel:.2f} (paper: 0.86)"),
        _check("same convergence steps",
               pair.extra["mp_steps"] == pair.extra["sm_steps"],
               f"steps {pair.extra['mp_steps']} vs {pair.extra['sm_steps']} "
               "(same algorithm)"),
        _check("SM synchronization visible",
               pair.sm_breakdown().synchronization / pair.sm_total > 0.03,
               f"sync share {pair.sm_breakdown().synchronization / pair.sm_total:.0%} "
               "(paper: 17%)"),
    ]


def _alcp_shape(pair: PairResult) -> List[ShapeCheck]:
    from repro.runner.api import run_raw

    sync = run_raw("lcp")
    sync_steps = sync.extra["sm_steps"]
    async_steps = pair.extra["sm_steps"]
    sync_intensity = sync.mp_counts().comp_cycles_per_data_byte
    async_intensity = pair.mp_counts().comp_cycles_per_data_byte
    sync_pstep = sync.mp_counts().bytes_transmitted / sync.extra["mp_steps"]
    async_pstep = pair.mp_counts().bytes_transmitted / pair.extra["mp_steps"]
    return [
        _check("fewer steps to converge", async_steps <= sync_steps,
               f"{async_steps} vs {sync_steps} (paper: 34 vs 43)"),
        _check("more traffic per step", async_pstep > 1.5 * sync_pstep,
               f"{async_pstep:.0f} vs {sync_pstep:.0f} bytes/step"),
        _check("communication intensity collapses",
               async_intensity < 0.6 * sync_intensity,
               f"comp/data-byte {async_intensity:.1f} vs {sync_intensity:.1f} "
               "(paper: 6 vs 29)"),
    ]


def _validation_shape(checks: Dict[str, Dict[str, float]]) -> List[ShapeCheck]:
    results = []
    for name, values in checks.items():
        measured, expected = values["measured"], values["expected"]
        error = abs(measured - expected) / expected
        results.append(
            _check(name, error <= 0.27,
                   f"measured {measured:.0f} vs expected {expected:.0f} "
                   f"({error:.0%}; the paper's CM-5 validation was within 27%)")
        )
    return results


# ---------------------------------------------------------------------------
# The registry.
# ---------------------------------------------------------------------------

EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.id: spec
    for spec in [
        ExperimentSpec(
            id="mse",
            title="Microstructure Electrostatics (MSE-MP vs MSE-SM)",
            paper_tables="Tables 4, 5, 6, 7",
            description="Computation-bound boundary-integral code with "
                        "schedule-driven communication.",
            runner=run_mse_pair,
            config=MSE_CONFIG,
            shape=_mse_shape,
            paper={
                "mp_total_Mcycles": 1241.1, "sm_total_Mcycles": 1267.8,
                "mp_relative": 0.98, "mp_compute_share": 0.90,
                "sm_compute_share": 0.82,
                "mp_comp_per_data_byte": 1452, "sm_comp_per_data_byte": 985,
            },
        ),
        ExperimentSpec(
            id="gauss",
            title="Gaussian Elimination (Gauss-MP vs Gauss-SM)",
            paper_tables="Tables 8, 9, 10, 11",
            description="Reduction/broadcast-dominated elimination; software "
                        "collectives vs shared-memory broadcast with "
                        "directory contention.",
            runner=run_gauss_pair,
            config=GAUSS_CONFIG,
            shape=_gauss_shape,
            paper={
                "mp_total_Mcycles": 71.0, "sm_total_Mcycles": 72.7,
                "mp_relative": 0.98, "mp_comm_share": 0.42,
                "sm_miss_share": 0.23, "directory_queue_delay": 200,
                "mp_comp_per_data_byte": 78, "sm_comp_per_data_byte": 47,
            },
        ),
        ExperimentSpec(
            id="gauss_collectives",
            title="Collective strategies in Gauss-MP",
            paper_tables="Section 5.2 text (119.3M / 40.9M / 30.1M cycles)",
            description="Flat vs binary-tree vs lop-sided (LogP) broadcast "
                        "and reduction.",
            runner=run_gauss_collectives,
            config=GAUSS_COLLECTIVES_CONFIG,
            shape=_collectives_shape,
            paper={"flat_M": 119.3, "binary_M": 40.9, "lopsided_M": 30.1},
            # The lop-sided tree's edge over binary depends on the
            # CM-5's send-overhead/latency ratio; the cluster preset's
            # cheap on-node hops flip it.
            paper_only=("lop-sided beats binary",),
        ),
        ExperimentSpec(
            id="gauss_contention",
            title="Directory contention vs. machine size (Gauss-SM)",
            paper_tables="Section 5.2 text (~200-cycle queue delay, "
                         "~700-cycle contended miss; 'untenable for "
                         "larger systems')",
            description="Fixed problem, growing processor count: queue "
                        "delay and per-miss cost at the directories.",
            runner=run_gauss_contention,
            config=GAUSS_CONTENTION_CONFIG,
            shape=_contention_scaling_shape,
            paper={"queue_delay_32p": 200, "contended_miss_32p": 700,
                   "idle_miss": 250},
        ),
        ExperimentSpec(
            id="em3d",
            title="EM3D (EM3D-MP vs EM3D-SM)",
            paper_tables="Tables 12, 13, 14, 15",
            description="Producer-consumer bipartite graph computation: the "
                        "paper's clearest message-passing win.",
            runner=run_em3d_pair,
            config=EM3D_CONFIG,
            shape=_em3d_shape,
            paper={
                "mp_total_Mcycles": 86.4, "sm_total_Mcycles": 172.1,
                "sm_relative": 2.00, "sm_data_access_share": 0.64,
                "mp_channel_writes_main": 200, "sm_shared_misses_main": 330044,
                "mp_comp_per_data_byte": 20, "sm_comp_per_data_byte": 2,
            },
            notes="Scaled run lands at SM/MP ~ 2.5-4.0 (paper 2.0): the "
                  "block-layout details that gave the paper's SM version "
                  "half the misses of MP are not recoverable from the text.",
        ),
        ExperimentSpec(
            id="em3d_bigcache",
            title="EM3D-SM with a 4x larger cache",
            paper_tables="Table 16",
            description="Capacity misses vanish; SM main loop drops below "
                        "MP's in the paper.",
            runner=run_em3d_pair,
            config=EM3D_BIGCACHE_CONFIG,
            shape=_em3d_bigcache_shape,
            paper={"sm_main_Mcycles": 61.0, "base_sm_main_Mcycles": 130.0},
            after=("em3d",),
        ),
        ExperimentSpec(
            id="em3d_localalloc",
            title="EM3D-SM with local allocation",
            paper_tables="Table 17",
            description="Local placement turns remote misses local: "
                        "97% -> 10% remote, main loop to ~2/3.",
            runner=run_em3d_pair,
            config=EM3D_LOCALALLOC_CONFIG,
            shape=_em3d_localalloc_shape,
            paper={"sm_main_Mcycles": 86.3, "remote_fraction": 0.10},
            after=("em3d",),
            # Local allocation's speedup trades remote misses for DRAM
            # accesses; the modern presets' memory wall (dram_cycles
            # 150 vs 10) erases the win even as the remote fraction
            # still collapses.
            paper_only=("main loop faster",),
        ),
        ExperimentSpec(
            id="em3d_protocols",
            title="EM3D-SM protocol extensions: flush and bulk update",
            paper_tables="Section 5.3.4 discussion (design-choice ablation)",
            description="Consumer flushes turn 2-message invalidations "
                        "into 1-message replacements; the bulk-update "
                        "protocol replaces invalidate+miss with one push.",
            runner=run_em3d_protocols,
            config=EM3D_PROTOCOLS_CONFIG,
            shape=_em3d_protocols_shape,
            paper={"update_vs_mp": "equivalent (Falsafi et al. [6])"},
            notes="Not a paper table: the paper discusses these fixes and "
                  "cites Falsafi et al.'s measurement; this ablation "
                  "implements them.",
        ),
        ExperimentSpec(
            id="lcp",
            title="Synchronous LCP (LCP-MP vs LCP-SM)",
            paper_tables="Tables 18, 19 and the synchronous columns of 22, 23",
            description="Multi-sweep SOR with per-step solution exchange.",
            runner=run_lcp_pair,
            config=LCP_CONFIG,
            shape=_lcp_shape,
            paper={
                "mp_total_Mcycles": 56.8, "sm_total_Mcycles": 66.0,
                "mp_relative": 0.86, "steps": 43,
                "mp_comp_per_data_byte": 29, "sm_comp_per_data_byte": 26,
            },
        ),
        ExperimentSpec(
            id="alcp",
            title="Asynchronous LCP (ALCP-MP vs ALCP-SM)",
            paper_tables="Tables 20, 21 and the asynchronous columns of 22, 23",
            description="Publish-every-sweep variant: fewer steps, far more "
                        "communication.",
            runner=run_lcp_pair,
            config=ALCP_CONFIG,
            shape=_alcp_shape,
            paper={
                "mp_total_Mcycles": 92.7, "sm_total_Mcycles": 98.7,
                "steps_mp": 35, "steps_sm": 34,
                "mp_comp_per_data_byte": 6, "sm_comp_per_data_byte": 4,
            },
            notes="At the scaled problem the asynchronous variant converges "
                  "proportionally faster than in the paper, so total time "
                  "does not regress; per-step traffic and the intensity "
                  "collapse reproduce.",
            after=("lcp",),
        ),
        ExperimentSpec(
            id="validation",
            title="Simulator validation microbenchmarks",
            paper_tables="Section 4.1 (simulator within 14-27% of a CM-5)",
            description="Measured primitive latencies vs their analytic "
                        "compositions of the Table 1-3 costs.",
            runner=run_validation_micro,
            config=VALIDATION_CONFIG,
            shape=_validation_shape,
            paper={"tolerance": 0.27},
        ),
    ]
}
