"""Fidelity scorecard: how close is the reproduction to the paper?

For each application pair, compares the scale-stable quantities — the
category *shares* of each program's total and the MP/SM ratio — against
the paper's tables (:mod:`repro.core.paper_data`), reporting absolute
errors in percentage points. ``python -m repro fidelity`` prints the
scorecard.

Built on the runner harness: the shares come from each pair's
serializable :class:`~repro.runner.record.RunRecord` summary, so a
warm on-disk cache serves the whole scorecard without a single
simulation.

This is the reproduction's honest self-assessment: a share error of a
few points means the scaled run tells the paper's story; tens of points
would mean it does not. The EM3D SM/MP ratio is the known soft spot
(see the experiment's note in the registry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core import paper_data
from repro.runner.api import record_for
from repro.runner.cache import ResultCache
from repro.runner.record import RunRecord

#: experiment id -> paper_data key for the pair experiments.
PAIR_KEYS = {
    "mse": "mse",
    "gauss": "gauss",
    "em3d": "em3d_total",
    "lcp": "lcp",
    "alcp": "alcp",
}


@dataclass(frozen=True)
class FidelityRow:
    """One compared quantity."""

    experiment: str
    metric: str
    paper: float  # percent (share) or ratio x100
    measured: float

    @property
    def abs_error(self) -> float:
        """Absolute error in percentage points."""
        return abs(self.paper - self.measured)


def _share(part: float, whole: float) -> float:
    return 100.0 * part / whole if whole else 0.0


def assess_pair(
    exp_id: str,
    record: Optional[RunRecord] = None,
    cache: Optional[ResultCache] = None,
) -> List[FidelityRow]:
    """Fidelity rows for one application pair.

    Works from the experiment's run record (cached or freshly run);
    pass ``record`` to score an already-available result.
    """
    key = PAIR_KEYS[exp_id]
    if record is None:
        record = record_for(exp_id, cache=cache)
    summary = record.summary
    if summary.get("kind") != "pair":
        raise ValueError(f"{exp_id} is not a pair experiment")
    paper_mp = paper_data.MP_BREAKDOWNS[key]
    paper_sm = paper_data.SM_BREAKDOWNS[key]
    mine_mp = summary["mp"]["overall"]
    mine_sm = summary["sm"]["overall"]
    rows = [
        FidelityRow(exp_id, "MP computation share",
                    _share(paper_mp.computation, paper_mp.total),
                    _share(mine_mp["computation"], mine_mp["total"])),
        FidelityRow(exp_id, "MP local-miss share",
                    _share(paper_mp.local_misses, paper_mp.total),
                    _share(mine_mp["local_misses"], mine_mp["total"])),
        FidelityRow(exp_id, "MP communication share",
                    _share(paper_mp.communication, paper_mp.total),
                    _share(mine_mp["communication"], mine_mp["total"])),
        FidelityRow(exp_id, "SM computation share",
                    _share(paper_sm.computation, paper_sm.total),
                    _share(mine_sm["computation"], mine_sm["total"])),
        FidelityRow(exp_id, "SM data-access share",
                    _share(paper_sm.cache_misses, paper_sm.total),
                    _share(mine_sm["data_access"], mine_sm["total"])),
        FidelityRow(exp_id, "SM synchronization share",
                    _share(paper_sm.synchronization, paper_sm.total),
                    _share(mine_sm["synchronization"], mine_sm["total"])),
    ]
    if paper_mp.relative_to_sm is not None:
        rows.append(
            FidelityRow(exp_id, "MP relative to SM",
                        100.0 * paper_mp.relative_to_sm,
                        100.0 * summary["mp_relative_to_sm"])
        )
    return rows


def assess_all(cache: Optional[ResultCache] = None) -> List[FidelityRow]:
    """Fidelity rows for every pair experiment, in registry order."""
    rows: List[FidelityRow] = []
    for exp_id in PAIR_KEYS:
        rows.extend(assess_pair(exp_id, cache=cache))
    return rows


def summarize(rows: List[FidelityRow]) -> Dict[str, float]:
    """Aggregate statistics over a set of fidelity rows."""
    if not rows:
        raise ValueError("no rows to summarize")
    errors = sorted(row.abs_error for row in rows)
    return {
        "rows": float(len(errors)),
        "mean_abs_error_pp": sum(errors) / len(errors),
        "median_abs_error_pp": errors[len(errors) // 2],
        "max_abs_error_pp": errors[-1],
        "within_10pp": sum(1 for e in errors if e <= 10.0) / len(errors),
    }


def render_scorecard(rows: List[FidelityRow]) -> str:
    """ASCII scorecard of paper-vs-measured shares."""
    lines = [
        "Fidelity scorecard: category shares, paper (32p) vs. scaled run",
        "-" * 72,
        f"{'experiment':<8}{'metric':<28}{'paper':>8}{'run':>8}{'|err|':>8}",
        "-" * 72,
    ]
    for row in rows:
        lines.append(
            f"{row.experiment:<8}{row.metric:<28}"
            f"{row.paper:>7.0f}%{row.measured:>7.0f}%"
            f"{row.abs_error:>7.1f}p"
        )
    stats = summarize(rows)
    lines += [
        "-" * 72,
        f"mean |error| {stats['mean_abs_error_pp']:.1f}pp, "
        f"median {stats['median_abs_error_pp']:.1f}pp, "
        f"max {stats['max_abs_error_pp']:.1f}pp, "
        f"{100 * stats['within_10pp']:.0f}% of rows within 10pp",
    ]
    return "\n".join(lines)
