"""The paper's reported results, transcribed (Tables 4-23 + text).

Structured reference data for EXPERIMENTS.md generation, side-by-side
rendering, and consistency tests. All cycle figures are millions of
cycles, averaged over the 32 processors of the paper's runs; event
counts are per-processor. ``None`` marks entries the paper leaves
blank.

Transcription notes:

* Table 4's Local Misses value is not printed legibly in the source
  text; it is recovered as total - (computation + communication) =
  1241.1 - 1115.9 - 80.7 = 44.5M (4%, matching the printed percent).
* Table 8's Local Misses and Table 12/14 sub-entries follow the same
  reconstruction where the text shows only percentages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class PaperMpBreakdown:
    """One message-passing breakdown table (4, 8, 12, 18, 20)."""

    table: str
    program: str
    computation: float
    local_misses: float
    lib_comp: float
    lib_misses: float
    network_access: float
    total: float
    barriers: float = 0.0
    relative_to_sm: Optional[float] = None

    @property
    def communication(self) -> float:
        return self.lib_comp + self.lib_misses + self.network_access


@dataclass(frozen=True)
class PaperSmBreakdown:
    """One shared-memory breakdown table (5, 9, 14, 16, 17, 19, 21)."""

    table: str
    program: str
    computation: float
    total: float
    cache_misses: float = 0.0  # "Cache Misses"/"Data Access" group
    shared_misses: Optional[float] = None
    write_faults: Optional[float] = None
    tlb_misses: Optional[float] = None
    synchronization: float = 0.0
    sync_comp: Optional[float] = None
    sync_miss: Optional[float] = None
    locks: Optional[float] = None
    barriers: Optional[float] = None
    reductions: Optional[float] = None
    startup_wait: Optional[float] = None
    relative_to_mp: Optional[float] = None


@dataclass(frozen=True)
class PaperMpCounts:
    """One message-passing count table (6, 10, 13, 22)."""

    table: str
    program: str
    local_misses: float
    bytes_data: float
    bytes_control: float
    comp_per_data_byte: float
    messages_sent: Optional[float] = None
    channel_writes: Optional[float] = None
    active_messages: Optional[float] = None


@dataclass(frozen=True)
class PaperSmCounts:
    """One shared-memory count table (7, 11, 15, 23)."""

    table: str
    program: str
    private_misses: float
    shared_misses: float
    shared_local: float
    shared_remote: float
    write_faults: float
    bytes_data: float
    bytes_control: float
    comp_per_data_byte: float


MP_BREAKDOWNS: Dict[str, PaperMpBreakdown] = {
    "mse": PaperMpBreakdown(
        table="4", program="MSE-MP",
        # Local misses reconstructed: 1241.1 - 1115.9 - 69.9 - 2.1 = 53.2
        # (the printed 4% of 1241.1 is ~50M; the table cell is illegible
        # in the source text).
        computation=1115.9, local_misses=53.2,
        lib_comp=69.9, lib_misses=0.0, network_access=2.1,
        total=1241.1, relative_to_sm=0.98,
    ),
    "gauss": PaperMpBreakdown(
        table="8", program="Gauss-MP",
        computation=40.8, local_misses=0.1,
        lib_comp=23.6, lib_misses=0.03, network_access=4.7,
        barriers=1.4, total=71.0, relative_to_sm=0.98,
    ),
    "em3d_total": PaperMpBreakdown(
        table="12", program="EM3D-MP (total)",
        computation=50.5, local_misses=15.0,
        lib_comp=16.8, lib_misses=0.3, network_access=3.9,
        total=86.4, relative_to_sm=0.50,
    ),
    "em3d_init": PaperMpBreakdown(
        table="12", program="EM3D-MP (init)",
        computation=18.2, local_misses=1.3,
        lib_comp=0.4, lib_misses=0.0, network_access=0.1,
        total=20.0,
    ),
    "em3d_main": PaperMpBreakdown(
        table="12", program="EM3D-MP (main loop)",
        computation=32.3, local_misses=13.7,
        lib_comp=16.4, lib_misses=0.3, network_access=3.8,
        total=66.5,
    ),
    "lcp": PaperMpBreakdown(
        table="18", program="LCP-MP",
        computation=41.1, local_misses=0.06,
        lib_comp=12.6, lib_misses=0.02, network_access=2.7,
        barriers=0.3, total=56.8, relative_to_sm=0.86,
    ),
    "alcp": PaperMpBreakdown(
        table="20", program="ALCP-MP",
        computation=32.9, local_misses=0.09,
        lib_comp=46.5, lib_misses=0.0, network_access=12.9,
        barriers=0.3, total=92.7, relative_to_sm=0.94,
    ),
}

SM_BREAKDOWNS: Dict[str, PaperSmBreakdown] = {
    "mse": PaperSmBreakdown(
        table="5", program="MSE-SM",
        computation=1043.8, cache_misses=62.7,
        synchronization=161.3, barriers=80.0, startup_wait=80.0,
        total=1267.8, relative_to_mp=1.02,
    ),
    "gauss": PaperSmBreakdown(
        table="9", program="Gauss-SM",
        computation=39.5, cache_misses=17.1,
        synchronization=16.1, reductions=4.4, barriers=11.6,
        total=72.7, relative_to_mp=1.02,
    ),
    "em3d_total": PaperSmBreakdown(
        table="14", program="EM3D-SM (total)",
        computation=43.7, cache_misses=109.8,
        shared_misses=97.0, write_faults=12.2, tlb_misses=0.7,
        synchronization=18.4, sync_comp=1.2, locks=6.9, barriers=10.3,
        total=172.1, relative_to_mp=2.00,
    ),
    "em3d_init": PaperSmBreakdown(
        table="14", program="EM3D-SM (init)",
        computation=17.2, cache_misses=15.7,
        shared_misses=13.4, write_faults=1.8, tlb_misses=0.6,
        synchronization=9.0, sync_comp=1.2, locks=6.9, barriers=0.9,
        total=42.1,
    ),
    "em3d_main": PaperSmBreakdown(
        table="14", program="EM3D-SM (main loop)",
        computation=26.5, cache_misses=94.1,
        shared_misses=83.6, write_faults=10.4, tlb_misses=0.1,
        synchronization=9.4, barriers=9.4,
        total=130.0,
    ),
    "em3d_1mb": PaperSmBreakdown(
        table="16", program="EM3D-SM 1MB cache (main loop)",
        computation=26.5, cache_misses=33.1,
        shared_misses=22.1, write_faults=10.9, tlb_misses=0.1,
        synchronization=1.5, barriers=1.5,
        total=61.0,
    ),
    "em3d_local": PaperSmBreakdown(
        table="17", program="EM3D-SM local allocation (main loop)",
        computation=26.5, cache_misses=58.9,
        shared_misses=52.3, write_faults=6.5, tlb_misses=0.1,
        synchronization=0.9, barriers=0.9,
        total=86.3,
    ),
    "lcp": PaperSmBreakdown(
        table="19", program="LCP-SM",
        computation=41.3, cache_misses=13.4,
        synchronization=11.3, sync_comp=3.2, sync_miss=0.1, barriers=8.0,
        total=66.0, relative_to_mp=1.16,
    ),
    "alcp": PaperSmBreakdown(
        table="21", program="ALCP-SM",
        computation=32.0, cache_misses=62.9,
        synchronization=3.8, sync_comp=1.6, sync_miss=0.1, barriers=2.2,
        total=98.7, relative_to_mp=1.06,
    ),
}

MP_COUNTS: Dict[str, PaperMpCounts] = {
    "mse": PaperMpCounts(
        table="6", program="MSE-MP",
        local_misses=2.4e6, messages_sent=1271,
        bytes_data=0.8e6, bytes_control=0.3e6, comp_per_data_byte=1452,
    ),
    "gauss": PaperMpCounts(
        table="10", program="Gauss-MP",
        local_misses=3489, channel_writes=511, active_messages=1534,
        bytes_data=0.5e6, bytes_control=0.2e6, comp_per_data_byte=78,
    ),
    "em3d_main": PaperMpCounts(
        table="13", program="EM3D-MP (main loop)",
        local_misses=643436, channel_writes=200,
        bytes_data=1.6e6, bytes_control=0.4e6, comp_per_data_byte=20,
    ),
    "lcp": PaperMpCounts(
        table="22", program="LCP-MP (synchronous)",
        local_misses=3873, channel_writes=220, active_messages=90,
        bytes_data=1.4e6, bytes_control=0.4e6, comp_per_data_byte=29,
    ),
    "alcp": PaperMpCounts(
        table="22", program="ALCP-MP (asynchronous)",
        local_misses=4345, channel_writes=5425, active_messages=74,
        bytes_data=5.6e6, bytes_control=1.4e6, comp_per_data_byte=6,
    ),
}

SM_COUNTS: Dict[str, PaperSmCounts] = {
    "mse": PaperSmCounts(
        table="7", program="MSE-SM",
        private_misses=2.5e6, shared_misses=0.04e6,
        shared_local=0.01e6, shared_remote=0.03e6, write_faults=774,
        bytes_data=1.0e6, bytes_control=1.4e6, comp_per_data_byte=985,
    ),
    "gauss": PaperSmCounts(
        table="11", program="Gauss-SM",
        private_misses=92, shared_misses=23590,
        shared_local=781, shared_remote=22809, write_faults=946,
        bytes_data=0.8e6, bytes_control=1.0e6, comp_per_data_byte=47,
    ),
    "em3d_main": PaperSmCounts(
        table="15", program="EM3D-SM (main loop)",
        private_misses=109, shared_misses=330044,
        shared_local=10818, shared_remote=319226, write_faults=24975,
        bytes_data=11.9e6, bytes_control=11.0e6, comp_per_data_byte=2,
    ),
    "lcp": PaperSmCounts(
        table="23", program="LCP-SM (synchronous)",
        private_misses=56, shared_misses=48411,
        shared_local=1528, shared_remote=46883, write_faults=1481,
        bytes_data=1.6e6, bytes_control=2.1e6, comp_per_data_byte=26,
    ),
    "alcp": PaperSmCounts(
        table="23", program="ALCP-SM (asynchronous)",
        private_misses=60, shared_misses=206615,
        shared_local=6140, shared_remote=200475, write_faults=15814,
        bytes_data=7.4e6, bytes_control=9.6e6, comp_per_data_byte=4,
    ),
}

#: Section 5.2 text: Gauss collective-strategy cycle totals (millions).
COLLECTIVE_STRATEGIES_M = {"flat": 119.3, "binary": 40.9, "lopsided": 30.1}

#: Section 5.2 text: directory contention in Gauss-SM.
GAUSS_CONTENTION = {
    "avg_shared_miss_cycles": 700,
    "idle_shared_miss_cycles": 250,
    "avg_directory_queue_delay": 200,
}

#: Section 5.4 text: convergence steps.
LCP_STEPS = {"sync": 43, "async_sm": 34, "async_mp": 35}

#: Section 4.1: validation of the simulator against a physical CM-5.
VALIDATION_BAND = 0.27
