"""Pair studies: run both versions of an application and compare.

A :class:`PairResult` holds the two runs' breakdowns and event counts
and computes the paper's comparative metrics ("Relative to Shared
Memory" / "Relative to Message Passing").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.breakdown import MpBreakdown, MpCounts, SmBreakdown, SmCounts
from repro.mp.machine import MpRunResult
from repro.sm.machine import SmRunResult


@dataclass
class PairResult:
    """Both sides of one application comparison."""

    name: str
    mp_result: MpRunResult
    sm_result: SmRunResult
    phases: List[str] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)

    def mp_breakdown(self, phase: Optional[str] = None) -> MpBreakdown:
        return MpBreakdown.from_board(self.mp_result.board, phase=phase)

    def sm_breakdown(self, phase: Optional[str] = None) -> SmBreakdown:
        return SmBreakdown.from_board(self.sm_result.board, phase=phase)

    def mp_counts(self, phase: Optional[str] = None) -> MpCounts:
        return MpCounts.from_board(self.mp_result.board, phase=phase)

    def sm_counts(self, phase: Optional[str] = None) -> SmCounts:
        return SmCounts.from_board(self.sm_result.board, phase=phase)

    @property
    def mp_total(self) -> float:
        return self.mp_breakdown().total

    @property
    def sm_total(self) -> float:
        return self.sm_breakdown().total

    @property
    def mp_relative_to_sm(self) -> float:
        """The MP table's footer: MP total / SM total (paper: 0.98 etc.)."""
        if self.sm_total == 0:
            return float("inf")
        return self.mp_total / self.sm_total

    @property
    def sm_relative_to_mp(self) -> float:
        """The SM table's footer: SM total / MP total (paper: 1.02 etc.)."""
        if self.mp_total == 0:
            return float("inf")
        return self.sm_total / self.mp_total
