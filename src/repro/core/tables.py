"""Paper-style rendering of experiment results."""

from __future__ import annotations

from typing import List, Optional

from repro.core.study import PairResult
from repro.stats.report import (
    format_breakdown,
    format_comparison,
    format_counts,
    human_quantity,
)


def render_mp_breakdown(pair: PairResult, phase: Optional[str] = None) -> str:
    """The message-passing time-breakdown table (paper Tables 4, 8, ...)."""
    breakdown = pair.mp_breakdown(phase=phase)
    suffix = f" [{phase}]" if phase else ""
    return format_breakdown(
        f"{pair.name} Message Passing ({pair.name}-MP){suffix}",
        breakdown.rows(),
        breakdown.total,
        relative=("Relative to Shared Memory", pair.mp_relative_to_sm),
    )


def render_sm_breakdown(pair: PairResult, phase: Optional[str] = None) -> str:
    """The shared-memory time-breakdown table (paper Tables 5, 9, ...)."""
    breakdown = pair.sm_breakdown(phase=phase)
    suffix = f" [{phase}]" if phase else ""
    return format_breakdown(
        f"{pair.name} Shared Memory ({pair.name}-SM){suffix}",
        breakdown.rows(),
        breakdown.total,
        relative=("Relative to Message Passing", pair.sm_relative_to_mp),
    )


def render_mp_counts(pair: PairResult, phase: Optional[str] = None) -> str:
    """The message-passing event-count table (paper Tables 6, 10, ...)."""
    counts = pair.mp_counts(phase=phase)
    suffix = f" [{phase}]" if phase else ""
    rows = [
        ("Local Misses", human_quantity(counts.local_misses), 0),
        ("Messages sent", human_quantity(counts.messages_sent), 0),
        ("Channel Writes", human_quantity(counts.channel_writes), 1),
        ("Active Messages", human_quantity(counts.active_messages), 1),
        ("Bytes Transmitted", human_quantity(counts.bytes_transmitted), 0),
        ("Data", human_quantity(counts.data_bytes), 1),
        ("Control", human_quantity(counts.control_bytes), 1),
        (
            "Computation Cycles Per Data Byte",
            f"{counts.comp_cycles_per_data_byte:.0f}",
            0,
        ),
    ]
    return format_counts(f"{pair.name}-MP per-processor counts{suffix}", rows)


def render_sm_counts(pair: PairResult, phase: Optional[str] = None) -> str:
    """The shared-memory event-count table (paper Tables 7, 11, ...)."""
    counts = pair.sm_counts(phase=phase)
    suffix = f" [{phase}]" if phase else ""
    rows = [
        ("Cache Misses", "", 0),
        ("Private Misses", human_quantity(counts.private_misses), 1),
        ("Shared Misses", human_quantity(counts.shared_misses), 1),
        ("Local", human_quantity(counts.shared_misses_local), 2),
        ("Remote", human_quantity(counts.shared_misses_remote), 2),
        ("Write Faults", human_quantity(counts.write_faults), 0),
        ("Bytes Transmitted", human_quantity(counts.bytes_transmitted), 0),
        ("Data", human_quantity(counts.data_bytes), 1),
        ("Control", human_quantity(counts.control_bytes), 1),
        (
            "Computation Cycles Per Data Byte",
            f"{counts.comp_cycles_per_data_byte:.0f}",
            0,
        ),
    ]
    return format_counts(f"{pair.name}-SM per-processor counts{suffix}", rows)


def render_share_comparison(pair: PairResult, app_key: str) -> str:
    """Side-by-side category *shares*: paper vs. this scaled run.

    Shares (percent of each program's total), not absolute cycles —
    the scale-stable quantity the reproduction targets. ``app_key``
    indexes :mod:`repro.core.paper_data` ("mse", "gauss", "em3d_total",
    "lcp", "alcp").
    """
    from repro.core import paper_data

    paper_mp = paper_data.MP_BREAKDOWNS[app_key]
    paper_sm = paper_data.SM_BREAKDOWNS[app_key]
    mine_mp = pair.mp_breakdown()
    mine_sm = pair.sm_breakdown()

    def pct(part: float, whole: float) -> str:
        return f"{100 * part / whole:.0f}%" if whole else "-"

    rows = [
        ("MP computation",
         [pct(paper_mp.computation, paper_mp.total),
          pct(mine_mp.computation, mine_mp.total)]),
        ("MP local misses",
         [pct(paper_mp.local_misses, paper_mp.total),
          pct(mine_mp.local_misses, mine_mp.total)]),
        ("MP communication",
         [pct(paper_mp.communication, paper_mp.total),
          pct(mine_mp.communication, mine_mp.total)]),
        ("SM computation",
         [pct(paper_sm.computation, paper_sm.total),
          pct(mine_sm.computation, mine_sm.total)]),
        ("SM data access",
         [pct(paper_sm.cache_misses, paper_sm.total),
          pct(mine_sm.data_access, mine_sm.total)]),
        ("SM synchronization",
         [pct(paper_sm.synchronization, paper_sm.total),
          pct(mine_sm.synchronization, mine_sm.total)]),
        ("MP relative to SM",
         [f"{100 * (paper_mp.relative_to_sm or 0):.0f}%"
          if paper_mp.relative_to_sm else "-",
          f"{100 * pair.mp_relative_to_sm:.0f}%"]),
    ]
    return format_comparison(
        f"{pair.name}: category shares, paper vs. scaled run",
        ["paper (32p)", "this run"],
        rows,
    )


def render_pair(pair: PairResult, phases: bool = False) -> str:
    """Both breakdowns and both count tables, optionally per phase."""
    sections: List[str] = [
        render_mp_breakdown(pair),
        render_sm_breakdown(pair),
        render_mp_counts(pair),
        render_sm_counts(pair),
    ]
    if phases:
        for phase in pair.phases:
            sections.append(render_mp_breakdown(pair, phase=phase))
            sections.append(render_sm_breakdown(pair, phase=phase))
    return "\n\n".join(sections)
