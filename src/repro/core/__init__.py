"""The paper's core contribution: the comparative measurement study.

``repro.core`` packages the methodology — equal-algorithm program pairs
on two machines with a common hardware base, a time-breakdown taxonomy,
and per-processor event counts — into a reusable harness:

* :mod:`repro.core.breakdown` — the MP and SM breakdown/count records;
* :mod:`repro.core.study` — run a program pair, produce a PairResult;
* :mod:`repro.core.experiments` — the registry mapping every table and
  figure of the paper's evaluation to a runnable configuration;
* :mod:`repro.core.tables` — paper-style rendering.

Execution (parallel workers, the on-disk result cache, serializable
run records) lives in :mod:`repro.runner`; :func:`run_experiment`
remains here as the in-process compatibility entry point.
"""

from repro.core.breakdown import MpBreakdown, MpCounts, SmBreakdown, SmCounts
from repro.core.experiments import (
    EXPERIMENTS,
    ExperimentSpec,
    get_experiment,
    run_experiment,
)
from repro.core.study import PairResult

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "MpBreakdown",
    "MpCounts",
    "PairResult",
    "SmBreakdown",
    "SmCounts",
    "get_experiment",
    "run_experiment",
]
