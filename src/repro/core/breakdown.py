"""Time-breakdown and event-count records (the paper's table rows).

``MpBreakdown``/``SmBreakdown`` summarize a machine run into the exact
categories of the paper's per-program tables; ``MpCounts``/``SmCounts``
mirror the per-processor event-count tables, including the paper's
communication-intensity metric, computation cycles per data byte
transmitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.stats.categories import MpCat, SmCat
from repro.stats.collector import StatsBoard

BreakdownRow = Tuple[str, float, int]


@dataclass(frozen=True)
class MpBreakdown:
    """Average per-processor cycles by category (paper MP tables)."""

    computation: float
    local_misses: float
    lib_comp: float
    lib_misses: float
    network_access: float
    barriers: float

    @classmethod
    def from_board(cls, board: StatsBoard, phase: Optional[str] = None) -> "MpBreakdown":
        def mean(category: MpCat) -> float:
            return board.mean_cycles(category, phase=phase)

        return cls(
            computation=mean(MpCat.COMPUTE),
            local_misses=mean(MpCat.LOCAL_MISS),
            lib_comp=mean(MpCat.LIB_COMPUTE),
            lib_misses=mean(MpCat.LIB_MISS),
            network_access=mean(MpCat.NETWORK_ACCESS),
            barriers=mean(MpCat.BARRIER),
        )

    @property
    def communication(self) -> float:
        """The paper's Communication group: Lib Comp + Lib Misses + NI."""
        return self.lib_comp + self.lib_misses + self.network_access

    @property
    def total(self) -> float:
        return self.computation + self.local_misses + self.communication + self.barriers

    def rows(self) -> List[BreakdownRow]:
        rows: List[BreakdownRow] = [
            ("Computation", self.computation, 0),
            ("Local Misses", self.local_misses, 0),
            ("Communication", self.communication, 0),
            ("Lib Comp", self.lib_comp, 1),
            ("Lib Misses", self.lib_misses, 1),
            ("Network Access", self.network_access, 1),
        ]
        if self.barriers:
            rows.append(("Barriers", self.barriers, 0))
        return rows


@dataclass(frozen=True)
class SmBreakdown:
    """Average per-processor cycles by category (paper SM tables)."""

    computation: float
    private_misses: float
    shared_misses: float
    write_faults: float
    tlb_misses: float
    sync_comp: float
    sync_miss: float
    locks: float
    barriers: float
    reductions: float
    startup_wait: float

    @classmethod
    def from_board(cls, board: StatsBoard, phase: Optional[str] = None) -> "SmBreakdown":
        def mean(category: SmCat) -> float:
            return board.mean_cycles(category, phase=phase)

        return cls(
            computation=mean(SmCat.COMPUTE),
            private_misses=mean(SmCat.PRIVATE_MISS),
            shared_misses=mean(SmCat.SHARED_MISS),
            write_faults=mean(SmCat.WRITE_FAULT),
            tlb_misses=mean(SmCat.TLB_MISS),
            sync_comp=mean(SmCat.SYNC_COMPUTE),
            sync_miss=mean(SmCat.SYNC_MISS),
            locks=mean(SmCat.LOCK),
            barriers=mean(SmCat.BARRIER),
            reductions=mean(SmCat.REDUCTION),
            startup_wait=mean(SmCat.STARTUP_WAIT),
        )

    @property
    def data_access(self) -> float:
        """The paper's Data Access / Cache Misses group."""
        return (
            self.private_misses + self.shared_misses + self.write_faults
            + self.tlb_misses
        )

    @property
    def synchronization(self) -> float:
        return (
            self.sync_comp + self.sync_miss + self.locks + self.barriers
            + self.reductions + self.startup_wait
        )

    @property
    def total(self) -> float:
        return self.computation + self.data_access + self.synchronization

    def rows(self) -> List[BreakdownRow]:
        rows: List[BreakdownRow] = [
            ("Computation", self.computation, 0),
            ("Data Access", self.data_access, 0),
        ]
        for label, value in (
            ("Private Misses", self.private_misses),
            ("Shared Misses", self.shared_misses),
            ("Write Faults", self.write_faults),
            ("TLB Misses", self.tlb_misses),
        ):
            if value:
                rows.append((label, value, 1))
        rows.append(("Synchronization", self.synchronization, 0))
        for label, value in (
            ("Sync Comp", self.sync_comp),
            ("Sync Miss", self.sync_miss),
            ("Locks", self.locks),
            ("Reductions", self.reductions),
            ("Barriers", self.barriers),
            ("Start-up Wait", self.startup_wait),
        ):
            if value:
                rows.append((label, value, 1))
        return rows


@dataclass(frozen=True)
class MpCounts:
    """Average per-processor event counts (paper MP count tables)."""

    local_misses: float
    messages_sent: float
    channel_writes: float
    active_messages: float
    data_bytes: float
    control_bytes: float
    computation: float

    @classmethod
    def from_board(cls, board: StatsBoard, phase: Optional[str] = None) -> "MpCounts":
        return cls(
            local_misses=board.mean_count("local_misses", phase=phase),
            messages_sent=board.mean_count("messages_sent", phase=phase),
            channel_writes=board.mean_count("channel_writes", phase=phase),
            active_messages=board.mean_count("active_messages", phase=phase),
            data_bytes=board.mean_count("data_bytes", phase=phase),
            control_bytes=board.mean_count("control_bytes", phase=phase),
            computation=board.mean_cycles(MpCat.COMPUTE, phase=phase),
        )

    @property
    def bytes_transmitted(self) -> float:
        return self.data_bytes + self.control_bytes

    @property
    def comp_cycles_per_data_byte(self) -> float:
        """The paper's communication-intensity metric."""
        if self.data_bytes == 0:
            return float("inf")
        return self.computation / self.data_bytes


@dataclass(frozen=True)
class SmCounts:
    """Average per-processor event counts (paper SM count tables)."""

    private_misses: float
    shared_misses_local: float
    shared_misses_remote: float
    write_faults: float
    data_bytes: float
    control_bytes: float
    computation: float

    @classmethod
    def from_board(cls, board: StatsBoard, phase: Optional[str] = None) -> "SmCounts":
        return cls(
            private_misses=board.mean_count("private_misses", phase=phase),
            shared_misses_local=board.mean_count("shared_misses_local", phase=phase),
            shared_misses_remote=board.mean_count("shared_misses_remote", phase=phase),
            write_faults=board.mean_count("write_faults", phase=phase),
            data_bytes=board.mean_count("data_bytes", phase=phase),
            control_bytes=board.mean_count("control_bytes", phase=phase),
            computation=board.mean_cycles(SmCat.COMPUTE, phase=phase),
        )

    @property
    def shared_misses(self) -> float:
        return self.shared_misses_local + self.shared_misses_remote

    @property
    def bytes_transmitted(self) -> float:
        return self.data_bytes + self.control_bytes

    @property
    def comp_cycles_per_data_byte(self) -> float:
        if self.data_bytes == 0:
            return float("inf")
        return self.computation / self.data_bytes

    @property
    def remote_fraction(self) -> float:
        """Fraction of shared misses that are remote (Table 17's lever)."""
        if self.shared_misses == 0:
            return 0.0
        return self.shared_misses_remote / self.shared_misses
