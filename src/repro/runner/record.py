"""Serializable run records.

A :class:`RunRecord` is the durable outcome of one experiment run: the
paper-style rendered tables, the shape-check verdicts, a structured
metric summary (breakdown and count categories per phase), and the
wall time. Records are plain JSON-safe data — they cross process
boundaries from worker to parent, live in the on-disk cache, and are
enough to re-print, score, and export a run without re-simulating.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.study import PairResult

#: Bump when the record layout changes; stored records with another
#: schema are treated as cache misses.
RECORD_SCHEMA = 1


@dataclass
class RunRecord:
    """One experiment run, reduced to serializable facts."""

    exp_id: str
    title: str
    paper_tables: str
    cache_key: str
    config: Dict[str, Any]
    elapsed_seconds: float
    checks: List[List[Any]]  # [name, ok, detail]
    rendered: str
    summary: Dict[str, Any]
    notes: str = ""
    #: Path of the Chrome-trace JSON attached by ``repro trace`` ("" when
    #: the run has never been traced). Additive: from_jsonable defaults
    #: it for records stored before tracing existed.
    trace_path: str = ""
    #: Machine preset the run resolved its parameter table from. The
    #: canonical config deliberately omits it (two spellings of the same
    #: machine share a cache key), so the record carries it as run
    #: provenance for the lake. Additive like ``trace_path``: records
    #: stored before the lake existed default to "" and the lake infers
    #: the preset by matching the resolved machine parameters.
    preset: str = ""
    schema: int = RECORD_SCHEMA
    cached: bool = field(default=False, compare=False)

    @property
    def all_ok(self) -> bool:
        return all(ok for _name, ok, _detail in self.checks)

    def to_jsonable(self) -> Dict[str, Any]:
        data = asdict(self)
        data.pop("cached")  # a load-time annotation, not a stored fact
        return data

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "RunRecord":
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in data.items() if k in known})


# ---------------------------------------------------------------------------
# Building records from live results.
# ---------------------------------------------------------------------------


def _finite(value: float) -> float:
    """JSON has no Infinity; clamp the intensity metric's inf."""
    if value != value or value in (float("inf"), float("-inf")):
        return -1.0
    return float(value)


def _breakdown_dict(breakdown: Any) -> Dict[str, float]:
    out = {k: float(v) for k, v in asdict(breakdown).items()}
    for prop in ("communication", "data_access", "synchronization", "total"):
        if hasattr(breakdown, prop):
            out[prop] = float(getattr(breakdown, prop))
    return out


def _counts_dict(counts: Any) -> Dict[str, float]:
    out = {k: float(v) for k, v in asdict(counts).items()}
    for prop in (
        "shared_misses",
        "bytes_transmitted",
        "comp_cycles_per_data_byte",
        "remote_fraction",
    ):
        if hasattr(counts, prop):
            out[prop] = _finite(getattr(counts, prop))
    return out


def _summarize_pair(pair: PairResult) -> Dict[str, Any]:
    phases = list(pair.phases)
    summary: Dict[str, Any] = {
        "kind": "pair",
        "name": pair.name,
        "phases": phases,
        "mp": {
            "overall": _breakdown_dict(pair.mp_breakdown()),
            "phases": {p: _breakdown_dict(pair.mp_breakdown(phase=p)) for p in phases},
        },
        "sm": {
            "overall": _breakdown_dict(pair.sm_breakdown()),
            "phases": {p: _breakdown_dict(pair.sm_breakdown(phase=p)) for p in phases},
        },
        "mp_counts": _counts_dict(pair.mp_counts()),
        "sm_counts": _counts_dict(pair.sm_counts()),
        "mp_relative_to_sm": _finite(pair.mp_relative_to_sm),
        "sm_relative_to_mp": _finite(pair.sm_relative_to_mp),
        "extra": {
            k: v
            for k, v in pair.extra.items()
            if isinstance(v, (int, float, str, bool))
        },
    }
    return summary


def _scalars(value: Any) -> Any:
    """JSON-safe projection of a scalar-dict result (drop machine runs)."""
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if hasattr(item, "board"):
                continue  # raw machine results; the checks summarize them
            out[str(key)] = _scalars(item)
        return out
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def summarize_result(result: Any) -> Dict[str, Any]:
    """Reduce a runner's raw result to a JSON-safe summary."""
    if isinstance(result, PairResult):
        return _summarize_pair(result)
    if isinstance(result, dict):
        return {"kind": "scalars", "data": _scalars(result)}
    return {"kind": "opaque", "repr": repr(result)}


def render_result(spec: Any, result: Any) -> str:
    """The human-readable body the CLI prints (tables or scalar lines).

    Rendered once, at run time, and stored in the record so cache hits
    reproduce the exact output without touching a simulator.
    """
    from repro.core.tables import render_pair

    if isinstance(result, PairResult):
        return render_pair(result, phases=bool(result.phases))
    if isinstance(result, dict):
        lines = []
        for key, value in result.items():
            if hasattr(value, "board"):
                continue
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)
    return f"  {result!r}"


def build_record(
    spec: Any,
    config: Any,
    result: Any,
    elapsed_seconds: float,
    key: Optional[str] = None,
) -> RunRecord:
    """Assemble the serializable record for one finished run."""
    from repro.runner.cache import cache_key

    checks = [[name, bool(ok), detail] for name, ok, detail in spec.shape(result)]
    # Claims pinned to the paper's 1994 machine gate only the paper
    # preset; under the modern presets they are recorded as waived, not
    # failed (the detail keeps the measured numbers for the artifact
    # trail).
    preset = getattr(config, "preset", "paper")
    if preset != "paper":
        waived = set(getattr(spec, "paper_only", ()))
        checks = [
            [name, True, f"waived under preset={preset!r}: {detail}"]
            if name in waived else [name, ok, detail]
            for name, ok, detail in checks
        ]
    return RunRecord(
        exp_id=spec.id,
        title=spec.title,
        paper_tables=spec.paper_tables,
        cache_key=key if key is not None else cache_key(config),
        config=config.to_jsonable(),
        elapsed_seconds=float(elapsed_seconds),
        checks=checks,
        rendered=render_result(spec, result),
        summary=summarize_result(result),
        notes=spec.notes,
        preset=preset,
    )
