"""Kernel and end-to-end benchmark suite (``repro bench``).

Measures the discrete-event kernel's throughput in events per second on
three microbenchmarks that isolate its hot paths, plus the cache/TLB
probe rate and (optionally) wall time of small end-to-end experiment
pairs. Results are written as JSON (``BENCH_kernel.json``) so CI can
compare a fresh run against the committed baseline and fail on
regressions.

Two gate metrics: ``kernel.events_per_sec`` — the aggregate over the
three kernel microbenchmarks — and the per-app ``events_per_sec`` of
each end-to-end pair, each held to the same regression floor against
the committed baseline. The app pairs run under a selectable execution
backend (``"batched"`` by default, ``"reference"`` for the per-event
scalar semantics); the backend is recorded in the document so baselines
are only compared like for like. Event counts come from
``Engine.run()`` return values, so the suite runs unchanged on any
kernel version (useful for before/after comparisons).

This module is the implementation; import it as ``repro.runner.bench``
(the old top-level ``repro.bench`` is a deprecated shim).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

SCHEMA = "repro-bench/1"

#: CI failure threshold: fail when a gated events/sec metric falls below
#: this fraction of the committed baseline.
DEFAULT_THRESHOLD = 0.75


# -- kernel microbenchmarks ---------------------------------------------------


def _bench_delay_chain(procs: int, steps: int) -> Tuple[int, float]:
    """Heap-dominated: processes advancing by mixed non-zero delays."""
    from repro.sim.engine import Engine
    from repro.sim.process import Delay, Process

    engine = Engine()
    mix = (1, 2, 3, 5, 0)

    def body():
        for i in range(steps):
            yield Delay(mix[i % 5])

    for p in range(procs):
        Process(engine, body(), name=f"p{p}")
    start = time.perf_counter()
    events = engine.run()
    return events, time.perf_counter() - start


def _bench_zero_delay(procs: int, steps: int) -> Tuple[int, float]:
    """Due-lane dominated: concurrent processes yielding Delay(0)."""
    from repro.sim.engine import Engine
    from repro.sim.process import Delay, Process

    engine = Engine()

    def body():
        for _ in range(steps):
            yield Delay(0)

    for p in range(procs):
        Process(engine, body(), name=f"z{p}")
    start = time.perf_counter()
    events = engine.run()
    return events, time.perf_counter() - start


def _bench_pingpong(rounds: int) -> Tuple[int, float]:
    """Wake-up dominated: two processes handing off through SimEvents."""
    from repro.sim.engine import Engine
    from repro.sim.events import SimEvent
    from repro.sim.process import Delay, Process, Wait

    engine = Engine()
    events = [SimEvent(name=str(i)) for i in range(2 * rounds)]

    def server():
        for i in range(rounds):
            yield Wait(events[2 * i])
            yield Delay(1)
            events[2 * i + 1].fire(i)

    def client():
        for i in range(rounds):
            yield Delay(1)
            events[2 * i].fire(i)
            yield Wait(events[2 * i + 1])

    Process(engine, server(), name="server")
    Process(engine, client(), name="client")
    start = time.perf_counter()
    executed = engine.run()
    return executed, time.perf_counter() - start


def _bench_cache_hot(ops: int) -> Tuple[int, float]:
    """Hit-path probe rate: cache.lookup + tlb.access on resident blocks."""
    import numpy as np

    from repro.arch.cache import Cache, LineState
    from repro.arch.tlb import Tlb

    rng = np.random.default_rng(7)
    cache = Cache(8 * 1024, 4, 32, rng, name="bench")
    tlb = Tlb(64, 4096)
    blocks = [i * 32 for i in range(64)]
    for block in blocks:
        cache.insert(block, LineState.SHARED)
        tlb.access(block)
    lookup = cache.lookup
    access = tlb.access
    start = time.perf_counter()
    for i in range(ops):
        lookup(blocks[i & 63])
        access(blocks[i & 63])
    return 2 * ops, time.perf_counter() - start


def _best_of(fn: Callable[[], Tuple[int, float]], repeats: int) -> Tuple[int, float]:
    best: Optional[Tuple[int, float]] = None
    for _ in range(repeats):
        count, seconds = fn()
        if best is None or seconds < best[1]:
            best = (count, seconds)
    assert best is not None
    return best


#: Small-config overrides for the end-to-end app benchmarks — the same
#: shapes the determinism tests pin golden cycle counts for.
APP_CONFIGS: Dict[str, Dict[str, Any]] = {
    "gauss": {"procs": 4, "app": {"n": 64}},
    "em3d": {"procs": 4, "app": {"nodes_per_proc": 40, "degree": 4, "iterations": 3}},
    "mse": {"procs": 4, "app": {"bodies": 16, "elements_per_body": 4, "iterations": 3}},
}


def _bench_apps(
    log: Callable[[str], None], backend: str = "batched"
) -> List[Dict[str, Any]]:
    """Wall time of small experiment pairs (one full mp+sm simulation each)."""
    from repro.core.experiments import EXPERIMENTS

    rows: List[Dict[str, Any]] = []
    for exp_id, overrides in APP_CONFIGS.items():
        spec = EXPERIMENTS[exp_id]
        config = spec.config.with_overrides({**overrides, "backend": backend})
        start = time.perf_counter()
        pair = spec.runner(config)
        seconds = time.perf_counter() - start
        events = 0
        for result in (pair.mp_result, pair.sm_result):
            machine = getattr(result, "machine", None)
            engine = getattr(machine, "engine", None)
            events += getattr(engine, "events_executed", 0) or 0
        row = {
            "experiment": exp_id,
            "backend": backend,
            "seconds": round(seconds, 4),
            "events": events,
            "events_per_sec": round(events / seconds) if events and seconds else None,
        }
        rows.append(row)
        log(f"  app {exp_id:<8} {seconds:8.3f}s  {events:>8} events  "
            f"{events / seconds:>10.0f} ev/s  [{backend}]")
    return rows


def _git_sha() -> Optional[str]:
    """Short commit SHA of the source tree, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def platform_meta(quick: bool = False) -> Dict[str, Any]:
    """Provenance block stored in benchmark JSON: baselines are only
    comparable between runs taken on the same platform and code."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
        "quick": quick,
    }


def run_benchmarks(
    quick: bool = False,
    apps: bool = True,
    log: Optional[Callable[[str], None]] = None,
    backend: str = "batched",
) -> Dict[str, Any]:
    """Run the suite; returns the JSON-ready result document.

    ``backend`` selects the execution backend for the end-to-end app
    pairs (the kernel microbenchmarks exercise the engine directly and
    have no backend).
    """
    if log is None:
        def log(message: str) -> None:
            print(message, file=sys.stderr, flush=True)

    scale = 4 if quick else 1
    repeats = 2 if quick else 3
    benches = [
        ("delay_chain", lambda: _bench_delay_chain(8, 8000 // scale)),
        ("zero_delay", lambda: _bench_zero_delay(4, 20000 // scale)),
        ("pingpong", lambda: _bench_pingpong(10000 // scale)),
    ]
    total_events = 0
    total_seconds = 0.0
    rows: List[Dict[str, Any]] = []
    for name, fn in benches:
        events, seconds = _best_of(fn, repeats)
        total_events += events
        total_seconds += seconds
        rows.append(
            {
                "name": name,
                "events": events,
                "seconds": round(seconds, 4),
                "events_per_sec": round(events / seconds),
            }
        )
        log(f"  {name:<12} {events:>8} events  {seconds:6.3f}s  "
            f"{events / seconds:>10.0f} ev/s")
    ops, seconds = _best_of(lambda: _bench_cache_hot(100000 // scale), repeats)
    cache_row = {
        "name": "cache_hot",
        "ops": ops,
        "seconds": round(seconds, 4),
        "ops_per_sec": round(ops / seconds),
    }
    log(f"  {'cache_hot':<12} {ops:>8} ops     {seconds:6.3f}s  "
        f"{ops / seconds:>10.0f} op/s")

    document: Dict[str, Any] = {
        "schema": SCHEMA,
        "kernel": {
            "events": total_events,
            "seconds": round(total_seconds, 4),
            "events_per_sec": round(total_events / total_seconds),
            "benches": rows,
            "cache_hot": cache_row,
        },
        "meta": platform_meta(quick=quick),
    }
    log(f"  {'KERNEL':<12} {total_events:>8} events  {total_seconds:6.3f}s  "
        f"{total_events / total_seconds:>10.0f} ev/s")
    if apps:
        document["apps"] = _bench_apps(log, backend=backend)
    return document


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    app_threshold: Optional[float] = None,
) -> Tuple[bool, str]:
    """Gate the fresh run against a baseline document.

    Returns ``(ok, message)``. ``ok`` is False when the aggregate kernel
    events/sec — or any per-app events/sec present in both documents —
    fell below the floor times the baseline's. ``app_threshold``
    defaults to ``threshold``. App rows are only compared when both
    sides ran the same backend (a reference-backend run gated against a
    batched baseline would measure the backends, not a regression).
    """
    if app_threshold is None:
        app_threshold = threshold
    ok = True
    lines: List[str] = []

    current_rate = current["kernel"]["events_per_sec"]
    baseline_rate = baseline.get("kernel", {}).get("events_per_sec")
    if not baseline_rate:
        lines.append("baseline has no kernel.events_per_sec; skipping kernel gate")
    else:
        ratio = current_rate / baseline_rate
        ok &= ratio >= threshold
        lines.append(
            f"kernel events/sec: current {current_rate} vs baseline "
            f"{baseline_rate} ({ratio:.2f}x, floor {threshold:.2f}x)"
        )

    baseline_apps = {
        row["experiment"]: row
        for row in baseline.get("apps") or []
        if row.get("events_per_sec")
    }
    for row in current.get("apps") or []:
        base = baseline_apps.get(row["experiment"])
        rate = row.get("events_per_sec")
        if base is None or not rate:
            continue
        if row.get("backend", "batched") != base.get("backend", "batched"):
            lines.append(
                f"app {row['experiment']}: backend differs from baseline "
                f"({row.get('backend')} vs {base.get('backend')}); skipping"
            )
            continue
        ratio = rate / base["events_per_sec"]
        ok &= ratio >= app_threshold
        lines.append(
            f"app {row['experiment']} events/sec: current {rate} vs baseline "
            f"{base['events_per_sec']} ({ratio:.2f}x, floor {app_threshold:.2f}x)"
        )

    # Old baselines predate the meta block; only warn when both sides
    # recorded a platform and they disagree.
    current_platform = (current.get("meta") or {}).get("platform")
    baseline_platform = (baseline.get("meta") or {}).get("platform")
    if baseline_platform and current_platform and baseline_platform != current_platform:
        lines.append(
            f"note: baseline was taken on a different platform "
            f"({baseline_platform}); the ratios are indicative only"
        )
    return ok, "\n".join(lines)


def load_baseline(path: str) -> Optional[Dict[str, Any]]:
    """Read a baseline document; None when the file does not exist."""
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
