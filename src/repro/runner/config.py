"""Frozen, picklable experiment configurations.

Every experiment runner is a top-level ``Callable[[ExperimentConfig],
Any]``: a pure function of an explicit configuration rather than a
zero-argument closure over module globals. That makes runs

* **parameterizable** — sweeps replace fields with
  :meth:`ExperimentConfig.with_overrides` instead of editing module
  constants;
* **picklable** — worker processes receive the config, not a closure;
* **content-addressable** — :meth:`ExperimentConfig.to_jsonable`
  canonicalizes the full configuration (including the resolved
  :class:`~repro.arch.params.MachineParams`) for the cache key.

Unknown override keys raise :class:`ValueError` with a closest-known-key
suggestion, so a sweep-axis typo fails loudly instead of silently
sweeping nothing.
"""

from __future__ import annotations

import difflib
from dataclasses import asdict, dataclass, fields, is_dataclass, replace
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.arch.params import (
    MACHINE_PRESETS,
    CommonParams,
    MachineParams,
    machine_preset,
)
from repro.arch.write_buffer import MEMORY_MODELS

#: CommonParams fields a config may override via the ``machine`` channel.
#: ``num_processors`` and ``cache_bytes`` are excluded: they have
#: first-class config fields (``procs``, ``cache_bytes``).
MACHINE_FIELDS = tuple(
    f.name
    for f in fields(CommonParams)
    if f.name not in ("num_processors", "cache_bytes")
)


def suggest(name: str, known: Iterable[str]) -> str:
    """A did-you-mean suffix for an unknown-key error, or ''."""
    matches = difflib.get_close_matches(name, list(known), n=1, cutoff=0.5)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def _reject_unknown(name: str, known: Iterable[str], where: str) -> None:
    known = sorted(known)
    raise ValueError(
        f"unknown {where} override {name!r}{suggest(name, known)}; "
        f"known: {known}"
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """Complete parameterization of one experiment run.

    ``app`` is the application workload config (``MseConfig``,
    ``GaussConfig``, ...) or ``None`` for experiments without one.
    ``options`` holds experiment-specific knobs as a sorted tuple of
    ``(name, value)`` pairs so the config stays hashable and frozen;
    values must be JSON-representable (str/int/float/bool or tuples
    thereof). ``machine`` holds :class:`~repro.arch.params.CommonParams`
    overrides the same way (``network_latency``, ``block_bytes``,
    ``tlb_entries``, ...) — the sensitivity-sweep axes that are machine
    knobs rather than workload knobs.

    ``backend`` selects the execution backend: ``"batched"`` (default)
    runs zero-stall memory ops as batched steps, ``"reference"`` runs
    the pure per-event scalar semantics. The two are bit-identical in
    every simulated quantity (enforced by the differential backend test
    suite), so the choice only affects wall-clock speed — but it is
    still part of the cache key, keeping records honest about how they
    were produced.

    ``consistency`` selects the shared-memory machine's memory model:
    ``"sc"`` (default) is the paper's sequentially consistent machine,
    bit-identical to the pre-relaxation code path; ``"tso"`` retires
    shared stores through a per-processor FIFO store buffer;
    ``"pc"`` additionally relaxes cross-variable commit order
    (partition consistency). Unlike ``backend``, the model *changes
    simulated results*, so it is both validated and cache-keyed.

    ``preset`` picks the machine table the config starts from:
    ``"paper"`` (Tables 1-3), ``"multicore"``, or ``"cluster"`` (see
    :mod:`repro.arch.params`); ``machine`` overrides then apply on top.
    """

    exp_id: str
    procs: int = 8
    seed: int = 1994
    cache_bytes: Optional[int] = None
    app: Any = None
    options: Tuple[Tuple[str, Any], ...] = ()
    machine: Tuple[Tuple[str, Any], ...] = ()
    backend: str = "batched"
    consistency: str = "sc"
    preset: str = "paper"

    def __post_init__(self) -> None:
        if self.backend not in ("reference", "batched"):
            raise ValueError(
                f"unknown backend {self.backend!r}"
                f"{suggest(self.backend, ['reference', 'batched'])}; "
                "known: ['batched', 'reference']"
            )
        if self.consistency not in MEMORY_MODELS:
            raise ValueError(
                f"unknown consistency {self.consistency!r}"
                f"{suggest(self.consistency, MEMORY_MODELS)}; "
                f"known: {sorted(MEMORY_MODELS)}"
            )
        if self.preset not in MACHINE_PRESETS:
            raise ValueError(
                f"unknown preset {self.preset!r}"
                f"{suggest(self.preset, MACHINE_PRESETS)}; "
                f"known: {sorted(MACHINE_PRESETS)}"
            )
        object.__setattr__(
            self, "options", tuple(sorted((str(k), v) for k, v in self.options))
        )
        object.__setattr__(
            self, "machine", tuple(sorted((str(k), v) for k, v in self.machine))
        )
        for key, _value in self.machine:
            if key not in MACHINE_FIELDS:
                _reject_unknown(key, MACHINE_FIELDS, "machine")

    # -- accessors ---------------------------------------------------------

    def opt(self, name: str, default: Any = None) -> Any:
        """One experiment-specific option, or ``default``."""
        for key, value in self.options:
            if key == name:
                return value
        return default

    @property
    def options_dict(self) -> Dict[str, Any]:
        return dict(self.options)

    def machine_params(self, procs: Optional[int] = None) -> MachineParams:
        """The resolved machine for this run (``preset`` table + overrides)."""
        params = machine_preset(self.preset, num_processors=procs or self.procs)
        if self.machine:
            params = replace(
                params, common=replace(params.common, **dict(self.machine))
            )
        if self.cache_bytes is not None:
            params = params.with_cache_bytes(self.cache_bytes)
        return params

    # -- overrides ---------------------------------------------------------

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ExperimentConfig":
        """A copy with some fields replaced (the sweep entry point).

        Top-level field names (``procs``, ``seed``, ``cache_bytes``)
        replace directly. ``app`` accepts either a full replacement
        config or a mapping of app-config fields to replace.
        ``options`` and ``machine`` accept mappings merged over the
        existing tuples. Unknown keys — at the top level, inside an
        ``app`` mapping, or inside a ``machine`` mapping — raise
        :class:`ValueError` with a closest-match suggestion.
        """
        field_names = {f.name for f in fields(self)}
        changes: Dict[str, Any] = {}
        for name, value in overrides.items():
            if name == "app" and isinstance(value, Mapping):
                if self.app is None:
                    raise ValueError(f"{self.exp_id} has no app config to override")
                app_fields = {f.name for f in fields(self.app)}
                for key in value:
                    if key not in app_fields:
                        _reject_unknown(key, app_fields, "app")
                changes["app"] = replace(self.app, **value)
            elif name == "options":
                merged = dict(self.options)
                merged.update(value)
                changes["options"] = tuple(sorted(merged.items()))
            elif name == "machine":
                for key in value:
                    if key not in MACHINE_FIELDS:
                        _reject_unknown(key, MACHINE_FIELDS, "machine")
                merged = dict(self.machine)
                merged.update(value)
                changes["machine"] = tuple(sorted(merged.items()))
            elif name in field_names:
                changes[name] = value
            else:
                _reject_unknown(name, field_names, f"{self.exp_id} config")
        return replace(self, **changes)

    # -- canonicalization --------------------------------------------------

    def to_jsonable(self) -> Dict[str, Any]:
        """A canonical, JSON-safe dict of the *full* configuration.

        Includes the resolved machine parameters so that a change to
        any Table 1-3 default invalidates cached results even without
        a code-salt bump. The ``machine`` override tuple and ``preset``
        need no entries of their own: their effect is entirely contained
        in the resolved parameters, so two spellings of the same machine
        share a key. ``consistency`` changes execution semantics beyond
        the parameter tables, so it is keyed explicitly.
        """
        return {
            "exp_id": self.exp_id,
            "procs": self.procs,
            "seed": self.seed,
            "cache_bytes": self.cache_bytes,
            "app": _jsonable(self.app),
            "options": _jsonable(dict(self.options)),
            "machine": asdict(self.machine_params()),
            "backend": self.backend,
            "consistency": self.consistency,
        }


def _jsonable(value: Any) -> Any:
    """Recursively convert configs to JSON-safe structures."""
    if is_dataclass(value) and not isinstance(value, type):
        out = {"__type__": type(value).__name__}
        out.update({k: _jsonable(v) for k, v in asdict(value).items()})
        return out
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(
        f"config value {value!r} ({type(value).__name__}) is not JSON-safe"
    )
