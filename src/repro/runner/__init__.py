"""The experiment harness: configs, records, cache, and the executor.

``repro.runner`` turns the registry of :mod:`repro.core.experiments`
into a production-shaped run pipeline:

* :mod:`repro.runner.config` — :class:`ExperimentConfig`, the frozen,
  picklable parameterization every runner is a pure function of;
* :mod:`repro.runner.record` — :class:`RunRecord`, the serializable
  outcome (breakdowns, counts, shape checks, timings) that can be
  rendered, compared, and exported without re-simulating;
* :mod:`repro.runner.cache` — :class:`ResultCache`, the
  content-addressed on-disk store under ``.repro_cache/``;
* :mod:`repro.runner.executor` — the multiprocessing fan-out that runs
  independent experiments in worker processes (``--jobs N``);
* :mod:`repro.runner.api` — the high-level entry points
  (:func:`~repro.runner.api.execute`, :func:`~repro.runner.api.run_raw`)
  the CLI, fidelity scorecard, and benchmarks are built on.

See ``docs/runner.md`` for the cache-key scheme and the execution
model.
"""

from repro.runner.api import execute, record_for, run_raw
from repro.runner.cache import ResultCache, cache_key, record_is_fresh
from repro.runner.config import ExperimentConfig
from repro.runner.record import RunRecord

__all__ = [
    "ExperimentConfig",
    "ResultCache",
    "RunRecord",
    "cache_key",
    "execute",
    "record_for",
    "record_is_fresh",
    "run_raw",
]
