"""Multiprocessing fan-out over independent experiments.

The paper's evaluation is embarrassingly parallel: each experiment is
an independent pair of machine simulations. The executor partitions
the requested experiments into *groups* that must share a process —
an experiment whose shape checks compare against a baseline run (its
spec's ``after`` tuple, e.g. ``em3d_bigcache`` against ``em3d``) runs
in the same worker as that baseline so the in-process memo serves the
comparison — and fans the groups out over worker processes.

Workers are started with the ``spawn`` method: each one imports the
package fresh, so no parent in-process state can leak into a worker
run. Determinism is preserved — every simulation is a pure function of
its seeded :class:`~repro.runner.config.ExperimentConfig`, so a worker
run produces bit-identical cycle counts to an in-process run (the
test suite asserts this).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runner.record import RunRecord

#: One unit of worker work: (exp_id, overrides-or-None).
WorkItem = Tuple[str, Optional[Mapping[str, Any]]]


def default_jobs() -> int:
    """The default ``--jobs``: every core the scheduler gives us."""
    return os.cpu_count() or 1


def group_root(exp_id: str) -> str:
    """The transitive baseline an experiment's checks depend on."""
    from repro.core.experiments import get_experiment

    seen = set()
    current = exp_id
    while True:
        spec = get_experiment(current)
        if not spec.after or current in seen:
            return current
        seen.add(current)
        current = spec.after[0]


def plan_groups(items: Sequence[WorkItem]) -> List[List[WorkItem]]:
    """Partition work into process-affine groups, registry order kept.

    Experiments with a common dependency root share a group (and thus
    a worker's in-process memo); everything else is its own group.
    """
    from repro.core.experiments import EXPERIMENTS

    order = {exp_id: i for i, exp_id in enumerate(EXPERIMENTS)}
    groups: Dict[str, List[WorkItem]] = {}
    for item in items:
        groups.setdefault(group_root(item[0]), []).append(item)
    planned = [
        sorted(group, key=lambda item: order.get(item[0], len(order)))
        for group in groups.values()
    ]
    planned.sort(key=lambda group: order.get(group[0][0], len(order)))
    return planned


def plan_batches(
    items: Sequence[WorkItem], jobs: int, max_batch: int = 4
) -> List[List[WorkItem]]:
    """Chunk *independent* work items into worker-sized batches.

    Sweep points have no ``after`` dependencies, so unlike
    :func:`plan_groups` there is nothing to co-locate; the only goal is
    to amortize worker spawn cost without giving one worker so much
    work that an interrupted run loses a long batch (each batch's
    records reach the parent — and the on-disk cache — only when the
    whole batch finishes). Batches are contiguous, at most ``max_batch``
    items, and sized so all ``jobs`` workers stay busy.
    """
    if not items:
        return []
    jobs = max(1, jobs)
    size = max(1, min(max_batch, (len(items) + jobs - 1) // jobs))
    return [list(items[i:i + size]) for i in range(0, len(items), size)]


def run_group(items: Sequence[WorkItem]) -> List[RunRecord]:
    """Run one group serially in this process; the worker entry point.

    Must stay a top-level function: it is pickled by name when shipped
    to a spawned worker.
    """
    from repro.core.experiments import get_experiment
    from repro.runner.api import resolve_config, run_raw
    from repro.runner.record import build_record

    records: List[RunRecord] = []
    for exp_id, overrides in items:
        spec = get_experiment(exp_id)
        config = resolve_config(exp_id, overrides)
        start = time.perf_counter()
        result = run_raw(exp_id, overrides)
        record = build_record(spec, config, result, time.perf_counter() - start)
        records.append(record)
    return records


def run_parallel(
    groups: Sequence[Sequence[WorkItem]],
    jobs: int,
    progress=None,
) -> List[RunRecord]:
    """Fan groups out over ``jobs`` spawned worker processes.

    Results are reported to ``progress`` as each group completes;
    the returned list is unordered (callers re-index by exp_id).
    """
    records: List[RunRecord] = []
    if jobs <= 1:
        for group in groups:
            batch = run_group(group)
            records.extend(batch)
            if progress is not None:
                for record in batch:
                    progress(record)
        return records

    context = multiprocessing.get_context("spawn")
    workers = min(jobs, len(groups))
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        pending = {pool.submit(run_group, list(group)) for group in groups}
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                batch = future.result()  # propagate worker failures
                records.extend(batch)
                if progress is not None:
                    for record in batch:
                        progress(record)
    return records
