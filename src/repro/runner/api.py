"""High-level harness entry points.

* :func:`run_raw` — run one experiment in this process and return the
  *raw* result object (a :class:`~repro.core.study.PairResult` or
  result dict), memoized per configuration for the lifetime of the
  interpreter. This is what shape checks that compare against a
  baseline run, the benchmarks, and the legacy
  :func:`repro.core.experiments.run_experiment` wrapper use.
* :func:`record_for` — one experiment as a serializable
  :class:`~repro.runner.record.RunRecord`, served from the on-disk
  cache when possible (zero simulation on a warm cache).
* :func:`execute` — the fan-out driver behind ``python -m repro run``:
  cache lookups, dependency-aware grouping, multiprocessing, progress
  reporting, and cache write-back.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.runner.cache import ResultCache, cache_key
from repro.runner.config import ExperimentConfig
from repro.runner.executor import default_jobs, plan_groups, run_parallel
from repro.runner.record import RunRecord, build_record

#: In-process memo of raw results, keyed by the content address.
#: Raw results hold live machine objects, so they cannot live on disk;
#: the disk cache stores the serializable records instead.
_MEMO: Dict[str, Any] = {}


def resolve_config(
    exp_id: str, overrides: Optional[Mapping[str, Any]] = None
) -> ExperimentConfig:
    """An experiment's default config, with sweep overrides applied."""
    from repro.core.experiments import get_experiment

    config = get_experiment(exp_id).config
    if overrides:
        config = config.with_overrides(overrides)
    return config


def run_raw(exp_id: str, overrides: Optional[Mapping[str, Any]] = None) -> Any:
    """Run one experiment in-process; memoized per configuration."""
    from repro.core.experiments import get_experiment

    spec = get_experiment(exp_id)
    config = resolve_config(exp_id, overrides)
    key = cache_key(config)
    if key not in _MEMO:
        _MEMO[key] = spec.runner(config)
    return _MEMO[key]


def clear_memory_cache() -> None:
    """Drop the in-process raw-result memo (tests use this)."""
    _MEMO.clear()


def record_for(
    exp_id: str,
    overrides: Optional[Mapping[str, Any]] = None,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    force: bool = False,
) -> RunRecord:
    """One experiment's record: disk cache first, then an in-process run."""
    from repro.core.experiments import get_experiment

    spec = get_experiment(exp_id)
    config = resolve_config(exp_id, overrides)
    cache = cache if cache is not None else ResultCache()
    if use_cache and not force:
        hit = cache.load(config)
        if hit is not None:
            return hit
    start = time.perf_counter()
    result = run_raw(exp_id, overrides)
    record = build_record(spec, config, result, time.perf_counter() - start)
    if use_cache:
        cache.store(record)
    return record


def execute(
    exp_ids: Sequence[str],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    force: bool = False,
    progress=None,
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> "OrderedDict[str, RunRecord]":
    """Run many experiments: cached records served, the rest fanned out.

    ``overrides`` maps exp_id to that experiment's sweep overrides.
    ``progress`` (if given) is called with each finished
    :class:`RunRecord` — cached ones immediately, live ones as their
    worker delivers them. Returns records keyed by exp_id, in the
    requested order.
    """
    jobs = default_jobs() if jobs is None else max(1, jobs)
    cache = cache if cache is not None else ResultCache()
    overrides = overrides or {}

    records: Dict[str, RunRecord] = {}
    to_run = []
    for exp_id in exp_ids:
        config = resolve_config(exp_id, overrides.get(exp_id))
        hit = cache.load(config) if use_cache and not force else None
        if hit is not None:
            records[exp_id] = hit
            if progress is not None:
                progress(hit)
        else:
            to_run.append((exp_id, overrides.get(exp_id)))

    if to_run:

        def collect(record: RunRecord) -> None:
            # Write back as each record arrives: an interrupted --all
            # keeps its finished experiments.
            records[record.exp_id] = record
            if use_cache:
                cache.store(record)
            if progress is not None:
                progress(record)

        run_parallel(plan_groups(to_run), jobs=jobs, progress=collect)

    return OrderedDict((exp_id, records[exp_id]) for exp_id in exp_ids)
