"""Content-addressed on-disk result cache.

Records live as JSON files under ``.repro_cache/`` (overridable with
the ``REPRO_CACHE_DIR`` environment variable or an explicit path).
The key is a SHA-256 digest of

* the experiment id,
* the **full** canonical configuration — workload config, seed,
  processor count, and the resolved machine parameters, so a change to
  any Table 1-3 default invalidates dependent results, and
* a code-version salt (:data:`CODE_SALT` plus the package version),
  bumped whenever simulator changes make old cycle counts stale.

A cache hit returns the stored :class:`~repro.runner.record.RunRecord`
with ``cached=True``; nothing is ever re-simulated to serve a hit.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.runner.config import ExperimentConfig
from repro.runner.record import RECORD_SCHEMA, RunRecord

#: Bump manually when simulator semantics change (cycle counts move).
CODE_SALT = "repro-runner-v3"  # v3: backend field joined the config key

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def cache_key(config: ExperimentConfig) -> str:
    """The content address of one experiment configuration."""
    from repro import __version__

    payload = {
        "salt": CODE_SALT,
        "version": __version__,
        "schema": RECORD_SCHEMA,
        "config": config.to_jsonable(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """JSON records keyed by :func:`cache_key`, one file per run."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = Path(
            directory
            if directory is not None
            else os.environ.get(ENV_CACHE_DIR, DEFAULT_CACHE_DIR)
        )

    def _path(self, exp_id: str, key: str) -> Path:
        return self.directory / f"{exp_id}-{key[:16]}.json"

    def load(self, config: ExperimentConfig) -> Optional[RunRecord]:
        """The stored record for this exact configuration, or ``None``."""
        key = cache_key(config)
        path = self._path(config.exp_id, key)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if data.get("cache_key") != key or data.get("schema") != RECORD_SCHEMA:
            return None
        record = RunRecord.from_jsonable(data)
        record.cached = True
        return record

    def store(self, record: RunRecord) -> Path:
        """Persist one record; atomic enough for concurrent writers."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(record.exp_id, record.cache_key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record.to_jsonable(), indent=1, sort_keys=True))
        tmp.replace(path)
        return path

    def entries(self) -> Iterator[Tuple[Path, RunRecord]]:
        """All readable records, oldest first."""
        if not self.directory.is_dir():
            return
        for path in sorted(
            self.directory.glob("*.json"), key=lambda p: p.stat().st_mtime
        ):
            try:
                data = json.loads(path.read_text())
                yield path, RunRecord.from_jsonable(data)
            except (OSError, json.JSONDecodeError, TypeError):
                continue

    def ls(self) -> List[str]:
        """Human-readable listing lines for ``repro cache ls``."""
        lines = []
        for path, record in self.entries():
            size_kb = path.stat().st_size / 1024.0
            status = "ok" if record.all_ok else "FAIL"
            lines.append(
                f"{record.exp_id:<18} {record.cache_key[:12]}  "
                f"{record.elapsed_seconds:7.1f}s  {size_kb:6.1f}KB  "
                f"checks:{status}  {path.name}"
            )
        return lines

    def clear(self) -> int:
        """Delete every cached record; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
