"""Content-addressed on-disk result cache.

Records live as JSON files under ``.repro_cache/`` (overridable with
the ``REPRO_CACHE_DIR`` environment variable or an explicit path).
The key is a SHA-256 digest of

* the experiment id,
* the **full** canonical configuration — workload config, seed,
  processor count, and the resolved machine parameters, so a change to
  any Table 1-3 default invalidates dependent results, and
* a code-version salt (:data:`CODE_SALT` plus the package version),
  bumped whenever simulator changes make old cycle counts stale.

A cache hit returns the stored :class:`~repro.runner.record.RunRecord`
with ``cached=True``; nothing is ever re-simulated to serve a hit.
Hits also bump the record file's mtime, so mtime order is true LRU
order and the byte-budget eviction policy (:mod:`repro.serve.eviction`)
keeps hot records alive while old and stale-salt ones go first.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.runner.config import ExperimentConfig
from repro.runner.record import RECORD_SCHEMA, RunRecord

#: Bump manually when simulator semantics change (cycle counts move).
CODE_SALT = "repro-runner-v3"  # v3: backend field joined the config key

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def cache_key(config: ExperimentConfig) -> str:
    """The content address of one experiment configuration."""
    return key_for_jsonable(config.to_jsonable())


def key_for_jsonable(config_jsonable: Dict[str, Any]) -> str:
    """The content address of an already-canonicalized configuration.

    Stored records carry their canonical config dict; recomputing the
    key from it under the *current* salt/version detects staleness
    without reconstructing the live config object.
    """
    from repro import __version__

    payload = {
        "salt": CODE_SALT,
        "version": __version__,
        "schema": RECORD_SCHEMA,
        "config": config_jsonable,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """Size/age/staleness facts about one on-disk record file.

    ``stale`` means the stored key no longer matches a key recomputed
    from the stored config under the current :data:`CODE_SALT`, package
    version, and record schema — the record can never again satisfy a
    lookup, so eviction removes it first. Unreadable files count as
    stale too.
    """

    path: Path
    exp_id: str
    cache_key: str
    bytes: int
    mtime: float
    stale: bool


class ResultCache:
    """JSON records keyed by :func:`cache_key`, one file per run."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = Path(
            directory
            if directory is not None
            else os.environ.get(ENV_CACHE_DIR, DEFAULT_CACHE_DIR)
        )

    def _path(self, exp_id: str, key: str) -> Path:
        return self.directory / f"{exp_id}-{key[:16]}.json"

    def load(self, config: ExperimentConfig) -> Optional[RunRecord]:
        """The stored record for this exact configuration, or ``None``."""
        key = cache_key(config)
        path = self._path(config.exp_id, key)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if data.get("cache_key") != key or data.get("schema") != RECORD_SCHEMA:
            return None
        try:
            # A hit is a "use" in LRU terms: bump the mtime so the
            # eviction policy sees hot records as young.
            os.utime(path, None)
        except OSError:
            pass
        record = RunRecord.from_jsonable(data)
        record.cached = True
        return record

    def store(self, record: RunRecord) -> Path:
        """Persist one record; atomic enough for concurrent writers."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(record.exp_id, record.cache_key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record.to_jsonable(), indent=1, sort_keys=True))
        tmp.replace(path)
        return path

    def entries(self) -> Iterator[Tuple[Path, RunRecord]]:
        """All readable records, oldest first."""
        if not self.directory.is_dir():
            return
        for path in sorted(
            self.directory.glob("*.json"), key=lambda p: p.stat().st_mtime
        ):
            try:
                data = json.loads(path.read_text())
                yield path, RunRecord.from_jsonable(data)
            except (OSError, json.JSONDecodeError, TypeError):
                continue

    def index(self) -> List[CacheEntry]:
        """Size/age/staleness facts for every record file, oldest first.

        Unlike :meth:`entries` this never skips a file: corrupt or
        unreadable records appear with ``stale=True`` so the eviction
        policy can reclaim their bytes.
        """
        if not self.directory.is_dir():
            return []
        out: List[CacheEntry] = []
        for path in sorted(
            self.directory.glob("*.json"), key=lambda p: p.stat().st_mtime
        ):
            try:
                stat = path.stat()
            except OSError:
                continue
            exp_id, key, stale = "?", "", True
            try:
                data = json.loads(path.read_text())
                exp_id = str(data.get("exp_id", "?"))
                key = str(data.get("cache_key", ""))
                stale = (
                    data.get("schema") != RECORD_SCHEMA
                    or key != key_for_jsonable(data["config"])
                )
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                stale = True
            out.append(
                CacheEntry(
                    path=path,
                    exp_id=exp_id,
                    cache_key=key,
                    bytes=stat.st_size,
                    mtime=stat.st_mtime,
                    stale=stale,
                )
            )
        return out

    def total_bytes(self) -> int:
        """Bytes currently held by record files (sweeps/traces excluded)."""
        return sum(entry.bytes for entry in self.index())

    def stats(self) -> Dict[str, Any]:
        """Size accounting for ``/healthz`` and ``repro cache ls``."""
        entries = self.index()
        ages = [time.time() - entry.mtime for entry in entries]
        return {
            "directory": str(self.directory),
            "records": len(entries),
            "bytes": sum(entry.bytes for entry in entries),
            "stale_records": sum(1 for entry in entries if entry.stale),
            "oldest_age_seconds": round(max(ages), 1) if ages else 0.0,
        }

    def ls(self) -> List[str]:
        """Human-readable listing lines for ``repro cache ls``."""
        stale_keys = {
            entry.cache_key for entry in self.index() if entry.stale
        }
        lines = []
        for path, record in self.entries():
            size = path.stat().st_size
            status = "ok" if record.all_ok else "FAIL"
            salt = "stale" if record.cache_key in stale_keys else "fresh"
            lines.append(
                f"{record.exp_id:<18} {record.cache_key[:12]}  "
                f"{record.elapsed_seconds:7.1f}s  {size:8d}B  "
                f"checks:{status}  salt:{salt}  {path.name}"
            )
        return lines

    def clear(self) -> int:
        """Delete every cached record; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
