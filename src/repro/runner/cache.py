"""Content-addressed on-disk result cache.

Records live as JSON files under ``.repro_cache/`` (overridable with
the ``REPRO_CACHE_DIR`` environment variable or an explicit path).
The key is a SHA-256 digest of

* the experiment id,
* the **full** canonical configuration — workload config, seed,
  processor count, and the resolved machine parameters, so a change to
  any Table 1-3 default invalidates dependent results, and
* a code-version salt (:data:`CODE_SALT` plus the package version),
  bumped whenever simulator changes make old cycle counts stale.

A cache hit returns the stored :class:`~repro.runner.record.RunRecord`
with ``cached=True``; nothing is ever re-simulated to serve a hit.
Hits also bump the record file's mtime, so mtime order is true LRU
order and the byte-budget eviction policy (:mod:`repro.serve.eviction`)
keeps hot records alive while old and stale-salt ones go first.

Blob I/O is delegated to a pluggable *store*
(:mod:`repro.serve.store`): the default
:class:`~repro.serve.store.LocalDirStore` is the original one-server
layout, while :class:`~repro.serve.store.SharedDirStore` makes the
same directory safe for N server replicas (atomic publishes, eviction
races tolerated, and cross-replica *claims* so identical cold requests
cost one simulation fleet-wide). Keys and record bytes are identical
regardless of the store.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.runner.config import ExperimentConfig
from repro.runner.record import RECORD_SCHEMA, RunRecord

#: Bump manually when simulator semantics change (cycle counts move).
CODE_SALT = "repro-runner-v4"  # v4: consistency joined the key; machine
# params grew the two-level-topology fields (cluster_size et al.)

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def cache_key(config: ExperimentConfig) -> str:
    """The content address of one experiment configuration."""
    return key_for_jsonable(config.to_jsonable())


def key_for_jsonable(config_jsonable: Dict[str, Any]) -> str:
    """The content address of an already-canonicalized configuration.

    Stored records carry their canonical config dict; recomputing the
    key from it under the *current* salt/version detects staleness
    without reconstructing the live config object.
    """
    from repro import __version__

    payload = {
        "salt": CODE_SALT,
        "version": __version__,
        "schema": RECORD_SCHEMA,
        "config": config_jsonable,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def record_is_fresh(data: Dict[str, Any]) -> bool:
    """The single salt-freshness decision for a stored record dict.

    True when the stored ``cache_key`` still matches a key recomputed
    from the stored ``config`` under the *current* :data:`CODE_SALT`,
    package version, and record schema. Every staleness surface —
    ``repro cache ls``, eviction, the run lake, ``repro query`` —
    routes through here, so a mid-session salt bump moves them all at
    once and they can never disagree about which records are stale.
    """
    try:
        return (
            data.get("schema") == RECORD_SCHEMA
            and bool(data.get("cache_key"))
            and data["cache_key"] == key_for_jsonable(data["config"])
        )
    except (KeyError, TypeError):
        return False


@dataclass
class CacheEntry:
    """Size/age/staleness facts about one on-disk record file.

    ``stale`` means the stored key no longer matches a key recomputed
    from the stored config under the current :data:`CODE_SALT`, package
    version, and record schema — the record can never again satisfy a
    lookup, so eviction removes it first. Unreadable files count as
    stale too.
    """

    path: Path
    exp_id: str
    cache_key: str
    bytes: int
    mtime: float
    stale: bool


class ResultCache:
    """JSON records keyed by :func:`cache_key`, one file per run."""

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        store: Union[str, Any, None] = None,
    ) -> None:
        resolved = Path(
            directory
            if directory is not None
            else os.environ.get(ENV_CACHE_DIR, DEFAULT_CACHE_DIR)
        )
        from repro.serve.store import LocalDirStore, make_store

        if store is None:
            self._store = LocalDirStore(resolved)
        elif isinstance(store, str):
            self._store = make_store(store, resolved)
        else:
            self._store = store

    @property
    def blob_store(self):
        """The blob store behind this cache (see :mod:`repro.serve.store`).

        (Named ``blob_store`` because :meth:`store` — persist a record —
        predates the seam.)
        """
        return self._store

    @property
    def directory(self) -> Path:
        return self._store.directory

    @staticmethod
    def _name(exp_id: str, key: str) -> str:
        return f"{exp_id}-{key[:16]}.json"

    def _path(self, exp_id: str, key: str) -> Path:
        return self.directory / self._name(exp_id, key)

    def load(self, config: ExperimentConfig) -> Optional[RunRecord]:
        """The stored record for this exact configuration, or ``None``."""
        key = cache_key(config)
        name = self._name(config.exp_id, key)
        raw = self._store.read(name)
        if raw is None:
            return None
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if data.get("cache_key") != key or data.get("schema") != RECORD_SCHEMA:
            return None
        # A hit is a "use" in LRU terms: bump the mtime so the
        # eviction policy sees hot records as young.
        self._store.touch(name)
        record = RunRecord.from_jsonable(data)
        record.cached = True
        return record

    def store(self, record: RunRecord) -> Path:
        """Persist one record; atomic under concurrent writers."""
        data = json.dumps(record.to_jsonable(), indent=1, sort_keys=True)
        return self._store.write(
            self._name(record.exp_id, record.cache_key),
            data.encode("utf-8"),
        )

    # -- cross-replica claims ----------------------------------------------

    @property
    def coordinates_writers(self) -> bool:
        """True when the store arbitrates writers across replicas."""
        return bool(self._store.coordinates_writers)

    @property
    def claim_ttl(self) -> Optional[float]:
        """Seconds after which an unreleased claim counts as orphaned."""
        return getattr(self._store, "claim_ttl", None)

    def try_claim(self, config: ExperimentConfig) -> bool:
        """Claim the right to simulate ``config`` (see the store docs)."""
        return self._store.try_claim(self._name(config.exp_id, cache_key(config)))

    def release_claim(self, config: ExperimentConfig) -> None:
        self._store.release_claim(self._name(config.exp_id, cache_key(config)))

    def claim_age(self, config: ExperimentConfig) -> Optional[float]:
        return self._store.claim_age(self._name(config.exp_id, cache_key(config)))

    # -- listings ----------------------------------------------------------

    def entries(self) -> Iterator[Tuple[Path, RunRecord]]:
        """All readable records, oldest first."""
        for blob in self._store.list_blobs():
            raw = self._store.read(blob.name)
            if raw is None:
                continue  # evicted between listing and read
            try:
                data = json.loads(raw.decode("utf-8"))
                yield self.directory / blob.name, RunRecord.from_jsonable(data)
            except (UnicodeDecodeError, json.JSONDecodeError, TypeError):
                continue

    def index(self) -> List[CacheEntry]:
        """Size/age/staleness facts for every record file, oldest first.

        Unlike :meth:`entries` this never skips a readable file:
        corrupt records appear with ``stale=True`` so the eviction
        policy can reclaim their bytes. Files deleted concurrently (a
        peer replica's eviction pass) are skipped.
        """
        out: List[CacheEntry] = []
        for blob in self._store.list_blobs():
            exp_id, key, stale = "?", "", True
            raw = self._store.read(blob.name)
            if raw is None:
                continue  # evicted between listing and read
            try:
                data = json.loads(raw.decode("utf-8"))
                exp_id = str(data.get("exp_id", "?"))
                key = str(data.get("cache_key", ""))
                stale = not record_is_fresh(data)
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                    TypeError):
                stale = True
            out.append(
                CacheEntry(
                    path=self.directory / blob.name,
                    exp_id=exp_id,
                    cache_key=key,
                    bytes=blob.bytes,
                    mtime=blob.mtime,
                    stale=stale,
                )
            )
        return out

    def total_bytes(self) -> int:
        """Bytes currently held by record files (sweeps/traces excluded)."""
        return sum(entry.bytes for entry in self.index())

    def stats(self) -> Dict[str, Any]:
        """Size accounting for ``/healthz`` and ``repro cache ls``."""
        entries = self.index()
        ages = [time.time() - entry.mtime for entry in entries]
        return {
            "directory": str(self.directory),
            "store": getattr(self._store, "kind", "custom"),
            "records": len(entries),
            "bytes": sum(entry.bytes for entry in entries),
            "stale_records": sum(1 for entry in entries if entry.stale),
            "oldest_age_seconds": round(max(ages), 1) if ages else 0.0,
        }

    def ls(self) -> List[str]:
        """Human-readable listing lines for ``repro cache ls``."""
        index = self.index()
        stale_keys = {entry.cache_key for entry in index if entry.stale}
        sizes = {entry.path.name: entry.bytes for entry in index}
        lines = []
        for path, record in self.entries():
            size = sizes.get(path.name, 0)
            status = "ok" if record.all_ok else "FAIL"
            salt = "stale" if record.cache_key in stale_keys else "fresh"
            lines.append(
                f"{record.exp_id:<18} {record.cache_key[:12]}  "
                f"{record.elapsed_seconds:7.1f}s  {size:8d}B  "
                f"checks:{status}  salt:{salt}  {path.name}"
            )
        return lines

    def clear(self) -> int:
        """Delete every cached record; returns the number removed."""
        removed = 0
        for blob in self._store.list_blobs():
            if self._store.delete(blob.name):
                removed += 1
        return removed
