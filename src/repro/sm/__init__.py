"""The simulated cache-coherent shared-memory machine.

Implements the full-map, write-invalidate ``Dir_nNB`` protocol (Agarwal
et al.) on the common hardware base: every node's memory is globally
addressable, a per-node directory keeps a full sharer map for its local
blocks, and misses/upgrades travel as request-response protocol
messages with the cycle costs of paper Table 3. Synchronization comes
from the hardware barrier, an atomic swap/compare-and-swap, MCS queue
locks, and MCS-style combining reductions — all implemented *on top of*
the simulated shared memory so their protocol traffic is paid for.
"""

from repro.sm.machine import SmMachine, SmRunResult
from repro.sm.api import SmContext
from repro.sm.mcs import McsLock, McsReduction

__all__ = ["McsLock", "McsReduction", "SmContext", "SmMachine", "SmRunResult"]
