"""Relaxed-consistency execution for the shared-memory machine.

Under ``consistency="tso"`` or ``"pc"`` the machine builds
:class:`RelaxedSmContext` (for *both* execution backends — batched
bulk runs decompose to the scalar ops below, see
:mod:`repro.sm.batched`), which places a semantic per-processor
:class:`~repro.arch.write_buffer.StoreBuffer` between the processor and
the Dir_nNB protocol:

* **Stores** to shared directory-protocol regions retire into the
  buffer in one cycle and return immediately; their values are *not*
  yet in memory, so no other processor can observe them.
* **Loads** perform their normal (committed-state) protocol access,
  then forward this processor's own pending stores over the result —
  read-own-write forwarding, so a processor always sees its own program
  order.
* A per-processor **drain process** commits entries at its own pace:
  each commit performs the real GETX/UPGRADE coherence transaction
  (directory occupancy, invalidation rounds, wire bytes — everything),
  then writes the values to memory. The processor does not stall for
  drains, so drain transactions charge no processor cycle categories.
* **Fences** — atomics, the hardware barrier, lock release, and
  parmacs ``create`` — wait for the buffer to run dry, which is what
  makes a correctly synchronized program correct under relaxation.

Ordering: TSO drains strictly in program order (FIFO); PC (partition
consistency, Cheng/Higham/Kawash) keeps per-location program order but
commits different locations in an order set by a seeded per-entry
retirement delay — deterministic per machine seed, so relaxed runs are
reproducible and the litmus matrix is a stable regression gate.

Private-region and update-protocol writes are unbuffered (the paper's
machine already completes them locally), and sequentially consistent
runs never construct this class — the ``sc`` path is bit-identical to
the pre-relaxation machine.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

import numpy as np

from repro.arch.cache import LineState
from repro.arch.write_buffer import StoreBuffer, WriteBuffer
from repro.memory.dataspace import Region, Segment
from repro.sim.batch import reject_unknown_kwargs
from repro.sim.events import Gate, SimEvent
from repro.sim.process import Process, Wait, delay_of
from repro.sm.api import SmContext
from repro.stats.categories import SmCat

#: Cycles a store sits in the TSO buffer before its commit transaction
#: may issue. Comparable to a remote-miss latency: long enough that a
#: racing load can complete before the commit lands (making store
#: buffering observable — an eager drain's GETX is exactly as fast as
#: the racing GETS, so the commit would always win), short enough that
#: fences stay cheap relative to a lock handoff.
TSO_DRAIN_BANDS = ((200, 200),)

#: PC residency profile: each entry draws one band uniformly, then a
#: delay inside it. The bimodal mix — most stores commit promptly, some
#: linger behind buffer backpressure — is what makes the model's
#: signature reorders reachable. A fast flag commit (short band) can
#: beat a consumer's first load while the older data store (long band)
#: out-sits the consumer's whole load chain: the MP shape's relaxed
#: outcome. A single uniform window cannot do both at once — wide
#: enough to delay the data store, it almost never commits the flag in
#: time.
PC_DRAIN_BANDS = ((0, 20), (100, 500), (800, 1400))


class RelaxedSmContext(SmContext):
    """Shared-memory context with a store buffer in front of Dir_nNB."""

    def __init__(self, machine, pid: int) -> None:
        super().__init__(machine, pid)
        consistency = machine.consistency
        relaxed = consistency == "pc"
        self.store_buffer = StoreBuffer(
            ordering="relaxed" if relaxed else "fifo",
            rng=machine.rngs.stream(f"sm.storebuf.{pid}") if relaxed else None,
            delay_bands=PC_DRAIN_BANDS if relaxed else TSO_DRAIN_BANDS,
        )
        self.write_buffer = WriteBuffer()
        # Blocks with a program-side coherence transaction in flight;
        # the drain defers its own transaction on such a block so its
        # cache-state decision is never made against a moving line.
        self._program_inflight: set = set()
        self._program_txn_gate = Gate(name=f"p{pid}.txns")
        self._fence_name = f"p{pid}.fence"
        self.drain = StoreBufferDrain(self)

    # -- helpers -----------------------------------------------------------

    def _buffered_region(self, region: Region) -> bool:
        return region.segment is Segment.SHARED and region.protocol == "dir"

    def fence(self) -> Generator:
        """Stall until this processor's store buffer is empty.

        The wait is charged as write-fault time (stores completing), so
        attribution contexts remap it exactly like a blocking store —
        fences inside lock code land in the Locks row.
        """
        sb = self.store_buffer
        if not len(sb):
            return
        wake = SimEvent(name=self._fence_name)
        sb.on_empty(lambda: wake.fire(None))
        start = self.engine.now
        yield Wait(wake)
        waited = self.engine.now - start
        if waited:
            self.stats.charge(SmCat.WRITE_FAULT, waited)
        self.stats.count("fences")

    # -- buffered stores ---------------------------------------------------

    def write(
        self,
        region: Region,
        start: int = 0,
        stop: Optional[int] = None,
        *,
        values: Optional[Sequence] = None,
        **kwargs,
    ) -> Generator:
        if kwargs:
            reject_unknown_kwargs("write", kwargs, ("start", "stop", "values"))
        if not self._buffered_region(region):
            yield from SmContext.write(self, region, start, stop, values=values)
            return
        if values is not None:
            values = np.asarray(values, dtype=region.np.dtype).reshape(-1).copy()
            stop = start + values.size
        if stop is None:
            raise ValueError("write needs values or stop")
        if start < 0 or stop > region.np.size:
            raise IndexError(
                f"write [{start}:{stop}) outside {region.name} "
                f"(size {region.np.size})"
            )
        self.store_buffer.push_range(region, start, values, self.engine.now)
        cost = self.write_buffer.accept((stop - start) * region.itemsize)
        self.stats.count("sb_stores")
        self.stats.charge(SmCat.COMPUTE, cost)
        yield delay_of(cost)
        self.drain.kick()

    def write_scatter(
        self, region: Region, indices: Sequence[int], values
    ) -> Generator:
        if not self._buffered_region(region):
            yield from SmContext.write_scatter(self, region, indices, values)
            return
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.array(
            np.broadcast_to(np.asarray(values, dtype=region.np.dtype), idx.shape)
        )
        self.store_buffer.push_scatter(region, idx, vals, self.engine.now)
        cost = self.write_buffer.accept(idx.size * region.itemsize)
        self.stats.count("sb_stores")
        self.stats.charge(SmCat.COMPUTE, cost)
        yield delay_of(cost)
        self.drain.kick()

    # -- forwarding loads --------------------------------------------------

    def read(
        self, region: Region, start: int = 0, stop: Optional[int] = None, **kwargs
    ) -> Generator:
        base = yield from SmContext.read(self, region, start, stop, **kwargs)
        sb = self.store_buffer
        if sb.has_pending_for(region):
            return sb.apply_pending(region, start, start + base.size, base)
        return base

    def read_gather(self, region: Region, indices: Sequence[int]) -> Generator:
        base = yield from SmContext.read_gather(self, region, indices)
        sb = self.store_buffer
        if sb.has_pending_for(region):
            return sb.apply_pending_gather(
                region, np.asarray(indices, dtype=np.int64), base
            )
        return base

    # -- fenced operations -------------------------------------------------

    def atomic_swap(self, region: Region, index: int, new_value) -> Generator:
        yield from self.fence()
        return (yield from SmContext.atomic_swap(self, region, index, new_value))

    def atomic_cas(
        self, region: Region, index: int, expected, new_value
    ) -> Generator:
        yield from self.fence()
        return (
            yield from SmContext.atomic_cas(
                self, region, index, expected, new_value
            )
        )

    def barrier(self) -> Generator:
        yield from self.fence()
        yield from SmContext.barrier(self)

    def create(self) -> None:
        """Fire parmacs create only after start-up stores are visible.

        Processor 0's initialization writes sit in its store buffer;
        releasing the other processors before those commit would let
        them read pre-initialization values. The release is deferred to
        the buffer-empty instant (immediate when already empty).
        """
        machine = self.machine
        self.store_buffer.on_empty(lambda: machine.created.fire(None))

    # -- program/drain transaction interlock -------------------------------

    def _shared_transaction(
        self,
        region: Region,
        block: int,
        write: bool,
        upgrade: bool = False,
        charge: bool = True,
    ) -> Generator:
        drain = self.drain
        while drain.inflight_block == block:
            yield Wait(drain.inflight_done)
        self._program_inflight.add(block)
        try:
            yield from SmContext._shared_transaction(
                self, region, block, write, upgrade=upgrade, charge=charge
            )
        finally:
            self._program_inflight.discard(block)
            self._program_txn_gate.pulse()


class StoreBufferDrain:
    """Per-processor process that commits buffered stores to memory."""

    def __init__(self, ctx: RelaxedSmContext) -> None:
        self.ctx = ctx
        #: Block of the drain's in-flight coherence transaction (the
        #: program's own accesses to it wait on ``inflight_done``).
        self.inflight_block: Optional[int] = None
        self.inflight_done: Optional[SimEvent] = None
        self._gate = Gate(name=f"p{ctx.pid}.sbdrain")
        self._wake_name = f"p{ctx.pid}.sbdrain.wake"
        self.process = Process(
            ctx.engine, self._run(), name=f"sm.sbdrain{ctx.pid}"
        )

    def kick(self) -> None:
        """Wake the drain after a push."""
        self._gate.pulse()

    def _run(self) -> Generator:
        ctx = self.ctx
        engine = ctx.engine
        sb = ctx.store_buffer
        while True:
            entry = sb.next_entry()
            if entry is None:
                wake = SimEvent(name=self._wake_name)
                self._gate.park(lambda: wake.fired or wake.fire(None))
                yield Wait(wake)
                continue
            now = engine.now
            if entry.ready_time > now:
                # Sleep to the nominee's retirement time, then re-pick —
                # but let a push preempt the sleep: a fresher entry to
                # another location may carry an earlier ready_time, and
                # it must not sit behind a long-lingering older store.
                wake = SimEvent(name=self._wake_name)
                fire = lambda: wake.fired or wake.fire(None)
                engine._schedule_step(entry.ready_time - now, fire)
                self._gate.park(fire)
                yield Wait(wake)
                continue
            yield from self._drain_entry(entry)

    def _drain_entry(self, entry) -> Generator:
        ctx = self.ctx
        region = entry.region
        common = ctx.params.common
        if entry.indices is None:
            addr_range = region.range_of(entry.lo, entry.hi)
            blocks = [int(b) for b in addr_range.blocks(common.block_bytes)]
        else:
            blocks = [
                int(b) for b in region.block_addrs_of_indices(entry.indices)
            ]
        for block in blocks:
            # Never decide against a moving line: wait out the program's
            # own in-flight transaction on this block first.
            while block in ctx._program_inflight:
                wake = SimEvent(name=self._wake_name)
                ctx._program_txn_gate.park(
                    lambda: wake.fired or wake.fire(None)
                )
                yield Wait(wake)
            state = ctx.cache.peek(block)
            if state is LineState.EXCLUSIVE:
                continue
            self.inflight_block = block
            self.inflight_done = SimEvent(name=f"p{ctx.pid}.sbtxn")
            try:
                # The full coherence transaction (occupancy, INV rounds,
                # wire bytes) with charge=False: the processor did not
                # stall for this commit, so no cycle category is charged.
                yield from SmContext._shared_transaction(
                    ctx,
                    region,
                    block,
                    write=True,
                    upgrade=(state is LineState.SHARED),
                    charge=False,
                )
            finally:
                self.inflight_block = None
                self.inflight_done.fire(None)
        self.commit(entry)
        ctx.stats.count("sb_drains")

    def commit(self, entry) -> None:
        """Make the entry's values globally visible (the commit instant).

        A separate method so the checker can wrap the exact point where
        a buffered store enters memory (per-location order + shadow).
        """
        if entry.values is not None:
            flat = entry.region.np.reshape(-1)
            if entry.indices is None:
                flat[entry.start:entry.start + entry.values.size] = entry.values
            else:
                flat[entry.indices] = entry.values
        self.ctx.store_buffer.remove(entry)
