"""Assembly of the simulated shared-memory machine.

Per node: a cache, TLB, directory controller (for blocks homed there),
and cache controller (for invalidations/fetches arriving here). One
global hardware barrier and a create event provide the parmacs start-up
pattern. Locks and reductions are registered machine-wide so every
processor resolves the same shared structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.arch.barrier import HardwareBarrier
from repro.arch.cache import Cache
from repro.arch.costs import CostModel
from repro.arch.params import MachineParams
from repro.arch.write_buffer import MEMORY_MODELS
from repro.arch.tlb import Tlb
from repro.memory.dataspace import DataSpace, HomePolicy, Region
from repro.sim.engine import Engine
from repro.sim.events import Gate, SimEvent
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sm.api import SmContext
from repro.sm.batched import BatchedSmContext
from repro.sm.cache_ctrl import CacheCtrl
from repro.sm.directory import Directory
from repro.sm.mcs import McsLock, McsReduction
from repro.sm.protocol import Msg, MsgType
from repro.stats.categories import SmCat
from repro.stats.collector import ProcStats, StatsBoard
from repro import check, trace

#: Attribution contexts for the paper's SM synchronization rows.
_SYNC_SOURCES = (
    SmCat.COMPUTE,
    SmCat.SHARED_MISS,
    SmCat.WRITE_FAULT,
    SmCat.PRIVATE_MISS,
    SmCat.TLB_MISS,
)

SM_REMAPS = {
    "sync": {
        SmCat.COMPUTE: SmCat.SYNC_COMPUTE,
        SmCat.SHARED_MISS: SmCat.SYNC_MISS,
        SmCat.WRITE_FAULT: SmCat.SYNC_MISS,
        SmCat.PRIVATE_MISS: SmCat.SYNC_MISS,
        SmCat.TLB_MISS: SmCat.SYNC_MISS,
    },
    "lock": {source: SmCat.LOCK for source in _SYNC_SOURCES},
    "reduction": {source: SmCat.REDUCTION for source in _SYNC_SOURCES},
    "startup": {source: SmCat.STARTUP_WAIT for source in _SYNC_SOURCES},
}


class DeadlockError(RuntimeError):
    """The event queue drained while some program had not finished."""


class SmNode:
    """One processor node of the shared-memory machine."""

    def __init__(self, machine: "SmMachine", pid: int) -> None:
        common = machine.params.common
        self.pid = pid
        self.cache = Cache(
            common.cache_bytes,
            common.cache_assoc,
            common.block_bytes,
            machine.rngs.stream(f"sm.cache.{pid}"),
            name=f"sm.cache{pid}",
        )
        self.tlb = Tlb(common.tlb_entries, common.page_bytes)
        self.stats = ProcStats(pid, remaps=SM_REMAPS)


@dataclass
class SmRunResult:
    """Outcome of one shared-memory machine run."""

    board: StatsBoard
    elapsed_cycles: int
    outputs: List[Any]
    machine: "SmMachine"


class SmMachine:
    """The Dir_nNB cache-coherent shared-memory machine."""

    def __init__(
        self,
        params: Optional[MachineParams] = None,
        seed: int = 1994,
        costs: Optional[CostModel] = None,
        allocation_policy: HomePolicy = HomePolicy.ROUND_ROBIN,
        backend: str = "batched",
        consistency: str = "sc",
    ) -> None:
        if backend not in ("reference", "batched"):
            raise ValueError(
                f"unknown backend {backend!r}; use 'reference' or 'batched'"
            )
        if consistency not in MEMORY_MODELS:
            raise ValueError(
                f"unknown consistency {consistency!r}; "
                f"known: {list(MEMORY_MODELS)}"
            )
        self.backend = backend
        self.consistency = consistency
        self.params = params or MachineParams.paper()
        self.costs = costs or CostModel()
        self.engine = Engine()
        self.rngs = RngStreams(seed)
        self.nprocs = self.params.common.num_processors
        self.allocation_policy = allocation_policy
        self.space = DataSpace(self.nprocs, self.params.common.block_bytes)
        self.barrier = HardwareBarrier(
            self.engine, self.nprocs, self.params.common.barrier_latency
        )
        self.created = SimEvent(name="parmacs.create")
        self.nodes = [SmNode(self, pid) for pid in range(self.nprocs)]
        self.directories = [Directory(self, pid) for pid in range(self.nprocs)]
        self.cache_ctrls = [CacheCtrl(self, pid) for pid in range(self.nprocs)]
        if consistency != "sc":
            # Relaxed models need per-op store buffering, so both
            # backends run the scalar relaxed context (batched bulk
            # steps assume SC visibility).
            from repro.sm.relaxed import RelaxedSmContext

            context_cls = RelaxedSmContext
        else:
            context_cls = BatchedSmContext if backend == "batched" else SmContext
        self.contexts = [context_cls(self, pid) for pid in range(self.nprocs)]
        self.block_home: Dict[int, int] = {}
        # Blocks with a prefetch outstanding (Section 5.3.4 extension).
        self.prefetches_in_flight: set = set()
        self._inval_gates: List[Dict[int, Gate]] = [{} for _ in range(self.nprocs)]
        self._locks: Dict[str, McsLock] = {}
        self._reductions: Dict[str, McsReduction] = {}
        self.regions: List[Region] = []
        self._finish_times: Dict[int, int] = {}
        # No-ops unless a tracer/checker is installed (repro.trace/check).
        trace.active().attach_sm(self)
        check.active().attach_sm(self)

    # -- topology ---------------------------------------------------------------

    def latency(self, src: int, dest: int) -> int:
        """Message latency: 10 cycles to self, 100 remote (Tables 1/3).

        Two-level presets (``cluster``) make the remote cost depend on
        whether the pair shares a cluster; the paper's flat machine is
        the ``intra_cluster_latency=None`` special case.
        """
        if src == dest:
            return self.params.sm.self_message_cycles
        return self.params.common.message_latency(src, dest)

    def is_shared_block(self, addr: int) -> bool:
        """Is this address in the shared segment (vs. node-private)?"""
        return addr >= (self.nprocs + 1) * DataSpace.SEGMENT_STRIDE

    def index_region(self, region: Region) -> None:
        """Track a region for diagnostics (home lookups are lazy)."""
        self.regions.append(region)

    def home_of(self, block: int) -> int:
        """Home node of a block (from the lazily built map, else regions)."""
        home = self.block_home.get(block)
        if home is not None:
            return home
        for region in self.regions:
            if region.base - (region.base % region.block_bytes) <= block < region.end:
                home = region.home_of_block(block)
                self.block_home[block] = home
                return home
        raise KeyError(f"no region covers block {block:#x}")

    # -- message plumbing ----------------------------------------------------------

    def send_to_directory_from(self, src: int, home: int, msg: Msg) -> None:
        """Requester -> home directory, after the network latency."""
        # Bare continuation: in-flight messages are never cancelled, so
        # the handle-free scheduling path keeps the same (time, seq)
        # ordering without allocating a ScheduledAction.
        directory = self.directories[home]
        self.engine._schedule_step(self.latency(src, home), lambda: directory.post(msg))

    def send_to_directory(self, src: int, block: int, msg: Msg) -> None:
        """Cache controller -> the block's home directory (ACK/FETCH_REPLY)."""
        home = self.home_of(block)
        self.send_to_directory_from(src, home, msg)

    def send_to_cache_ctrl(self, src: int, dest: int, msg: Msg) -> None:
        """Directory -> a remote cache controller (INV/FETCH)."""
        ctrl = self.cache_ctrls[dest]
        self.engine._schedule_step(self.latency(src, dest), lambda: ctrl.post(msg))

    def evict_dirty_shared(self, pid: int, block: int) -> None:
        """Dirty shared eviction: writeback traffic + logical downgrade."""
        home = self.home_of(block)
        self.directories[home].downgrade_for_eviction(block, pid)
        stats = self.nodes[pid].stats
        if home != pid:  # wire bytes only; self-writebacks stay on-node
            stats.count("data_bytes", 32)
            stats.count("control_bytes", self.params.sm.block_message_control_bytes)
        stats.count("writebacks")
        self.send_to_directory_from(
            pid, home, Msg(MsgType.WRITEBACK, block, src=pid, requester=pid)
        )

    # -- invalidation gates (spin-wait wake-ups) -----------------------------------------

    def inval_gate(self, pid: int, block: int) -> Gate:
        gates = self._inval_gates[pid]
        gate = gates.get(block)
        if gate is None:
            gate = Gate(name=f"inval.p{pid}.{block:#x}")
            gates[block] = gate
        return gate

    def pulse_inval_gate(self, pid: int, block: int) -> None:
        gate = self._inval_gates[pid].get(block)
        if gate is not None:
            gate.pulse()

    # -- shared synchronization objects ---------------------------------------------------

    def make_lock(self, name: str) -> McsLock:
        """Create (or fetch) a machine-wide MCS lock."""
        lock = self._locks.get(name)
        if lock is None:
            lock = McsLock(self, name)
            self._locks[name] = lock
        return lock

    def get_lock(self, name: str) -> McsLock:
        lock = self._locks.get(name)
        if lock is None:
            raise KeyError(f"lock {name!r} was never created")
        return lock

    def make_reduction(self, name: str, context: str = "reduction") -> McsReduction:
        """Create (or fetch) a machine-wide combining reduction."""
        reduction = self._reductions.get(name)
        if reduction is None:
            reduction = McsReduction(self, name, context=context)
            self._reductions[name] = reduction
        return reduction

    # -- running ---------------------------------------------------------------------------

    def _wrap(
        self, program: Callable[..., Generator], ctx: SmContext, args: tuple
    ) -> Generator:
        result = yield from program(ctx, *args)
        self._finish_times[ctx.pid] = self.engine.now
        return result

    def run(self, program: Callable[..., Generator], *args: Any) -> SmRunResult:
        """Run ``program(ctx, *args)`` on every processor to completion."""
        processes = [
            Process(self.engine, self._wrap(program, ctx, args), name=f"sm.p{ctx.pid}")
            for ctx in self.contexts
        ]
        self.engine.run()
        unfinished = [p.name for p in processes if not p.finished]
        if unfinished:
            raise DeadlockError(
                f"programs never finished: {unfinished} "
                f"(likely an unmatched spin/barrier or a protocol stall)"
            )
        elapsed = max(self._finish_times.values()) if self._finish_times else 0
        return SmRunResult(
            board=StatsBoard([node.stats for node in self.nodes]),
            elapsed_cycles=elapsed,
            outputs=[p.result() for p in processes],
            machine=self,
        )

    def directory_contention(self) -> float:
        """Mean queue delay over all directories (paper Section 5.2)."""
        served = sum(d.requests_served for d in self.directories)
        if served == 0:
            return 0.0
        queued = sum(d.total_queue_cycles for d in self.directories)
        return queued / served
