"""Programming interface of the shared-memory machine.

Shared-memory programs use the parmacs-style surface the paper
describes: ``gmalloc`` for shared allocations (round-robin placement by
default), ``create``/``wait_create`` for the processor-0 start-up
pattern, the hardware barrier, and atomic swap/compare-and-swap for
locks. Reads and writes to shared regions drive the Dir_nNB protocol;
each remote miss, write fault, and invalidation is paid in full.

Cycle attribution follows the paper's SM taxonomy: private misses,
shared misses (split local/remote in the event counts), write faults,
and TLB misses under data access; lock, reduction, and start-up time
under synchronization via attribution contexts ("lock", "reduction",
"sync", "startup").
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Sequence

import numpy as np

from repro.arch.cache import LineState
from repro.memory.dataspace import HomePolicy, Region, Segment
from repro.sim.batch import BatchScript, reject_unknown_kwargs, run_batch_reference
from repro.sim.events import SimEvent
from repro.sim.process import Wait, delay_of
from repro.sm.protocol import Msg, MsgType
from repro.stats.categories import SmCat


class SmContext:
    """Per-processor view of the shared-memory machine."""

    def __init__(self, machine: "repro.sm.machine.SmMachine", pid: int) -> None:  # noqa: F821
        self.machine = machine
        self.pid = pid
        self.engine = machine.engine
        self.params = machine.params
        self.costs = machine.costs
        node = machine.nodes[pid]
        self.stats = node.stats
        self.cache = node.cache
        self.tlb = node.tlb
        self.space = machine.space
        # Event names for the transaction hot path, built once.
        self._txn_name = f"p{pid}.txn"
        self._spin_name = f"p{pid}.spin"

    @property
    def nprocs(self) -> int:
        return self.machine.nprocs

    # -- allocation ----------------------------------------------------------

    def gmalloc(
        self,
        name: str,
        shape,
        dtype=np.float64,
        policy: Optional[HomePolicy] = None,
        fill: float = 0.0,
        protocol: str = "dir",
    ) -> Region:
        """Allocate shared memory (the parmacs gmalloc).

        Placement defaults to the machine's allocation policy
        (round-robin in the paper's base configuration). ``protocol``
        may be "update" for the bulk-update extension (Section 5.3.4):
        such a region has a single producer per element, whose writes
        are local; consumers receive values via :meth:`push_update`.
        """
        if policy is None:
            policy = self.machine.allocation_policy
        region = self.space.alloc_shared(
            name, owner=self.pid, shape=shape, dtype=dtype, policy=policy,
            fill=fill, protocol=protocol,
        )
        self.machine.index_region(region)
        return region

    def alloc_private(self, name: str, shape, dtype=np.float64, fill: float = 0.0) -> Region:
        """Allocate node-private memory."""
        region = self.space.alloc_private(
            f"p{self.pid}.{name}", owner=self.pid, shape=shape, dtype=dtype, fill=fill
        )
        self.machine.index_region(region)
        return region

    # -- computation -----------------------------------------------------------

    def compute(self, cycles: float) -> Generator:
        """Charge computation cycles (remapped inside sync contexts)."""
        cycles = int(round(cycles))
        if cycles <= 0:
            return
        self.stats.charge(SmCat.COMPUTE, cycles)
        yield delay_of(cycles)

    def compute_flops(self, count: float) -> Generator:
        yield from self.compute(self.costs.flops(count))

    # -- memory access ------------------------------------------------------------

    def read(
        self, region: Region, start: int = 0, stop: Optional[int] = None, **kwargs
    ) -> Generator:
        """Read elements [start, stop); returns the numpy view."""
        if kwargs:
            reject_unknown_kwargs("read", kwargs, ("start", "stop"))
        if stop is None:
            stop = region.np.size
        yield from self._access_range(region, start, stop, write=False)
        return region.np.reshape(-1)[start:stop]

    def write(
        self,
        region: Region,
        start: int = 0,
        stop: Optional[int] = None,
        *,
        values: Optional[Sequence] = None,
        **kwargs,
    ) -> Generator:
        """Write elements [start, stop) (``stop`` inferred from ``values``)."""
        if kwargs:
            reject_unknown_kwargs("write", kwargs, ("start", "stop", "values"))
        flat = region.np.reshape(-1)
        if values is not None:
            values = np.asarray(values)
            stop = start + values.size
        if stop is None:
            raise ValueError("write needs values or stop")
        yield from self._access_range(region, start, stop, write=True)
        if values is not None:
            flat[start:stop] = values.reshape(-1)

    def read_gather(self, region: Region, indices: Sequence[int]) -> Generator:
        """Indexed read touching only the blocks under ``indices``."""
        yield from self._access_blocks(
            region, region.block_addrs_of_indices(indices), write=False
        )
        return region.np.reshape(-1)[np.asarray(indices, dtype=np.int64)]

    def write_scatter(self, region: Region, indices: Sequence[int], values) -> Generator:
        """Indexed write touching only the blocks under ``indices``."""
        yield from self._access_blocks(
            region, region.block_addrs_of_indices(indices), write=True
        )
        region.np.reshape(-1)[np.asarray(indices, dtype=np.int64)] = values

    def _access_range(self, region: Region, lo: int, hi: int, write: bool) -> Generator:
        addr_range = region.range_of(lo, hi)
        common = self.params.common
        tlb_stall = 0
        for page in addr_range.pages(common.page_bytes):
            if not self.tlb.access(page):
                tlb_stall += common.tlb_miss_cycles
                self.stats.count("tlb_misses")
        if tlb_stall:
            self.stats.charge(SmCat.TLB_MISS, tlb_stall)
            yield delay_of(tlb_stall)
        yield from self._access_blocks(
            region, addr_range.blocks(common.block_bytes), write, tlb_done=True
        )

    def _access_blocks(
        self, region: Region, blocks, write: bool, tlb_done: bool = False
    ) -> Generator:
        common = self.params.common
        shared = region.segment is Segment.SHARED
        private_stall = 0
        private_misses = 0
        # Hot loop: one iteration per simulated block access. Hoist the
        # lookups that never change across the range.
        tlb_access = self.tlb.access
        lookup = self.cache.lookup
        set_state = self.cache.set_state
        invalid = LineState.INVALID
        exclusive = LineState.EXCLUSIVE
        miss_cycles = common.local_miss_total_cycles
        target_state = exclusive if write else LineState.SHARED
        update_write = write and region.protocol == "update"
        for block in blocks:
            block = int(block)
            if not tlb_done and not tlb_access(block):
                self.stats.count("tlb_misses")
                self.stats.charge(SmCat.TLB_MISS, common.tlb_miss_cycles)
                yield delay_of(common.tlb_miss_cycles)
            state = lookup(block)
            if not shared:
                if state is invalid:
                    private_misses += 1
                    private_stall += miss_cycles
                    private_stall += self._install(block, target_state)
                elif write and state is not exclusive:
                    set_state(block, exclusive)
                continue
            # Bulk-update regions (Section 5.3.4 extension): writes are
            # producer-local (values travel by explicit pushes), reads
            # miss through a plain home fetch with no sharer tracking
            # consequences (no invalidations ever target these blocks).
            if update_write:
                if state is invalid:
                    private_misses += 1
                    private_stall += miss_cycles
                    private_stall += self._install(block, exclusive)
                elif state is not exclusive:
                    set_state(block, exclusive)
                continue
            # Shared segment: protocol work.
            if state is invalid:
                if private_stall:
                    # Flush accumulated private stall before the transaction.
                    self.stats.charge(SmCat.PRIVATE_MISS, private_stall)
                    self.stats.count("private_misses", private_misses)
                    yield delay_of(private_stall)
                    private_stall = 0
                    private_misses = 0
                yield from self._shared_transaction(region, block, write=write)
            elif write and state is LineState.SHARED:
                if private_stall:
                    self.stats.charge(SmCat.PRIVATE_MISS, private_stall)
                    self.stats.count("private_misses", private_misses)
                    yield delay_of(private_stall)
                    private_stall = 0
                    private_misses = 0
                yield from self._shared_transaction(region, block, write=True, upgrade=True)
        if private_stall:
            self.stats.charge(SmCat.PRIVATE_MISS, private_stall)
            self.stats.count("private_misses", private_misses)
            yield delay_of(private_stall)

    def _install(self, block: int, state: LineState) -> int:
        """Insert a line; returns replacement cycles (and issues writebacks)."""
        victim = self.cache.insert(block, state)
        if victim is None:
            return 0
        victim_addr, victim_state = victim
        sm = self.params.sm
        if not self.machine.is_shared_block(victim_addr):
            return sm.replacement_private_cycles
        if victim_state is LineState.EXCLUSIVE:
            self.machine.evict_dirty_shared(self.pid, victim_addr)
            return sm.replacement_shared_dirty_cycles
        return sm.replacement_shared_clean_cycles

    def _shared_transaction(
        self,
        region: Region,
        block: int,
        write: bool,
        upgrade: bool = False,
        charge: bool = True,
    ) -> Generator:
        """One coherence transaction: miss (GETS/GETX) or upgrade.

        ``charge=False`` runs the full protocol (directory occupancy,
        invalidation rounds, wire bytes) but skips the processor-side
        cycle charges and miss/fault counts — used by the relaxed
        store-buffer drain, whose commits do not stall the processor.
        """
        sm = self.params.sm
        home = region.home_of_block(block)
        self.machine.block_home[block] = home
        engine = self.engine
        start = engine._now
        if upgrade:
            msg_type = MsgType.UPGRADE
            yield delay_of(sm.write_fault_detect_cycles)
        else:
            msg_type = MsgType.GETX if write else MsgType.GETS
            yield delay_of(sm.shared_miss_cycles)
        done = SimEvent(name=self._txn_name)
        remote = home != self.pid
        if remote:
            # Network traffic only: messages to the local directory never
            # cross the network (the paper's byte counts are wire bytes).
            self.stats.count("control_bytes", sm.control_only_bytes)
        self.machine.send_to_directory_from(
            self.pid,
            home,
            Msg(msg_type, block, src=self.pid, requester=self.pid, done=done),
        )
        info = yield Wait(done)
        # Reply traffic, attributed to this (initiating) processor.
        if remote:
            if info.with_data:
                self.stats.count("data_bytes", 32)
                self.stats.count("control_bytes", sm.block_message_control_bytes)
            else:
                self.stats.count("control_bytes", sm.control_only_bytes)
        if info.invalidations:
            self.stats.count(
                "control_bytes", 2 * sm.control_only_bytes * info.invalidations
            )
        if info.fetched:
            self.stats.count("control_bytes", sm.control_only_bytes + 8)
            self.stats.count("data_bytes", 32)
        # Install / upgrade the line.
        repl = 0
        present = self.cache.peek(block)
        if upgrade and present is LineState.SHARED:
            self.cache.set_state(block, LineState.EXCLUSIVE)
        else:
            repl = self._install(
                block, LineState.EXCLUSIVE if write else LineState.SHARED
            )
        if repl:
            yield delay_of(repl)
        if not charge:
            return
        elapsed = engine._now - start
        if upgrade:
            self.stats.count("write_faults")
            self.stats.charge(SmCat.WRITE_FAULT, elapsed)
        else:
            key = "shared_misses_local" if home == self.pid else "shared_misses_remote"
            self.stats.count(key)
            self.stats.charge(SmCat.SHARED_MISS, elapsed)

    # -- declared bulk runs --------------------------------------------------------

    def batch(self) -> BatchScript:
        """Start a declared bulk run (see :mod:`repro.sim.batch`)."""
        return BatchScript()

    def run_batch(self, script: BatchScript) -> Generator:
        """Execute a batch script; returns the list of read results.

        On the reference backend this decomposes into the exact scalar
        ops the program would have made; the batched backend overrides
        it with a single-step executor that is bit-identical.
        """
        return (yield from run_batch_reference(self, script))

    # -- atomic operations ---------------------------------------------------------

    def _ensure_exclusive(self, region: Region, index: int) -> Generator:
        """Obtain write permission on the block holding element ``index``."""
        common = self.params.common
        addr = region.addr_of(index)
        block = addr - (addr % common.block_bytes)
        if not self.tlb.access(block):
            self.stats.count("tlb_misses")
            self.stats.charge(SmCat.TLB_MISS, common.tlb_miss_cycles)
            yield delay_of(common.tlb_miss_cycles)
        state = self.cache.lookup(block)
        if region.segment is not Segment.SHARED:
            raise ValueError("atomic operations are for shared memory")
        if state is LineState.INVALID:
            yield from self._shared_transaction(region, block, write=True)
        elif state is LineState.SHARED:
            yield from self._shared_transaction(region, block, write=True, upgrade=True)

    def atomic_swap(self, region: Region, index: int, new_value) -> Generator:
        """Atomically exchange element ``index``; returns the old value."""
        yield from self._ensure_exclusive(region, index)
        flat = region.np.reshape(-1)
        old = flat[index].item()
        flat[index] = new_value
        self.stats.count("atomic_ops")
        yield from self.compute(self.params.sm.atomic_op_cycles)
        return old

    def atomic_cas(self, region: Region, index: int, expected, new_value) -> Generator:
        """Atomic compare-and-swap; returns True if the swap happened."""
        yield from self._ensure_exclusive(region, index)
        flat = region.np.reshape(-1)
        self.stats.count("atomic_ops")
        yield from self.compute(self.params.sm.atomic_op_cycles)
        if flat[index].item() == expected:
            flat[index] = new_value
            return True
        return False

    # -- protocol extensions (paper Section 5.3.4) ---------------------------------

    def flush(
        self, region: Region, start: int = 0, stop: Optional[int] = None, **kwargs
    ) -> Generator:
        """Proactively drop clean copies of elements [start, stop).

        The paper's suggested consumer optimization: flushing a copy of
        a remote value turns the producer's next 2-message invalidation
        into a single-message cache replacement. Dirty lines write back.
        """
        if kwargs:
            reject_unknown_kwargs("flush", kwargs, ("start", "stop"))
        if stop is None:
            stop = region.np.size
        addr_range = region.range_of(start, stop)
        yield from self._flush_blocks(
            region, addr_range.blocks(self.params.common.block_bytes)
        )

    def flush_gather(self, region: Region, indices: Sequence[int]) -> Generator:
        """Flush only the blocks under the given element indices."""
        yield from self._flush_blocks(
            region, (int(b) for b in region.block_addrs_of_indices(indices))
        )

    def _flush_blocks(self, region: Region, blocks) -> Generator:
        sm = self.params.sm
        stall = 0
        for block in blocks:
            block = int(block)
            state = self.cache.peek(block)
            if state is LineState.INVALID:
                continue
            self.cache.invalidate(block)
            self.stats.count("flushes")
            home = region.home_of_block(block)
            self.machine.block_home[block] = home
            if state is LineState.EXCLUSIVE:
                stall += sm.replacement_shared_dirty_cycles
                self.machine.evict_dirty_shared(self.pid, block)
            else:
                stall += sm.invalidate_cycles + sm.replacement_shared_clean_cycles
                # One control message releases the copy at the directory.
                if home != self.pid:
                    self.stats.count("control_bytes", sm.control_only_bytes)
                self.machine.send_to_directory_from(
                    self.pid,
                    home,
                    Msg(MsgType.FLUSH, block, src=self.pid, requester=self.pid),
                )
        if stall:
            self.stats.charge(SmCat.COMPUTE, stall)
            yield delay_of(stall)

    def push_update(
        self,
        region: Region,
        indices: Sequence[int],
        subscribers: Sequence[int],
    ) -> Generator:
        """Bulk-push current values of ``indices`` to consumer caches.

        The Section 5.3.4 bulk-update protocol: a single message per
        consumer carries every touched block; consumer copies are
        refreshed in place instead of invalidated, so the consumer's
        next read hits. The region must use the "update" protocol.
        """
        if region.protocol != "update":
            raise ValueError(f"region {region.name!r} is not an update region")
        sm = self.params.sm
        blocks = [int(b) for b in region.block_addrs_of_indices(indices)]
        if not blocks:
            return
        for target in subscribers:
            if target == self.pid:
                continue
            cost = 20 + 5 * len(blocks)  # message setup + per-block stores
            self.stats.charge(SmCat.COMPUTE, cost)
            yield delay_of(cost)
            self.stats.count("update_pushes")
            self.stats.count("data_bytes", 32 * len(blocks))
            self.stats.count("control_bytes", sm.block_message_control_bytes)
            self.machine.send_to_cache_ctrl(
                self.pid,
                target,
                Msg(
                    MsgType.UPDATE_PUSH,
                    blocks[0],
                    src=self.pid,
                    requester=self.pid,
                    info=tuple(blocks),
                ),
            )

    def prefetch_gather(self, region: Region, indices: Sequence[int]) -> Generator:
        """Issue non-binding prefetches for the blocks under ``indices``.

        The paper's other 5.3.4 suggestion (cooperative prefetch, CSM):
        the transactions run in the background; lines install on arrival
        without stalling the processor. Issue cost: one cycle per block.
        A later demand read that beats the reply pays a normal miss.
        """
        common = self.params.common
        issued = 0
        for block in region.block_addrs_of_indices(indices):
            block = int(block)
            if self.cache.peek(block) is not LineState.INVALID:
                continue
            if block in self.machine.prefetches_in_flight:
                continue
            home = region.home_of_block(block)
            self.machine.block_home[block] = home
            done = SimEvent(name=f"p{self.pid}.prefetch")
            remote = home != self.pid
            if remote:
                self.stats.count("control_bytes", self.params.sm.control_only_bytes)
            self.machine.send_to_directory_from(
                self.pid,
                home,
                Msg(MsgType.GETS, block, src=self.pid, requester=self.pid, done=done),
            )
            self.machine.prefetches_in_flight.add(block)
            done.add_callback(self._prefetch_arrival(block, remote))
            issued += 1
            self.stats.count("prefetches")
        if issued:
            self.stats.charge(SmCat.COMPUTE, issued)
            yield delay_of(issued)

    def _prefetch_arrival(self, block: int, remote: bool):
        def install(_info) -> None:
            self.machine.prefetches_in_flight.discard(block)
            if remote:
                self.stats.count("data_bytes", 32)
                self.stats.count(
                    "control_bytes", self.params.sm.block_message_control_bytes
                )
            if self.cache.peek(block) is LineState.INVALID:
                victim = self.cache.insert(block, LineState.SHARED)
                if (
                    victim is not None
                    and victim[1] is LineState.EXCLUSIVE
                    and self.machine.is_shared_block(victim[0])
                ):
                    self.machine.evict_dirty_shared(self.pid, victim[0])

        return install

    # -- spin waiting ------------------------------------------------------------------

    def spin_until(
        self, region: Region, index: int, predicate: Callable[[float], bool]
    ) -> Generator:
        """Spin on a cached location until ``predicate(value)`` holds.

        Models MCS-style local spinning: the value is re-read (a fresh
        coherence transaction) only after an invalidation — i.e., a
        remote write — reaches this node's cache; between invalidations
        the spin hits in the cache and costs nothing extra. Waiting time
        is charged as computation (remapped by the active context, e.g.
        to Locks inside lock code).
        """
        common = self.params.common
        addr = region.addr_of(index)
        block = addr - (addr % common.block_bytes)
        while True:
            values = yield from self.read(region, index, index + 1)
            value = values[0].item()
            if predicate(value):
                return value
            wake = SimEvent(name=self._spin_name)
            self.machine.inval_gate(self.pid, block).park(
                lambda: wake.fired or wake.fire(None)
            )
            start = self.engine.now
            yield Wait(wake)
            waited = self.engine.now - start
            if waited:
                self.stats.charge(SmCat.COMPUTE, waited)

    # -- synchronization ----------------------------------------------------------------

    def fence(self) -> Generator:
        """Store fence: wait until this processor's stores are visible.

        Sequential consistency commits every store before the storing
        instruction completes, so the fence is free — it returns without
        touching the engine at all (the ``sc`` path stays bit-identical).
        :class:`~repro.sm.relaxed.RelaxedSmContext` overrides this to
        drain its store buffer.
        """
        return
        yield  # pragma: no cover - makes this a generator function

    def barrier(self) -> Generator:
        """Hardware barrier; wait time charged to Barriers."""
        waited = yield from self.machine.barrier.arrive()
        self.stats.charge_raw(SmCat.BARRIER, waited)
        self.stats.count("barriers")

    def create(self) -> None:
        """Processor 0 signals that start-up is done (parmacs create)."""
        self.machine.created.fire(None)

    def wait_create(self) -> Generator:
        """Non-zero processors wait for create; time is Start-up Wait."""
        start = self.engine.now
        yield Wait(self.machine.created)
        self.stats.charge_raw(SmCat.STARTUP_WAIT, self.engine.now - start)
