"""Per-node directory controller of the Dir_nNB protocol.

One directory process per node manages coherence for the blocks homed
there. Messages are served strictly in arrival order with the occupancy
costs of paper Table 3 (10 cycles base, +8 to receive a block, +5 per
message sent, +8 to send a block); queuing behind earlier messages is
what produces the directory contention the paper measures in Gauss
(~200-cycle average queuing delay).

Multi-message transactions (a fetch of a dirty copy, an invalidation
round) mark the block's entry *busy*; requests for a busy block are
parked on the entry and re-posted when the transaction completes, which
serializes conflicting accesses exactly as a blocking home-node protocol
does.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Generator, Tuple

from repro.check.errors import CheckError
from repro.sim.events import Gate, SimEvent
from repro.sim.process import Process, Wait, delay_of
from repro.sm.protocol import DirEntry, DirState, Msg, MsgType, TransactionInfo


class Directory:
    """Directory controller for the blocks homed at one node."""

    def __init__(self, machine: "repro.sm.machine.SmMachine", node_id: int) -> None:  # noqa: F821
        self.machine = machine
        self.node_id = node_id
        self.engine = machine.engine
        self.sm = machine.params.sm
        self.common = machine.params.common
        self.entries: Dict[int, DirEntry] = defaultdict(DirEntry)
        self._inbox: Deque[Tuple[int, Msg]] = deque()
        self._gate = Gate(name=f"dir{node_id}.inbox")
        self.process = Process(self.engine, self._run(), name=f"dir{node_id}")
        # Contention instrumentation (paper Section 5.2).
        self.requests_served = 0
        self.total_queue_cycles = 0

    # -- message entry points ---------------------------------------------------

    def post(self, msg: Msg) -> None:
        """Deliver a message into the directory's FIFO inbox."""
        self._inbox.append((self.engine._now, msg))
        self._gate.pulse()

    def downgrade_for_eviction(self, block: int, owner: int) -> None:
        """Synchronous logical effect of a dirty eviction at ``owner``.

        The WRITEBACK message that carries the data (and pays occupancy
        and traffic) follows separately; updating the logical state here
        keeps the directory from fetching from a stale owner. See
        DESIGN.md on this simplification.
        """
        entry = self.entries[block]
        if entry.state is DirState.EXCLUSIVE and entry.owner == owner:
            entry.state = DirState.UNOWNED
            entry.owner = None

    def mean_queue_delay(self) -> float:
        if self.requests_served == 0:
            return 0.0
        return self.total_queue_cycles / self.requests_served

    # -- serving loop --------------------------------------------------------------

    def _run(self) -> Generator:
        wake_name = f"dir{self.node_id}.wake"
        engine = self.engine
        inbox = self._inbox
        popleft = inbox.popleft
        while True:
            if not inbox:
                wake = SimEvent(name=wake_name)
                self._gate.park(lambda: wake.fired or wake.fire(None))
                yield Wait(wake)
                continue
            arrival, msg = popleft()
            self.requests_served += 1
            self.total_queue_cycles += engine._now - arrival
            yield from self._handle(msg)

    def _handle(self, msg: Msg) -> Generator:
        entry = self.entries[msg.block]
        if msg.type in (MsgType.GETS, MsgType.GETX, MsgType.UPGRADE):
            if entry.busy:
                entry.pending.append(msg)
                yield delay_of(1)  # queue-and-defer bookkeeping
                return
            yield from self._handle_request(entry, msg)
        elif msg.type is MsgType.ACK:
            yield from self._handle_ack(entry, msg)
        elif msg.type is MsgType.FETCH_REPLY:
            yield from self._handle_fetch_reply(entry, msg)
        elif msg.type is MsgType.WRITEBACK:
            yield delay_of(
                self.sm.directory_base_cycles
                + self.sm.directory_recv_block_cycles
                + self.common.dram_cycles
            )
        elif msg.type is MsgType.FLUSH:
            # Section 5.3.4 extension: a consumer proactively dropped its
            # clean copy, so the next write needs no invalidation round.
            yield delay_of(self.sm.directory_ack_cycles)
            entry.sharers.discard(msg.src)
            if entry.state is DirState.SHARED and not entry.sharers:
                entry.state = DirState.UNOWNED
        else:
            raise CheckError(
                "protocol",
                f"directory cannot serve message {msg}",
                node=self.node_id,
                block=msg.block,
                state=entry.describe(),
            )

    # -- request handling --------------------------------------------------------------

    def _handle_request(self, entry: DirEntry, msg: Msg) -> Generator:
        requester = msg.requester
        if entry.state is DirState.EXCLUSIVE and entry.owner != requester:
            # Recall the dirty copy; the transaction completes at
            # _handle_fetch_reply. Capture the owner now: its eviction
            # writeback may race with our occupancy delay (the cache
            # controller answers fetches for already-evicted lines).
            owner = entry.owner
            entry.busy = True
            entry.waiting = msg
            entry.txn_info = TransactionInfo(with_data=True, fetched=True)
            yield delay_of(
                self.sm.directory_base_cycles + self.sm.directory_send_msg_cycles
            )
            invalidate_owner = msg.type is not MsgType.GETS
            self.machine.send_to_cache_ctrl(
                self.node_id,
                owner,
                Msg(
                    MsgType.FETCH,
                    msg.block,
                    src=self.node_id,
                    requester=requester,
                    info=invalidate_owner,
                ),
            )
            return

        if msg.type is MsgType.GETS:
            yield delay_of(
                self.sm.directory_base_cycles
                + self.common.dram_cycles
                + self.sm.directory_send_msg_cycles
                + self.sm.directory_send_block_cycles
            )
            entry.state = DirState.SHARED
            entry.sharers.add(requester)
            entry.owner = None
            self._complete(msg, TransactionInfo(with_data=True))
            return

        # GETX or UPGRADE.
        targets = entry.sharers - {requester}
        if entry.state is DirState.SHARED and targets:
            entry.busy = True
            entry.waiting = msg
            entry.acks_needed = len(targets)
            entry.txn_info = TransactionInfo(
                with_data=(msg.type is MsgType.GETX)
                or requester not in entry.sharers,
                invalidations=len(targets),
            )
            yield delay_of(
                self.sm.directory_base_cycles
                + self.sm.directory_send_msg_cycles * len(targets)
            )
            for target in sorted(targets):
                self.machine.send_to_cache_ctrl(
                    self.node_id,
                    target,
                    Msg(MsgType.INV, msg.block, src=self.node_id, requester=requester),
                )
            return

        # No other copies: grant immediately.
        with_data = not (
            msg.type is MsgType.UPGRADE and requester in entry.sharers
        )
        occupancy = self.sm.directory_base_cycles + self.sm.directory_send_msg_cycles
        if with_data:
            occupancy += self.common.dram_cycles + self.sm.directory_send_block_cycles
        yield delay_of(occupancy)
        entry.state = DirState.EXCLUSIVE
        entry.owner = requester
        entry.sharers.clear()
        self._complete(msg, TransactionInfo(with_data=with_data))

    def _handle_ack(self, entry: DirEntry, msg: Msg) -> Generator:
        yield delay_of(self.sm.directory_ack_cycles)
        if not entry.busy or entry.acks_needed <= 0:
            raise CheckError(
                "protocol",
                f"unexpected ACK from node {msg.src} (no invalidation "
                f"round in progress)",
                node=self.node_id,
                block=msg.block,
                state=entry.describe(),
            )
        entry.acks_needed -= 1
        if entry.acks_needed:
            return
        request = entry.waiting
        info = entry.txn_info
        occupancy = self.sm.directory_send_msg_cycles
        if info.with_data:
            occupancy += self.common.dram_cycles + self.sm.directory_send_block_cycles
        yield delay_of(occupancy)
        entry.state = DirState.EXCLUSIVE
        entry.owner = request.requester
        entry.sharers.clear()
        self._finish_transaction(entry, request, info)

    def _handle_fetch_reply(self, entry: DirEntry, msg: Msg) -> Generator:
        yield delay_of(
            self.sm.directory_base_cycles
            + self.sm.directory_recv_block_cycles
            + self.common.dram_cycles
            + self.sm.directory_send_msg_cycles
            + self.sm.directory_send_block_cycles
        )
        request = entry.waiting
        info = entry.txn_info
        old_owner = entry.owner
        if request.type is MsgType.GETS:
            entry.state = DirState.SHARED
            entry.sharers = {request.requester}
            if old_owner is not None:
                entry.sharers.add(old_owner)  # owner downgraded to a copy
            entry.owner = None
        else:
            entry.state = DirState.EXCLUSIVE
            entry.owner = request.requester
            entry.sharers.clear()
        self._finish_transaction(entry, request, info)

    # -- completion ------------------------------------------------------------------------

    def _finish_transaction(
        self, entry: DirEntry, request: Msg, info: TransactionInfo
    ) -> None:
        entry.busy = False
        entry.waiting = None
        entry.txn_info = None
        entry.acks_needed = 0
        self._complete(request, info)
        while entry.pending:
            self.post(entry.pending.popleft())

    def _complete(self, msg: Msg, info: TransactionInfo) -> None:
        """Deliver the reply (data or grant) to the requester."""
        latency = self.machine.latency(self.node_id, msg.requester)
        done = msg.done
        self.engine._schedule_step(latency, lambda: done.fire(info))
