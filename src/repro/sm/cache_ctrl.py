"""Per-node cache controller of the shared-memory machine.

Services the protocol messages that *arrive at* a node's cache:
invalidations (3 cycles + replacement cost, paper Table 3) and fetches
(recall of a dirty copy). Runs concurrently with the node's processor,
as the hardware does; its costs therefore consume controller occupancy
and add to transaction latency rather than to the local program's cycle
categories. Invalidations received are counted on the node's stats and
pulse the node's per-block invalidation gates, which wake spin-waiting
readers (the MCS-lock spin model).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Tuple

from repro.arch.cache import LineState
from repro.check.errors import CheckError
from repro.sim.events import Gate, SimEvent
from repro.sim.process import Process, Wait, delay_of
from repro.sm.protocol import Msg, MsgType


class CacheCtrl:
    """Invalidation/fetch servicing for one node's cache."""

    def __init__(self, machine: "repro.sm.machine.SmMachine", node_id: int) -> None:  # noqa: F821
        self.machine = machine
        self.node_id = node_id
        self.engine = machine.engine
        self.sm = machine.params.sm
        self._inbox: Deque[Tuple[int, Msg]] = deque()
        self._gate = Gate(name=f"cc{node_id}.inbox")
        self.process = Process(self.engine, self._run(), name=f"cc{node_id}")
        self.invalidations_serviced = 0
        self.fetches_serviced = 0

    def post(self, msg: Msg) -> None:
        self._inbox.append((self.engine._now, msg))
        self._gate.pulse()

    def _run(self) -> Generator:
        wake_name = f"cc{self.node_id}.wake"
        while True:
            if not self._inbox:
                wake = SimEvent(name=wake_name)
                self._gate.park(lambda: wake.fired or wake.fire(None))
                yield Wait(wake)
                continue
            _arrival, msg = self._inbox.popleft()
            if msg.type is MsgType.INV:
                yield from self._handle_inv(msg)
            elif msg.type is MsgType.FETCH:
                yield from self._handle_fetch(msg)
            elif msg.type is MsgType.UPDATE_PUSH:
                yield from self._handle_update_push(msg)
            else:
                cache = self.machine.nodes[self.node_id].cache
                raise CheckError(
                    "protocol",
                    f"cache controller cannot serve message {msg}",
                    node=self.node_id,
                    block=msg.block,
                    state=cache.peek(msg.block).name,
                )

    def _replacement_cost(self, state: LineState) -> int:
        if state is LineState.EXCLUSIVE:
            return self.sm.replacement_shared_dirty_cycles
        if state is LineState.SHARED:
            return self.sm.replacement_shared_clean_cycles
        return 0  # already evicted: nothing to replace

    def _handle_inv(self, msg: Msg) -> Generator:
        cache = self.machine.nodes[self.node_id].cache
        prior = cache.invalidate(msg.block)
        yield delay_of(self.sm.invalidate_cycles + self._replacement_cost(prior))
        self.invalidations_serviced += 1
        self.machine.nodes[self.node_id].stats.count("invalidations_received")
        self.machine.pulse_inval_gate(self.node_id, msg.block)
        self.machine.send_to_directory(
            self.node_id,
            msg.block,
            Msg(MsgType.ACK, msg.block, src=self.node_id, requester=msg.requester),
        )

    def _handle_fetch(self, msg: Msg) -> Generator:
        """Recall this node's dirty copy (downgrade on GETS, drop on GETX).

        If the line was already evicted (its writeback raced the fetch),
        reply anyway: the data is at home by then. ``msg.info`` is True
        when the copy must be invalidated rather than downgraded.
        """
        cache = self.machine.nodes[self.node_id].cache
        invalidate = bool(msg.info)
        if invalidate:
            prior = cache.invalidate(msg.block)
            if prior is not LineState.INVALID:
                self.machine.pulse_inval_gate(self.node_id, msg.block)
        else:
            prior = cache.peek(msg.block)
            if prior is LineState.EXCLUSIVE:
                cache.set_state(msg.block, LineState.SHARED)
        yield delay_of(self.sm.invalidate_cycles + self._replacement_cost(prior))
        self.fetches_serviced += 1
        self.machine.send_to_directory(
            self.node_id,
            msg.block,
            Msg(
                MsgType.FETCH_REPLY,
                msg.block,
                src=self.node_id,
                requester=msg.requester,
            ),
        )

    def _handle_update_push(self, msg: Msg) -> Generator:
        """Install pushed blocks in place (Section 5.3.4 bulk update).

        Consumer copies are refreshed rather than invalidated; the next
        read of these blocks hits. Occupancy: 3 cycles per block written
        into the cache.
        """
        cache = self.machine.nodes[self.node_id].cache
        blocks = msg.info
        yield delay_of(self.sm.invalidate_cycles * len(blocks))
        for block in blocks:
            if cache.peek(block) is LineState.INVALID:
                victim = cache.insert(block, LineState.SHARED)
                if (
                    victim is not None
                    and victim[1] is LineState.EXCLUSIVE
                    and self.machine.is_shared_block(victim[0])
                ):
                    self.machine.evict_dirty_shared(self.node_id, victim[0])
        self.machine.nodes[self.node_id].stats.count(
            "updates_received", len(blocks)
        )
