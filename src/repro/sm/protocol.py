"""Message and state vocabulary of the Dir_nNB coherence protocol.

``Dir_nNB``: a full-map directory (n = all processors may share a
block), No Broadcast. The directory at a block's home node records
either a set of sharers (read-only copies) or a single owner (writable
dirty copy) and sends the fewest possible invalidations.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Optional, Set

from repro.sim.events import SimEvent


class DirState(enum.Enum):
    """Directory-side state of a block."""

    UNOWNED = 0  # memory at home holds the only copy
    SHARED = 1  # read-only copies at `sharers`
    EXCLUSIVE = 2  # one dirty copy at `owner`


class MsgType(enum.Enum):
    """Protocol messages.

    Requests (processor -> home directory): GETS (read miss), GETX
    (write miss), UPGRADE (write fault on a SHARED copy), WRITEBACK
    (dirty eviction). Directory -> remote cache controller: INV
    (invalidate a copy), FETCH (recall the dirty copy). Responses:
    ACK (invalidation done), FETCH_REPLY (dirty data back to home).
    The data/grant to the original requester is delivered by firing the
    transaction's completion event.
    """

    GETS = "gets"
    GETX = "getx"
    UPGRADE = "upgrade"
    WRITEBACK = "writeback"
    INV = "inv"
    FETCH = "fetch"
    ACK = "ack"
    FETCH_REPLY = "fetch_reply"
    # Extensions (paper Section 5.3.4 discussion):
    FLUSH = "flush"  # drop a clean copy, notifying the directory
    UPDATE_PUSH = "update_push"  # bulk data push (user-level protocol)


@dataclass
class Msg:
    """One protocol message in flight."""

    type: MsgType
    block: int
    src: int  # sending node
    requester: int  # node whose transaction this belongs to
    done: Optional[SimEvent] = None  # completion event (requests only)
    info: Any = None


@dataclass
class TransactionInfo:
    """Completion payload: what the transaction cost on the wire.

    The requester uses this to attribute the transaction's secondary
    traffic (invalidations, acknowledgements, fetches) to itself, the
    way the paper's per-processor byte counts do.
    """

    with_data: bool  # did the reply carry a cache block?
    invalidations: int = 0
    fetched: bool = False


@dataclass
class DirEntry:
    """Directory record for one block at its home node."""

    state: DirState = DirState.UNOWNED
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None
    busy: bool = False  # a multi-message transaction is in progress
    pending: Deque[Msg] = field(default_factory=deque)
    # State of the in-progress transaction (valid while busy).
    acks_needed: int = 0
    waiting: Optional[Msg] = None  # the request being served
    txn_info: Optional[TransactionInfo] = None

    def describe(self) -> str:
        if self.state is DirState.EXCLUSIVE:
            return f"EXCLUSIVE@{self.owner}"
        if self.state is DirState.SHARED:
            return f"SHARED{sorted(self.sharers)}"
        return "UNOWNED"
