"""parmacs macro facade.

The paper's shared-memory programs "use the parmacs macros": gmalloc
with round-robin allocation, create(f) duplicating processor 0's data
segments onto the other nodes, MCS lock/unlock, and the hardware
barrier. :class:`Parmacs` maps those macro names onto the SmContext
surface for programs written in the parmacs idiom; the applications in
:mod:`repro.apps` use the context methods directly.
"""

from __future__ import annotations

from typing import Generator

import numpy as np


class Parmacs:
    """Macro-style veneer over one processor's SmContext."""

    def __init__(self, ctx: "repro.sm.api.SmContext") -> None:  # noqa: F821
        self.ctx = ctx

    def G_MALLOC(self, name: str, shape, dtype=np.float64, fill: float = 0.0):
        """Shared allocation with the machine's (round-robin) policy."""
        return self.ctx.gmalloc(name, shape, dtype=dtype, fill=fill)

    def CREATE(self) -> None:
        """Processor 0: start the other processors."""
        if self.ctx.pid != 0:
            raise RuntimeError("CREATE is called by processor 0 only")
        self.ctx.create()

    def WAIT_CREATE(self) -> Generator:
        """Non-zero processors: wait to be started (Start-up Wait)."""
        yield from self.ctx.wait_create()

    def BARRIER(self) -> Generator:
        yield from self.ctx.barrier()

    def LOCK(self, name: str) -> Generator:
        """Acquire a machine-registered MCS lock by name."""
        lock = self.ctx.machine.get_lock(name)
        yield from lock.acquire(self.ctx)

    def UNLOCK(self, name: str) -> Generator:
        lock = self.ctx.machine.get_lock(name)
        yield from lock.release(self.ctx)
