"""MCS queue locks and MCS-style combining reductions.

Implemented *on* the simulated shared memory (paper Section 4.2): each
processor spins on a separate, locally cached location; the relinquisher
passes the lock with a single remote write that invalidates the
spinner's copy and terminates its spin. Every remote miss, write fault,
and invalidation these algorithms cause is paid through the coherence
protocol, so lock/reduction costs emerge rather than being assumed.

Each processor's queue node occupies its own cache block (one 4-word
row) to avoid false sharing.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Tuple

import numpy as np

#: A reduction contribution: (value, auxiliary word), e.g. (pivot, row).
Pair = Tuple[float, float]


class McsLock:
    """Mellor-Crummey & Scott queue lock.

    The acquire path uses the machine's atomic swap; the release path
    uses compare-and-swap (also modeled hardware — see DESIGN.md). Time
    spent inside is attributed to the "lock" context (the Locks row of
    the paper's SM tables).
    """

    def __init__(self, machine: "repro.sm.machine.SmMachine", name: str) -> None:  # noqa: F821
        nprocs = machine.nprocs
        # tail holds the id of the last waiter (-1: free).
        self.tail = machine.space.alloc_shared(
            f"{name}.tail", owner=0, shape=4, dtype=np.int64,
            policy=machine.allocation_policy, fill=-1,
        )
        # One 32-byte row per processor: [next, locked, pad, pad].
        self.qnodes = machine.space.alloc_shared(
            f"{name}.qnodes", owner=0, shape=nprocs * 4, dtype=np.int64,
            policy=machine.allocation_policy, fill=0,
        )
        machine.index_region(self.tail)
        machine.index_region(self.qnodes)
        self.name = name

    def acquire(self, ctx: "repro.sm.api.SmContext") -> Generator:  # noqa: F821
        """Join the queue; spin locally until granted."""
        me = ctx.pid
        with ctx.stats.context("lock"):
            yield from ctx.write(
                self.qnodes, me * 4, values=np.array([-1, 1], dtype=np.int64)
            )
            prev = yield from ctx.atomic_swap(self.tail, 0, me)
            if prev != -1:
                # Link behind the predecessor, then spin on our own flag.
                yield from ctx.write(
                    self.qnodes, int(prev) * 4, values=np.array([me], dtype=np.int64)
                )
                yield from ctx.spin_until(self.qnodes, me * 4 + 1, lambda v: v == 0)
            ctx.stats.count("lock_acquires")

    def release(self, ctx: "repro.sm.api.SmContext") -> Generator:  # noqa: F821
        """Pass the lock to the successor (or free it)."""
        me = ctx.pid
        with ctx.stats.context("lock"):
            # Relaxed models: the hand-off write below must not become
            # visible before the critical section's stores — the woken
            # successor would read stale data. SC's fence is free.
            yield from ctx.fence()
            successor = yield from ctx.read(self.qnodes, me * 4, me * 4 + 1)
            nxt = int(successor[0])
            if nxt == -1:
                freed = yield from ctx.atomic_cas(self.tail, 0, me, -1)
                if freed:
                    return
                # A new waiter swapped in but has not linked yet.
                nxt = int(
                    (
                        yield from ctx.spin_until(
                            self.qnodes, me * 4, lambda v: v != -1
                        )
                    )
                )
            yield from ctx.write(
                self.qnodes, nxt * 4 + 1, values=np.array([0], dtype=np.int64)
            )


class McsReduction:
    """Combining-tree reduction (the upward phase of an MCS barrier).

    Each processor publishes its contribution in its own cache block;
    internal tree nodes spin (locally) for their children's round flags,
    combine, and publish upward. ``reduce`` leaves the result at
    processor 0; ``allreduce`` adds a broadcast through a shared result
    cell. Successive ``reduce`` calls must be separated by a barrier (or
    use ``allreduce``) so a fast child cannot overwrite a value its
    parent has not read.

    Contributions are ``(value, aux)`` pairs so that argmax-style
    reductions (Gauss pivot selection: value plus row index) combine in
    one pass; scalar reductions pass ``aux=0``.
    """

    def __init__(
        self,
        machine: "repro.sm.machine.SmMachine",  # noqa: F821
        name: str,
        context: str = "reduction",
    ) -> None:
        nprocs = machine.nprocs
        # One row per processor: [value, aux, round_flag, pad].
        self.slots = machine.space.alloc_shared(
            f"{name}.slots", owner=0, shape=nprocs * 4, dtype=np.float64,
            policy=machine.allocation_policy, fill=0.0,
        )
        # Broadcast cell: [value, aux, round_flag, pad].
        self.result = machine.space.alloc_shared(
            f"{name}.result", owner=0, shape=4, dtype=np.float64,
            policy=machine.allocation_policy, fill=0.0,
        )
        machine.index_region(self.slots)
        machine.index_region(self.result)
        self.context = context
        self.nprocs = nprocs
        self._rounds: Dict[int, int] = {}

    def reduce(
        self,
        ctx: "repro.sm.api.SmContext",  # noqa: F821
        value: float,
        op: Callable[[Pair, Pair], Pair],
        aux: float = 0.0,
        op_cycles: int = 4,
    ) -> Generator:
        """Combine toward processor 0.

        Returns the ``(value, aux)`` pair at processor 0, None elsewhere.
        ``op`` combines two pairs (e.g. ``max`` for argmax reductions
        where aux carries an index).
        """
        me = ctx.pid
        round_ = self._rounds.get(me, 0) + 1
        self._rounds[me] = round_
        pair = (float(value), float(aux))
        with ctx.stats.context(self.context):
            for child in (2 * me + 1, 2 * me + 2):
                if child >= self.nprocs:
                    continue
                yield from ctx.spin_until(
                    self.slots, child * 4 + 2, lambda v: v >= round_
                )
                contribution = yield from ctx.read(
                    self.slots, child * 4, child * 4 + 2
                )
                pair = op(pair, (float(contribution[0]), float(contribution[1])))
                yield from ctx.compute(op_cycles)
            yield from ctx.write(
                self.slots,
                me * 4,
                values=np.array([pair[0], pair[1], float(round_)]),
            )
        if me == 0:
            return pair
        return None

    def allreduce(
        self,
        ctx: "repro.sm.api.SmContext",  # noqa: F821
        value: float,
        op: Callable[[Pair, Pair], Pair],
        aux: float = 0.0,
        op_cycles: int = 4,
    ) -> Generator:
        """Reduce to processor 0, then broadcast through the result cell.

        Returns the final ``(value, aux)`` pair on every processor.
        """
        me = ctx.pid
        reduced = yield from self.reduce(ctx, value, op, aux=aux, op_cycles=op_cycles)
        round_ = float(self._rounds[me])
        with ctx.stats.context(self.context):
            if me == 0:
                yield from ctx.write(
                    self.result, 0, values=np.array([reduced[0], reduced[1], round_])
                )
                return reduced
            yield from ctx.spin_until(self.result, 2, lambda v: v >= round_)
            values = yield from ctx.read(self.result, 0, 2)
            return (float(values[0]), float(values[1]))
