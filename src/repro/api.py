"""The stable programmatic facade over the repro harness.

Everything a script, notebook, benchmark, or downstream tool should
need lives here, re-exported from the subsystems that implement it:

* :func:`resolve_config` — an experiment's frozen
  :class:`~repro.runner.config.ExperimentConfig`, with overrides
  applied (unknown override keys raise with a did-you-mean).
* :func:`run_raw` — one in-process simulation, memoized per
  configuration; returns the experiment's live result object.
* :func:`record_for` — one serializable
  :class:`~repro.runner.record.RunRecord`, disk-cache first.
* :func:`execute` — many experiments fanned out over worker
  processes, cache-aware.
* :func:`sweep` — a declarative sensitivity sweep
  (:class:`SweepSpec` or a shipped spec name) through the same
  executor and cache; returns a :class:`SweepResult`.

Import from ``repro.api`` rather than the implementing modules:
the facade is the surface the project promises to keep stable across
internal refactors (the wrapper it replaced,
``repro.core.experiments.run_experiment``, is deprecated).

>>> from repro import api
>>> pair = api.run_raw("gauss", overrides={"app": {"n": 64}})
>>> record = api.record_for("mse")
>>> result = api.sweep("em3d-latency")
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence, Union

from repro.runner.api import (
    clear_memory_cache,
    execute,
    record_for,
    resolve_config,
    run_raw,
)
from repro.runner.cache import ResultCache
from repro.runner.config import ExperimentConfig
from repro.runner.record import RunRecord
from repro.sweep import SweepResult, SweepSpec, get_sweep, run_sweep

__all__ = [
    "ExperimentConfig",
    "ResultCache",
    "RunRecord",
    "SweepResult",
    "SweepSpec",
    "clear_memory_cache",
    "execute",
    "get_sweep",
    "record_for",
    "resolve_config",
    "run_raw",
    "sweep",
]


def sweep(
    spec: Union[str, SweepSpec],
    axes: Optional[Mapping[str, Sequence[Any]]] = None,
    **kwargs: Any,
) -> SweepResult:
    """Run one sensitivity sweep; accepts a shipped spec name.

    ``axes`` replaces (or appends) axis value lists; remaining keyword
    arguments pass through to :func:`repro.sweep.run_sweep`
    (``jobs``, ``cache``, ``force``, ``resume``, ``progress``, ...).
    """
    if isinstance(spec, str):
        spec = get_sweep(spec)
    return run_sweep(spec, axes=axes, **kwargs)
