"""The stable programmatic facade over the repro harness.

Everything a script, notebook, benchmark, or downstream tool should
need lives here, re-exported from the subsystems that implement it:

* :func:`resolve_config` — an experiment's frozen
  :class:`~repro.runner.config.ExperimentConfig`, with overrides
  applied (unknown override keys raise with a did-you-mean).
* :func:`run_raw` — one in-process simulation, memoized per
  configuration; returns the experiment's live result object.
* :func:`record_for` — one serializable
  :class:`~repro.runner.record.RunRecord`, disk-cache first.
* :func:`execute` — many experiments fanned out over worker
  processes, cache-aware.
* :func:`sweep` — a declarative sensitivity sweep
  (:class:`SweepSpec` or a shipped spec name) through the same
  executor and cache; returns a :class:`SweepResult`.
* :func:`bench` — the kernel + end-to-end benchmark suite; returns
  the JSON-ready result document.
* :func:`trace_for` — one traced simulation; returns a
  :class:`TraceResult` holding the validated Chrome Trace document.
* :func:`serve` — the harness as a long-running HTTP service
  (:class:`~repro.serve.server.ReproServer`): submit runs/sweeps over
  ``POST``, poll content-hash job IDs, warm requests answered from the
  result cache in milliseconds.
* :func:`load_spec` / :func:`specs` — the declarative YAML scenario
  layer (:mod:`repro.specs`): load one experiment/sweep spec by id or
  path, or list every discoverable spec with its metadata.
* :func:`query` — filtered rows out of the run lake
  (:mod:`repro.lake`): cycle-breakdown metric columns across
  apps/backends/consistency models/presets, stale-salt rows excluded
  unless asked for; zero re-simulation.

Import from ``repro.api`` rather than the implementing modules:
the facade is the surface the project promises to keep stable across
internal refactors (the wrapper it replaced,
``repro.core.experiments.run_experiment``, is deprecated).

>>> from repro import api
>>> pair = api.run_raw("gauss", overrides={"app": {"n": 64}})
>>> record = api.record_for("mse")
>>> result = api.sweep("em3d-latency")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.runner.api import (
    clear_memory_cache,
    execute,
    record_for,
    resolve_config,
    run_raw,
)
from repro.runner.cache import ResultCache
from repro.runner.config import ExperimentConfig
from repro.runner.record import RunRecord
from repro.sweep import SweepResult, SweepSpec, get_sweep, run_sweep

__all__ = [
    "ExperimentConfig",
    "ResultCache",
    "RunRecord",
    "SweepResult",
    "SweepSpec",
    "TraceResult",
    "bench",
    "clear_memory_cache",
    "execute",
    "get_sweep",
    "load_spec",
    "query",
    "record_for",
    "resolve_config",
    "run_raw",
    "serve",
    "specs",
    "sweep",
    "trace_for",
]


def load_spec(ref: str):
    """Load one YAML spec by discoverable id or file path.

    Returns a :class:`SweepSpec` for sweep specs or a
    :class:`~repro.specs.ExperimentSpecDoc` (``.resolve()`` yields the
    frozen :class:`ExperimentConfig`) for experiment specs. Unknown
    ids and malformed documents raise
    :class:`~repro.specs.SpecError` with a did-you-mean.
    """
    from repro.specs import load_spec as load

    return load(ref)


def specs(kind: Optional[str] = None) -> List[Any]:
    """Listing metadata for every discoverable YAML spec.

    ``kind`` narrows to ``"sweep"`` or ``"experiment"``; each entry is
    a :class:`~repro.specs.SpecInfo` (id, kind, experiment, category,
    description, path). The search path is ``$REPRO_SPECS_DIR``, then
    ``./specs``, then the repository's shipped specs.
    """
    from repro.specs import list_specs

    return list_specs(kind)


def query(
    app: Optional[str] = None,
    backend: Optional[str] = None,
    consistency: Optional[str] = None,
    preset: Optional[str] = None,
    salt: Optional[str] = None,
    all_salts: bool = False,
    metrics: Optional[Sequence[str]] = None,
    lake: Any = None,
) -> List[Dict[str, Any]]:
    """Filtered run rows from the lake (see ``repro query``).

    Each row carries the provenance columns (exp_id, backend,
    consistency, preset, procs, salt, fresh) plus the requested metric
    columns (default ``mp_total, sm_total, sm_over_mp``). Stale-salt
    rows — detected at query time with the same
    :func:`repro.runner.cache.record_is_fresh` decision ``repro cache
    ls`` renders — are excluded unless ``all_salts=True``. ``lake``
    accepts a path or an open :class:`~repro.lake.RunLake` (default:
    the standard lake location).
    """
    from repro.lake import QueryFilters, query_runs

    filters = QueryFilters(
        app=app,
        backend=backend,
        consistency=consistency,
        preset=preset,
        salt=salt,
        all_salts=all_salts,
        **({"metrics": tuple(metrics)} if metrics else {}),
    )
    return query_runs(lake, filters)


def sweep(
    spec: Union[str, SweepSpec],
    axes: Optional[Mapping[str, Sequence[Any]]] = None,
    **kwargs: Any,
) -> SweepResult:
    """Run one sensitivity sweep; accepts a shipped spec name.

    ``axes`` replaces (or appends) axis value lists; remaining keyword
    arguments pass through to :func:`repro.sweep.run_sweep`
    (``jobs``, ``cache``, ``force``, ``resume``, ``progress``, ...).
    """
    if isinstance(spec, str):
        spec = get_sweep(spec)
    return run_sweep(spec, axes=axes, **kwargs)


def bench(
    quick: bool = False,
    apps: bool = True,
    backend: str = "batched",
    **kwargs: Any,
) -> Dict[str, Any]:
    """Run the benchmark suite; returns the JSON-ready document.

    ``backend`` selects the execution backend for the end-to-end app
    rows (``"batched"`` or ``"reference"``); remaining keyword
    arguments pass through to
    :func:`repro.runner.bench.run_benchmarks` (``log``, ...).
    """
    from repro.runner import bench as bench_impl

    return bench_impl.run_benchmarks(
        quick=quick, apps=apps, backend=backend, **kwargs
    )


def serve(
    host: str = "127.0.0.1",
    port: int = 8737,
    jobs: int = 2,
    cache_bytes: Optional[int] = None,
    store: Optional[str] = None,
    max_pending: Optional[int] = 64,
    rate_limit: Optional[float] = None,
    block: bool = True,
    **kwargs: Any,
):
    """Stand up the harness HTTP service; see ``docs/serve.md``.

    ``jobs`` sizes the simulation worker pool; ``cache_bytes`` bounds
    the on-disk result cache (stale-salt-first LRU eviction, ``None``
    = unbounded). ``store`` picks the result-store backend:
    ``"local"`` (default, one server owns the directory) or
    ``"shared"`` (N replicas on one filesystem — cross-replica claims
    guarantee one simulation fleet-wide per cache key). ``max_pending``
    bounds the cold-job backlog (``429`` + ``Retry-After`` beyond it;
    ``None`` = unbounded) and ``rate_limit`` adds a per-client
    token-bucket limit in submissions/second. With ``block=True`` (the
    CLI path) this serves on the calling thread until interrupted;
    with ``block=False`` it returns the started
    :class:`~repro.serve.server.ReproServer` (``port=0`` picks an
    ephemeral port — read ``server.url``). Remaining keyword arguments
    pass through to the server constructor (``cache``,
    ``run_executor``, ``rate_burst``, ``retention_seconds``,
    ``quiet``, ...).
    """
    from repro.serve.server import ReproServer

    server = ReproServer(
        host=host,
        port=port,
        jobs=jobs,
        cache_budget_bytes=cache_bytes,
        store=store,
        max_pending=max_pending,
        rate_limit=rate_limit,
        **kwargs,
    )
    if block:
        server.serve_forever()
    else:
        server.start()
    return server


@dataclass
class TraceResult:
    """One traced run: the Chrome Trace document plus provenance."""

    exp_id: str
    config: ExperimentConfig
    document: Dict[str, Any]
    result: Any
    elapsed_seconds: float
    dropped: int
    errors: List[str] = field(default_factory=list)


def trace_for(
    exp_id: str,
    overrides: Optional[Mapping[str, Any]] = None,
    procs: Optional[Sequence[int]] = None,
    max_events: Optional[int] = None,
) -> TraceResult:
    """Run one experiment under the timeline tracer.

    Always simulates (tracing instruments the run, so there is nothing
    to reuse from the result cache — callers that want cached-trace
    reuse layer it on top, as the CLI does). ``procs`` restricts the
    traced processors; ``max_events`` bounds the event buffer. The
    returned document passed Chrome Trace schema validation unless
    ``errors`` is non-empty.
    """
    import time

    from repro import trace
    from repro.core.experiments import get_experiment
    from repro.trace.chrome import to_chrome, validate_chrome_trace

    spec = get_experiment(exp_id)
    config = resolve_config(exp_id, overrides)
    tracer = trace.Tracer(procs=procs, max_events=max_events)
    trace.install(tracer)
    start = time.perf_counter()
    try:
        result = spec.runner(config)
    finally:
        trace.uninstall()
    elapsed = time.perf_counter() - start
    document = to_chrome(tracer, meta={"experiment": exp_id})
    return TraceResult(
        exp_id=exp_id,
        config=config,
        document=document,
        result=result,
        elapsed_seconds=elapsed,
        dropped=tracer.dropped,
        errors=validate_chrome_trace(document),
    )
