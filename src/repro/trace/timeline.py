"""Paper-style ASCII timeline rendered from a Chrome trace document.

Works off the exported JSON (not the live tracer), so a stored trace
re-renders without re-simulating: ``repro trace`` serves repeat
requests from the trace file attached to the experiment's cached
:class:`~repro.runner.record.RunRecord`.

Each processor is one lane; simulated time is bucketed into columns and
each column shows the category that consumed the most cycles in that
bucket (``.`` when the bucket is mostly idle/untraced). A per-category
totals table follows — those sums equal the aggregate ``ProcStats``
tables cycle-for-cycle, which is the tracer's core invariant.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Tuple

from repro.stats.report import human_quantity
from repro.trace.tracer import TID_NET

#: Preferred legend characters for the paper's recurring categories.
_PREFERRED = {
    "Computation": "C",
    "Local Misses": "m",
    "Lib Comp": "l",
    "Lib Misses": "i",
    "Network Access": "N",
    "Barriers": "B",
    "Private Misses": "p",
    "Shared Misses": "S",
    "Write Faults": "w",
    "TLB Misses": "t",
    "Sync Comp": "y",
    "Sync Miss": "Y",
    "Locks": "L",
    "Reductions": "R",
    "Start-up Wait": "U",
}

_FALLBACK = "abcdefghjknoqrsuvxz*#@%&+=~^"


def _legend_for(categories: List[str]) -> Dict[str, str]:
    """Stable category -> single-char mapping, collision-free."""
    legend: Dict[str, str] = {}
    used = set()
    for category in categories:
        char = _PREFERRED.get(category)
        if char is None or char in used:
            char = next(
                (c for c in category if c.isalnum() and c not in used), None
            ) or next(c for c in _FALLBACK if c not in used)
        legend[category] = char
        used.add(char)
    return legend


def _machine_intervals(doc: Dict[str, Any]) -> Dict[int, List[Tuple[int, int, str, int, int]]]:
    """pid-of-machine -> [(tid, pid-echo, category, start, dur)] cycle slices."""
    per_machine: Dict[int, List[Tuple[int, int, str, int, int]]] = defaultdict(list)
    for event in doc.get("traceEvents", []):
        if event.get("ph") == "X" and event.get("cat") == "cycles":
            tid = event["tid"]
            if tid < TID_NET:  # processor cycle tracks only
                per_machine[event["pid"]].append(
                    (tid, tid, event["name"], int(event["ts"]), int(event["dur"]))
                )
    return per_machine


def render_timeline(doc: Dict[str, Any], width: int = 72) -> str:
    """Render every machine in the trace document as ASCII lanes."""
    other = doc.get("otherData", {})
    machines = other.get("machines", [])
    per_machine = _machine_intervals(doc)
    lines: List[str] = []

    for mi in sorted(per_machine):
        meta = machines[mi] if mi < len(machines) else {}
        label = meta.get("label", f"machine {mi}")
        kind = meta.get("kind", "?")
        intervals = per_machine[mi]
        t_end = meta.get("elapsed_cycles") or max(
            (start + dur for _t, _p, _c, start, dur in intervals), default=0
        )
        if t_end <= 0:
            continue

        totals: Dict[str, int] = defaultdict(int)
        per_pid: Dict[int, List[Tuple[str, int, int]]] = defaultdict(list)
        for _tid, pid, category, start, dur in intervals:
            totals[category] += dur
            per_pid[pid].append((category, start, dur))
        categories = sorted(totals, key=totals.get, reverse=True)
        legend = _legend_for(categories)
        scale = t_end / width

        title = (
            f"{kind} machine [{label}] — {meta.get('procs', len(per_pid))} procs, "
            f"{human_quantity(t_end)} cycles, 1 col = {human_quantity(scale)} cycles"
        )
        lines.append(title)
        lines.append("-" * max(44, len(title)))
        lines.append(
            "legend: "
            + "  ".join(f"{legend[c]}={c}" for c in categories)
            + "  .=idle"
        )
        for pid in sorted(per_pid):
            buckets: List[Dict[str, float]] = [defaultdict(float) for _ in range(width)]
            for category, start, dur in per_pid[pid]:
                if dur <= 0:
                    continue
                first = min(width - 1, int(start / scale))
                last = min(width - 1, int((start + dur - 1) / scale))
                for col in range(first, last + 1):
                    lo = max(start, col * scale)
                    hi = min(start + dur, (col + 1) * scale)
                    if hi > lo:
                        buckets[col][category] += hi - lo
            lane = "".join(
                legend[max(bucket, key=bucket.get)]
                if bucket and max(bucket.values()) >= 0.5 * scale
                else ("." if not bucket else legend[max(bucket, key=bucket.get)].lower())
                for bucket in buckets
            )
            lines.append(f"  p{pid:<3}|{lane}|")

        grand = sum(totals.values())
        lines.append("per-category cycles (all traced procs):")
        for category in categories:
            share = 100.0 * totals[category] / grand if grand else 0.0
            lines.append(
                f"  {category:<18}{human_quantity(totals[category]):>12}  {share:5.1f}%"
            )
        lines.append(f"  {'Total':<18}{human_quantity(grand):>12}  100.0%")
        lines.append("")

    dropped = other.get("dropped_events", 0)
    if dropped:
        lines.append(
            f"note: trace truncated — {dropped} records over the event cap were dropped"
        )
    if not lines:
        return "(no cycle intervals in trace)"
    return "\n".join(lines).rstrip()
