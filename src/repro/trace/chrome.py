"""Chrome Trace Event export and schema validation.

:func:`to_chrome` turns a :class:`~repro.trace.tracer.Tracer` into the
Chrome Trace Event *JSON object format* — ``{"traceEvents": [...]}`` —
loadable in Perfetto or ``chrome://tracing``. Simulation cycles are
written as microsecond timestamps (1 cycle = 1 us), which makes a
33 MHz target second read as 33.3 "seconds" in the viewer; the mapping
is recorded in ``otherData.time_unit``.

Event mapping:

* interval records -> ``X`` (complete) events on the processor's cycle
  track (``tid = pid``), named by category, phase in ``args``;
* phase / attribution-context push-pop -> ``B``/``E`` duration events on
  the per-processor phase and context tracks;
* message and protocol flows -> an ``X`` endpoint slice at each end
  plus an ``s``/``f`` flow-arrow pair sharing an id;
* directory arrivals -> ``i`` (instant) events on the directory track;
* counters -> ``C`` events (one series per processor in ``args``);
* track naming -> ``M`` metadata events.

:func:`validate_chrome_trace` is the schema check CI runs against
emitted traces: structural requirements per phase, non-negative
durations, balanced ``B``/``E`` nesting per track, and ``s``/``f``
flow pairing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.trace.tracer import TID_CTX, TID_DIR, TID_NET, TID_PHASE, Tracer

SCHEMA = "repro-trace/1"

#: Chrome Trace Event phases this exporter emits (and the validator allows).
ALLOWED_PHASES = frozenset({"X", "B", "E", "s", "f", "i", "I", "M", "C"})


def to_chrome(tracer: Tracer, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Export every record in ``tracer`` as a Chrome Trace JSON object."""
    events: List[Dict[str, Any]] = []

    for mi, machine in enumerate(tracer.machines):
        kind = machine["kind"]
        events.append(
            {
                "ph": "M", "name": "process_name", "pid": mi, "tid": 0,
                "args": {"name": f"{kind} machine [{machine['label']}]"},
            }
        )
        for pid in range(machine["nprocs"]):
            if not tracer._traced_pid(pid):
                continue
            for tid, track in (
                (pid, f"p{pid} cycles"),
                (TID_NET + pid, f"p{pid} network"),
                (TID_PHASE + pid, f"p{pid} phases"),
                (TID_CTX + pid, f"p{pid} contexts"),
            ):
                events.append(
                    {
                        "ph": "M", "name": "thread_name", "pid": mi, "tid": tid,
                        "args": {"name": track},
                    }
                )
            if kind == "sm":
                events.append(
                    {
                        "ph": "M", "name": "thread_name", "pid": mi,
                        "tid": TID_DIR + pid, "args": {"name": f"directory {pid}"},
                    }
                )

    for mi, pid, label, phase, start, dur in tracer.intervals:
        events.append(
            {
                "ph": "X", "pid": mi, "tid": pid, "ts": start, "dur": dur,
                "name": label, "cat": "cycles", "args": {"phase": phase},
            }
        )

    for mi, tid, name, ph, ts in tracer.marks:
        cat = "phase" if tid < TID_CTX else "context"
        events.append(
            {"ph": ph, "pid": mi, "tid": tid, "ts": ts, "name": name, "cat": cat}
        )

    for flow_id, (mi, name, src_tid, dst_tid, t0, t1, args) in enumerate(tracer.flows):
        events.append(
            {
                "ph": "X", "pid": mi, "tid": src_tid, "ts": t0, "dur": 1,
                "name": f"send {name}", "cat": "flow", "args": args,
            }
        )
        events.append(
            {
                "ph": "s", "pid": mi, "tid": src_tid, "ts": t0,
                "id": str(flow_id), "name": name, "cat": "flow",
            }
        )
        events.append(
            {
                "ph": "X", "pid": mi, "tid": dst_tid, "ts": t1, "dur": 1,
                "name": f"recv {name}", "cat": "flow", "args": args,
            }
        )
        events.append(
            {
                "ph": "f", "bp": "e", "pid": mi, "tid": dst_tid, "ts": t1,
                "id": str(flow_id), "name": name, "cat": "flow",
            }
        )

    for mi, tid, ts, name, args in tracer.instants:
        events.append(
            {
                "ph": "i", "s": "t", "pid": mi, "tid": tid, "ts": ts,
                "name": name, "cat": "directory", "args": args,
            }
        )

    for mi, ts, name, series, value in tracer.counters:
        events.append(
            {
                "ph": "C", "pid": mi, "tid": 0, "ts": ts, "name": name,
                "cat": "counter", "args": {series: value},
            }
        )

    other: Dict[str, Any] = {
        "schema": SCHEMA,
        "time_unit": "1 trace us = 1 simulated cycle",
        "dropped_events": tracer.dropped,
        "machines": [
            {
                "label": m["label"],
                "kind": m["kind"],
                "procs": m["nprocs"],
                "elapsed_cycles": m["engine"].now,
                "events_executed": m["engine"].events_executed,
            }
            for m in tracer.machines
        ],
    }
    if meta:
        other.update(meta)
    return {"traceEvents": events, "displayTimeUnit": "ms", "otherData": other}


# ---------------------------------------------------------------------------
# Validation (the CI schema check).
# ---------------------------------------------------------------------------

_REQUIRED: Dict[str, tuple] = {
    "X": ("name", "pid", "tid", "ts", "dur"),
    "B": ("name", "pid", "tid", "ts"),
    "E": ("pid", "tid", "ts"),
    "s": ("id", "name", "pid", "tid", "ts"),
    "f": ("id", "name", "pid", "tid", "ts"),
    "i": ("name", "ts"),
    "I": ("name", "ts"),
    "M": ("name", "args"),
    "C": ("name", "ts", "args"),
}


def validate_chrome_trace(doc: Any, max_errors: int = 20) -> List[str]:
    """Structural check of a Chrome Trace JSON object; [] when valid."""
    errors: List[str] = []

    def err(message: str) -> bool:
        errors.append(message)
        return len(errors) >= max_errors

    if not isinstance(doc, dict):
        return ["top level must be a JSON object with a traceEvents array"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array traceEvents"]

    flow_starts: Dict[Any, int] = {}
    flow_ends: Dict[Any, int] = {}
    stacks: Dict[tuple, List[str]] = {}

    for index, event in enumerate(events):
        if not isinstance(event, dict):
            if err(f"event {index}: not an object"):
                return errors
            continue
        ph = event.get("ph")
        if ph not in ALLOWED_PHASES:
            if err(f"event {index}: unknown phase {ph!r}"):
                return errors
            continue
        missing = [key for key in _REQUIRED[ph] if key not in event]
        if missing:
            if err(f"event {index} (ph={ph}): missing {missing}"):
                return errors
            continue
        for key in ("ts", "dur"):
            if key in event and not isinstance(event[key], (int, float)):
                if err(f"event {index} (ph={ph}): non-numeric {key}"):
                    return errors
        if ph == "X" and event.get("dur", 0) < 0:
            if err(f"event {index}: negative dur {event['dur']}"):
                return errors
        if ph == "s":
            flow_starts[event["id"]] = flow_starts.get(event["id"], 0) + 1
        elif ph == "f":
            flow_ends[event["id"]] = flow_ends.get(event["id"], 0) + 1
        elif ph == "B":
            stacks.setdefault((event["pid"], event["tid"]), []).append(event["name"])
        elif ph == "E":
            stack = stacks.setdefault((event["pid"], event["tid"]), [])
            if not stack:
                if err(
                    f"event {index}: E without matching B on "
                    f"pid={event['pid']} tid={event['tid']}"
                ):
                    return errors
            else:
                opened = stack.pop()
                name = event.get("name")
                if name is not None and name != opened:
                    if err(
                        f"event {index}: E named {name!r} closes B named {opened!r}"
                    ):
                        return errors

    for flow_id in flow_ends:
        if flow_id not in flow_starts:
            if err(f"flow finish id {flow_id!r} has no flow start"):
                return errors
    for (pid, tid), stack in stacks.items():
        if stack:
            if err(f"unclosed B events on pid={pid} tid={tid}: {stack}"):
                return errors
    return errors
