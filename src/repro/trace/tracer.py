"""The tracer: per-instance instrumentation of machines under trace.

Nothing here runs unless a tracer is installed. Machines call
``active().attach_mp(self)`` / ``attach_sm(self)`` at the end of their
constructors; the default :data:`NULL` tracer makes those calls no-ops.
A real :class:`Tracer` instruments the *instances* it is handed —
``ProcStats`` charge/count/context/phase methods, the machine's
message-delivery paths, the directory controllers' inboxes, and the
engine's dispatch hook — by rebinding bound methods, so untraced
machines (and the class-level code paths) are untouched.

Interval anchoring: a ``charge(category, cycles)`` arriving at engine
time ``now`` is *prospective* (charged before the stall is simulated,
e.g. a local-miss stall) when ``now`` equals the processor's timeline
cursor, and *retrospective* (charged after waiting, e.g. barrier wait
or a shared-memory transaction measuring ``now - start``) when the
cycles exactly fill the gap back to the cursor. Both anchor the
interval on the cycles they describe, so per-category interval sums
equal the aggregate ``ProcStats`` totals cycle-for-cycle.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

#: Chrome-trace thread-id layout, per simulated processor ``pid``:
#: cycles on ``pid``, message/flow endpoints on ``TID_NET + pid``,
#: phase spans on ``TID_PHASE + pid``, attribution contexts on
#: ``TID_CTX + pid``, directory controllers on ``TID_DIR + node``.
TID_NET = 1000
TID_PHASE = 2000
TID_CTX = 3000
TID_DIR = 4000

#: Default cap on stored capped records (intervals, flows, instants,
#: counter samples). Phase/context marks are exempt so begin/end pairs
#: always balance. Overflow increments ``Tracer.dropped``.
DEFAULT_MAX_EVENTS = 250_000

#: Engine dispatch-hook sampling period for the pending-event counter.
DEFAULT_COUNTER_INTERVAL = 1024


class NullTracer:
    """Module-level null object: every hook is a free no-op."""

    __slots__ = ()
    enabled = False

    def attach_mp(self, machine: Any) -> None:
        pass

    def attach_sm(self, machine: Any) -> None:
        pass


NULL = NullTracer()

_active: Any = NULL


def active() -> Any:
    """The currently installed tracer (:data:`NULL` when tracing is off)."""
    return _active


def install(tracer: "Tracer") -> "Tracer":
    """Make ``tracer`` the active tracer; machines built from now on attach."""
    global _active
    if _active is not NULL:
        raise RuntimeError("a tracer is already installed; uninstall() it first")
    _active = tracer
    return tracer


def uninstall() -> None:
    """Deactivate tracing; machines built afterwards are untraced."""
    global _active
    _active = NULL


@contextmanager
def tracing(tracer: Optional["Tracer"] = None) -> Iterator["Tracer"]:
    """``with tracing() as t:`` — install for the block, always uninstall."""
    tracer = tracer if tracer is not None else Tracer()
    install(tracer)
    try:
        yield tracer
    finally:
        uninstall()


class Tracer:
    """Collects timeline records from every machine built while installed.

    Args:
        procs: restrict per-processor records to these pids (all when None).
        max_events: cap on stored capped records (see DEFAULT_MAX_EVENTS);
            ``None`` means the default, not unlimited.
        counter_interval: engine dispatches between pending-depth samples.
    """

    enabled = True

    def __init__(
        self,
        procs: Optional[Iterable[int]] = None,
        max_events: Optional[int] = None,
        counter_interval: int = DEFAULT_COUNTER_INTERVAL,
    ) -> None:
        self.procs = frozenset(procs) if procs is not None else None
        self.max_events = DEFAULT_MAX_EVENTS if max_events is None else int(max_events)
        self.counter_interval = max(1, int(counter_interval))
        #: (machine-index, pid, category-label, phase, start, duration)
        self.intervals: List[Tuple[int, int, str, str, int, int]] = []
        #: (machine-index, name, src-tid, dst-tid, t-send, t-recv, args)
        self.flows: List[Tuple[int, str, int, int, int, int, Dict[str, Any]]] = []
        #: (machine-index, tid, ts, name, args)
        self.instants: List[Tuple[int, int, int, str, Dict[str, Any]]] = []
        #: (machine-index, ts, counter-name, series-name, value)
        self.counters: List[Tuple[int, int, str, str, int]] = []
        #: (machine-index, tid, name, "B"|"E", ts) — exempt from the cap.
        self.marks: List[Tuple[int, int, str, str, int]] = []
        #: One dict per attached machine: label, kind, nprocs, engine.
        self.machines: List[Dict[str, Any]] = []
        self.dropped = 0
        self._stored = 0
        self._cursors: Dict[Tuple[int, int], int] = {}
        self._cum: Dict[Tuple[int, int, str], int] = {}

    # -- attach points (called by machine constructors) ---------------------

    def attach_mp(self, machine: Any) -> None:
        """Instrument a freshly built message-passing machine."""
        mi = self._add_machine(machine, "mp")
        for node in machine.nodes:
            self._instrument_stats(mi, node.stats, machine.engine)
        self._wrap_mp_delivery(mi, machine)
        self._hook_engine(mi, machine.engine)

    def attach_sm(self, machine: Any) -> None:
        """Instrument a freshly built shared-memory machine."""
        mi = self._add_machine(machine, "sm")
        for node in machine.nodes:
            self._instrument_stats(mi, node.stats, machine.engine)
        self._wrap_sm_protocol(mi, machine)
        self._hook_engine(mi, machine.engine)

    def _add_machine(self, machine: Any, kind: str) -> int:
        mi = len(self.machines)
        self.machines.append(
            {
                "label": f"{kind}{mi}",
                "kind": kind,
                "nprocs": machine.nprocs,
                "engine": machine.engine,
            }
        )
        return mi

    # -- record storage -----------------------------------------------------

    def _admit(self) -> bool:
        """One capped record wants in; False (and counted) past the budget."""
        if self._stored >= self.max_events:
            self.dropped += 1
            return False
        self._stored += 1
        return True

    def _traced_pid(self, pid: int) -> bool:
        return self.procs is None or pid in self.procs

    def _interval(self, mi: int, pid: int, label: str, phase: str, now: int, cycles: int) -> None:
        key = (mi, pid)
        cursor = self._cursors.get(key, 0)
        start = now
        if now > cursor and now - cycles >= cursor:
            start = now - cycles  # retrospective charge: it fills the wait
        end = start + cycles
        if end > cursor:
            self._cursors[key] = end
        if self._admit():
            self.intervals.append((mi, pid, label, phase, start, cycles))

    def _flow(self, mi: int, name: str, src_tid: int, dst_tid: int, t0: int, t1: int, args: Dict[str, Any]) -> None:
        if self._admit():
            self.flows.append((mi, name, src_tid, dst_tid, t0, t1, args))

    def _instant(self, mi: int, tid: int, ts: int, name: str, args: Dict[str, Any]) -> None:
        if self._admit():
            self.instants.append((mi, tid, ts, name, args))

    def _counter(self, mi: int, ts: int, name: str, series: str, value: int) -> None:
        if self._admit():
            self.counters.append((mi, ts, name, series, value))

    def _mark(self, mi: int, tid: int, name: str, ph: str, ts: int) -> None:
        self.marks.append((mi, tid, name, ph, ts))

    # -- ProcStats instrumentation -----------------------------------------

    def _instrument_stats(self, mi: int, stats: Any, engine: Any) -> None:
        pid = stats.pid
        if not self._traced_pid(pid):
            return
        tracer = self
        orig_charge = stats.charge
        orig_charge_raw = stats.charge_raw
        orig_count = stats.count
        orig_push_context = stats.push_context
        orig_pop_context = stats.pop_context
        orig_push_phase = stats.push_phase
        orig_pop_phase = stats.pop_phase

        def charge(category: Any, cycles: int) -> None:
            orig_charge(category, cycles)
            if cycles > 0:
                tracer._interval(
                    mi, pid, _label(stats._resolve(category)),
                    stats.current_phase or "", engine.now, int(cycles),
                )

        def charge_raw(category: Any, cycles: int) -> None:
            orig_charge_raw(category, cycles)
            if cycles > 0:
                tracer._interval(
                    mi, pid, _label(category),
                    stats.current_phase or "", engine.now, int(cycles),
                )

        def count(key: str, amount: int = 1) -> None:
            orig_count(key, amount)
            cum_key = (mi, pid, key)
            value = tracer._cum.get(cum_key, 0) + amount
            tracer._cum[cum_key] = value
            tracer._counter(mi, engine.now, key, f"p{pid}", value)

        def push_context(name: str) -> None:
            orig_push_context(name)
            tracer._mark(mi, TID_CTX + pid, name, "B", engine.now)

        def pop_context(expected: Optional[str] = None) -> None:
            name = stats._context_stack[-1] if stats._context_stack else "?"
            orig_pop_context(expected)
            tracer._mark(mi, TID_CTX + pid, name, "E", engine.now)

        def push_phase(name: str) -> None:
            orig_push_phase(name)
            tracer._mark(mi, TID_PHASE + pid, name, "B", engine.now)

        def pop_phase(expected: Optional[str] = None) -> None:
            name = stats._phase_stack[-1] if stats._phase_stack else "?"
            orig_pop_phase(expected)
            tracer._mark(mi, TID_PHASE + pid, name, "E", engine.now)

        stats.charge = charge
        stats.charge_raw = charge_raw
        stats.count = count
        stats.push_context = push_context
        stats.pop_context = pop_context
        stats.push_phase = push_phase
        stats.pop_phase = pop_phase

    # -- machine-level instrumentation -------------------------------------

    def _wrap_mp_delivery(self, mi: int, machine: Any) -> None:
        """Record each packet train as a send→receive flow."""
        tracer = self
        engine = machine.engine
        latency = machine.params.common.network_latency
        orig_deliver = machine.deliver

        def deliver(packet: Any) -> None:
            orig_deliver(packet)
            if tracer._traced_pid(packet.src) or tracer._traced_pid(packet.dest):
                now = engine.now
                tracer._flow(
                    mi, f"msg {packet.tag}",
                    TID_NET + packet.src, TID_NET + packet.dest,
                    now, now + latency,
                    {
                        "src": packet.src,
                        "dest": packet.dest,
                        "packets": packet.count,
                        "data_bytes": packet.data_bytes,
                        "control_bytes": packet.control_bytes,
                    },
                )

        machine.deliver = deliver

    def _wrap_sm_protocol(self, mi: int, machine: Any) -> None:
        """Record protocol messages as flows and directory arrivals as instants."""
        tracer = self
        engine = machine.engine
        orig_to_dir = machine.send_to_directory_from
        orig_to_cc = machine.send_to_cache_ctrl

        def send_to_directory_from(src: int, home: int, msg: Any) -> None:
            orig_to_dir(src, home, msg)
            if tracer._traced_pid(src) or tracer._traced_pid(home):
                now = engine.now
                tracer._flow(
                    mi, msg.type.name,
                    TID_NET + src, TID_DIR + home,
                    now, now + machine.latency(src, home),
                    {"block": msg.block, "src": src, "requester": msg.requester},
                )

        def send_to_cache_ctrl(src: int, dest: int, msg: Any) -> None:
            orig_to_cc(src, dest, msg)
            if tracer._traced_pid(src) or tracer._traced_pid(dest):
                now = engine.now
                tracer._flow(
                    mi, msg.type.name,
                    TID_DIR + src, TID_NET + dest,
                    now, now + machine.latency(src, dest),
                    {"block": msg.block, "src": src, "requester": msg.requester},
                )

        machine.send_to_directory_from = send_to_directory_from
        machine.send_to_cache_ctrl = send_to_cache_ctrl

        for directory in machine.directories:
            self._wrap_directory(mi, directory, engine)

    def _wrap_directory(self, mi: int, directory: Any, engine: Any) -> None:
        tracer = self
        node = directory.node_id
        if not self._traced_pid(node):
            return
        orig_post = directory.post

        def post(msg: Any) -> None:
            orig_post(msg)
            tracer._instant(
                mi, TID_DIR + node, engine.now, msg.type.name,
                {"block": msg.block, "src": msg.src, "requester": msg.requester},
            )

        directory.post = post

    def _hook_engine(self, mi: int, engine: Any) -> None:
        """Sample the engine's pending-event depth every N dispatches.

        Setting ``dispatch_hook`` routes ``run()`` through the general
        loop — slower, but cycle-for-cycle identical to the fast loop.
        """
        tracer = self
        interval = self.counter_interval
        state = {"n": 0}

        def hook(now: int) -> None:
            state["n"] += 1
            if state["n"] % interval == 0:
                tracer._counter(mi, now, "engine.pending", "pending", engine.pending())

        engine.dispatch_hook = hook

    # -- summaries ----------------------------------------------------------

    def interval_totals(self, mi: int) -> Dict[int, Dict[str, int]]:
        """Per-processor per-category cycle sums of the recorded intervals."""
        totals: Dict[int, Dict[str, int]] = {}
        for rec_mi, pid, label, _phase, _start, dur in self.intervals:
            if rec_mi == mi:
                totals.setdefault(pid, {}).setdefault(label, 0)
                totals[pid][label] += dur
        return totals

    def event_count(self) -> int:
        """Total records stored (capped records plus begin/end marks)."""
        return self._stored + len(self.marks)


def _label(category: Any) -> str:
    """Human-readable category name (enum value, else str)."""
    return getattr(category, "value", None) or str(category)
