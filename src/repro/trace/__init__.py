"""Opt-in timeline tracing: where every cycle went, and when.

The aggregate tables answer *how much* time each processor spent in
each category; this package answers *when*. A :class:`Tracer` attaches
to every machine built while it is installed and records

* per-processor **interval records** — (category, phase, start-cycle,
  duration), one per ``ProcStats`` charge, anchored so that
  retrospective charges (barrier waits, shared-miss transactions)
  cover the cycles they actually waited through;
* **flow events** — message send→receive on the message-passing
  machine, and requester→directory→cache-controller protocol messages
  on the shared-memory machine;
* **directory-protocol transitions** — every message arriving at a
  directory controller, as instant events;
* **counter samples** — named event counters (bytes, misses,
  messages) and the engine's pending-event depth.

Traces export to Chrome Trace Event JSON (:mod:`repro.trace.chrome`,
loadable in Perfetto or ``chrome://tracing``) and to a paper-style
ASCII timeline (:mod:`repro.trace.timeline`); ``python -m repro trace``
wires both to the experiment registry.

Zero overhead when disabled
---------------------------

The module-level active tracer defaults to :data:`NULL`, a null object
whose hooks are no-ops. Machines call ``trace.active().attach_mp(self)``
(one call per *machine construction*, never per event), and all
per-event instrumentation is installed by rebinding bound methods on
the specific ``ProcStats``/machine *instances* being traced. With
tracing off, no hot-path code changes: ``Engine.run`` keeps its
allocation-free fast loop (the dispatch hook is only consulted once per
``run()`` call), and ``ProcStats.charge`` is the same function the seed
shipped. Golden cycle and event counts are bit-identical either way.
"""

from repro.trace.tracer import NULL, NullTracer, Tracer, active, install, tracing, uninstall

__all__ = [
    "NULL",
    "NullTracer",
    "Tracer",
    "active",
    "install",
    "tracing",
    "uninstall",
]
