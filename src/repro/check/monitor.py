"""The checker: opt-in runtime invariant monitors for both machines.

Nothing here runs unless a checker is installed. Machines call
``active().attach_sm(self)`` / ``attach_mp(self)`` at the end of their
constructors; the default :data:`NULL` checker makes those calls no-ops.
A real :class:`Checker` instruments the *instances* it is handed by
rebinding bound methods (the same technique :mod:`repro.trace` uses),
so unchecked machines — and the class-level hot paths — are untouched
and golden cycle counts stay bit-identical with checking off.

Checking is pure observation: no engine events are scheduled, no RNG
streams are drawn, no simulated cycles are charged. A checked run is
therefore cycle-for-cycle identical to an unchecked one; a violation
raises :class:`~repro.check.errors.CheckError` at the exact engine
instant the invariant broke.

Shared-memory invariants
------------------------

* **SWMR** (single-writer / multiple-reader): at every instant, a
  shared directory-protocol block is cached EXCLUSIVE by at most one
  node, and never EXCLUSIVE alongside any other copy. Checked at every
  cache insert / state change / invalidation. Blocks of ``"update"``
  protocol regions are exempt (the Section 5.3.4 user-level protocol
  deliberately refreshes consumer copies in place).
* **Directory/cache agreement**: at quiescence (end of run), every
  cached copy is accounted for by its home directory — an EXCLUSIVE
  line matches ``EXCLUSIVE@owner``, SHARED holders are a subset of the
  entry's sharer set (the directory may over-approximate: clean
  evictions are silent), and no entry is left busy or with parked
  requests.
* **Data-value invariant**: a load returns the value written by the
  most recent store to that location, judged against a flat
  shadow-memory oracle. The oracle is updated only at the completion
  instants of modeled stores (``write`` / ``write_scatter`` / atomics),
  so any value that appears via a path the protocol did not serialize
  shows up as a mismatch on the next load.

Relaxed machines (``consistency="tso"|"pc"``) adapt the data-value
invariant to per-location coherence: the shadow is advanced at each
store-buffer *commit* instant (the wrapped
:meth:`~repro.sm.relaxed.StoreBufferDrain.commit`), every commit must
respect per-location program order (CoWW / coherence order,
``checks["coherence-order"]``), a load must return the committed shadow
with the loader's *own* pending stores forwarded over it (exactly the
TSO/PC load value), and quiescence additionally requires every store
buffer to have drained dry (``checks["sb-quiescent"]``). SWMR and
directory agreement are unchanged — drain commits go through the real
protocol.

Message-passing invariants
--------------------------

* **Per-channel FIFO**: packets from one source, with one tag, bound
  for one destination queue (polled FIFO or interrupt queue) are
  dequeued in exactly the order the network delivered them.
* **Packet conservation**: every 20-byte packet injected is received
  at most once (receipt of an unknown or already-received packet trips
  immediately) and is never lost — at end of run every unreceived
  packet must still be sitting in some node's incoming FIFO or
  interrupt queue. Each train's data + control bytes account for
  exactly ``count`` packets.
* **Quiescence**: residue left at end of run is accounted for, not
  forbidden — real programs legitimately finish with last-round
  flow-control credits still queued (EM3D does) and with push-style
  channel bytes delivered but never waited on (ALCP-MP's star updates
  land in the window with no consumer). Both are counted, in
  ``checks["residual-packets"]`` and ``checks["residual-channel-bytes"]``;
  ``strict_quiescence=True`` turns any residue into a violation (the
  stress programs drain everything they send).
"""

from __future__ import annotations

from collections import Counter, deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.arch.cache import LineState
from repro.check.errors import CheckError
from repro.memory.dataspace import Segment
from repro.sm.protocol import DirState


def _mismatch_mask(got: np.ndarray, expect: np.ndarray) -> np.ndarray:
    """Elementwise inequality treating NaN == NaN as a match."""
    neq = got != expect
    if neq.any() and got.dtype.kind == "f":
        neq &= ~(np.isnan(got) & np.isnan(expect))
    return neq


class NullChecker:
    """Module-level null object: every hook is a free no-op."""

    __slots__ = ()
    enabled = False

    def attach_mp(self, machine: Any) -> None:
        pass

    def attach_sm(self, machine: Any) -> None:
        pass


NULL = NullChecker()

_active: Any = NULL


def active() -> Any:
    """The currently installed checker (:data:`NULL` when checking is off)."""
    return _active


def install(checker: "Checker") -> "Checker":
    """Make ``checker`` active; machines built from now on attach."""
    global _active
    if _active is not NULL:
        raise RuntimeError("a checker is already installed; uninstall() it first")
    _active = checker
    return checker


def uninstall() -> None:
    """Deactivate checking; machines built afterwards are unchecked."""
    global _active
    _active = NULL


@contextmanager
def checking(checker: Optional["Checker"] = None) -> Iterator["Checker"]:
    """``with checking() as c:`` — install for the block, always uninstall."""
    checker = checker if checker is not None else Checker()
    install(checker)
    try:
        yield checker
    finally:
        uninstall()


class _SmState:
    """Per-attached-SM-machine monitor state."""

    __slots__ = ("machine", "holders", "block_kind", "shadow", "relaxed")

    def __init__(self, machine: Any) -> None:
        self.machine = machine
        #: block -> {pid: LineState} over shared dir-protocol blocks.
        self.holders: Dict[int, Dict[int, LineState]] = {}
        #: block -> "dir" | "update" (memoized region-protocol lookup).
        self.block_kind: Dict[int, str] = {}
        #: region name -> flat oracle copy of the region's memory.
        self.shadow: Dict[str, np.ndarray] = {}
        #: True when the machine runs a non-SC memory model.
        self.relaxed: bool = getattr(machine, "consistency", "sc") != "sc"


class _MpState:
    """Per-attached-MP-machine monitor state."""

    __slots__ = ("machine", "outstanding", "channels", "sent", "received")

    def __init__(self, machine: Any) -> None:
        self.machine = machine
        #: id(packet) -> (src, dest, tag) for every delivered, unreceived train.
        self.outstanding: Dict[int, Tuple[int, int, str]] = {}
        #: (dest, src, tag, queue-class) -> FIFO of expected packet ids.
        self.channels: Dict[Tuple[int, int, str, str], Deque[int]] = {}
        self.sent = 0
        self.received = 0


class Checker:
    """Monitors every machine built while installed.

    Args:
        oracle: maintain the shadow-memory data-value oracle (on by
            default; the dominant memory cost of checking — one flat
            copy per shared region).
        strict_quiescence: fail if any packet is left in a queue at end
            of run (off by default: last-round flow-control messages
            legitimately go undrained in real programs).
    """

    enabled = True

    def __init__(self, oracle: bool = True, strict_quiescence: bool = False) -> None:
        self.oracle = oracle
        self.strict_quiescence = strict_quiescence
        #: Count of individual invariant checks performed, by name.
        self.checks: Counter = Counter()
        self._sm: List[_SmState] = []
        self._mp: List[_MpState] = []

    # -- attach points (called by machine constructors) ---------------------

    def attach_sm(self, machine: Any) -> None:
        """Instrument a freshly built shared-memory machine."""
        st = _SmState(machine)
        self._sm.append(st)
        for node in machine.nodes:
            self._instrument_sm_cache(st, node.pid, node.cache)
        if st.relaxed:
            # Coherence order is enforced on every commit even with the
            # oracle off; the shadow update inside is oracle-gated.
            for ctx in machine.contexts:
                self._instrument_sm_drain(st, ctx)
        if self.oracle:
            for ctx in machine.contexts:
                self._instrument_sm_context(st, ctx)
        self._wrap_run(machine, lambda: self.verify_sm_quiescent(st))

    def attach_mp(self, machine: Any) -> None:
        """Instrument a freshly built message-passing machine."""
        st = _MpState(machine)
        self._mp.append(st)
        self._instrument_mp_network(st, machine)
        self._wrap_run(machine, lambda: self.verify_mp_quiescent(st))

    def _wrap_run(self, machine: Any, verify) -> None:
        orig_run = machine.run

        def run(*args: Any, **kwargs: Any) -> Any:
            result = orig_run(*args, **kwargs)
            verify()
            return result

        machine.run = run

    # -- shared-memory: block classification --------------------------------

    def _block_kind(self, st: _SmState, block: int) -> str:
        """Protocol of the region covering ``block`` ("dir" or "update")."""
        kind = st.block_kind.get(block)
        if kind is None:
            kind = "dir"
            for region in st.machine.space.regions.values():
                base = region.base - (region.base % region.block_bytes)
                if base <= block < region.end:
                    kind = region.protocol
                    break
            st.block_kind[block] = kind
        return kind

    def _tracked(self, st: _SmState, block: int) -> bool:
        return st.machine.is_shared_block(block) and self._block_kind(st, block) == "dir"

    # -- shared-memory: SWMR at every cache mutation -------------------------

    def _instrument_sm_cache(self, st: _SmState, pid: int, cache: Any) -> None:
        checker = self
        orig_insert = cache.insert
        orig_set_state = cache.set_state
        orig_invalidate = cache.invalidate

        def insert(block_addr: int, state: LineState):
            victim = orig_insert(block_addr, state)
            if victim is not None:
                checker._drop_holder(st, pid, victim[0])
            checker._record_holder(st, pid, block_addr, state)
            return victim

        def set_state(block_addr: int, state: LineState) -> None:
            orig_set_state(block_addr, state)
            checker._record_holder(st, pid, block_addr, state)

        def invalidate(block_addr: int) -> LineState:
            prior = orig_invalidate(block_addr)
            checker._drop_holder(st, pid, block_addr)
            return prior

        cache.insert = insert
        cache.set_state = set_state
        cache.invalidate = invalidate

    def _record_holder(self, st: _SmState, pid: int, block: int, state: LineState) -> None:
        if not self._tracked(st, block):
            return
        holders = st.holders.get(block)
        if holders is None:
            holders = st.holders[block] = {}
        holders[pid] = state
        self.checks["swmr"] += 1
        if state is LineState.EXCLUSIVE and len(holders) > 1:
            others = {p: s.name for p, s in holders.items() if p != pid}
            raise CheckError(
                "swmr",
                f"node {pid} took EXCLUSIVE while copies exist at {others}",
                node=pid,
                block=block,
                state=self._dir_state(st, block),
            )
        if state is not LineState.EXCLUSIVE:
            writers = [p for p, s in holders.items() if s is LineState.EXCLUSIVE]
            if writers:
                raise CheckError(
                    "swmr",
                    f"node {pid} holds a {state.name} copy while node "
                    f"{writers[0]} holds it EXCLUSIVE",
                    node=pid,
                    block=block,
                    state=self._dir_state(st, block),
                )

    def _drop_holder(self, st: _SmState, pid: int, block: int) -> None:
        holders = st.holders.get(block)
        if holders is not None:
            holders.pop(pid, None)
            if not holders:
                del st.holders[block]

    def _dir_state(self, st: _SmState, block: int) -> Optional[str]:
        """Home-directory entry description for error messages."""
        try:
            home = st.machine.home_of(block)
        except KeyError:
            return None
        entry = st.machine.directories[home].entries.get(block)
        return entry.describe() if entry is not None else "absent"

    # -- shared-memory: data-value oracle ------------------------------------

    def _shadow(self, st: _SmState, region: Any) -> np.ndarray:
        shadow = st.shadow.get(region.name)
        if shadow is None:
            shadow = st.shadow[region.name] = np.array(
                region.np.reshape(-1), copy=True
            )
        return shadow

    def _oracle_region(self, region: Any) -> bool:
        return region.segment is Segment.SHARED and region.protocol == "dir"

    def _check_loaded(
        self,
        st: _SmState,
        pid: int,
        region: Any,
        where: Any,
        values: Any,
        store_buffer: Any = None,
    ) -> None:
        """Compare loaded values against the oracle; ``where`` is a slice
        start or an index array.

        ``store_buffer`` (relaxed machines) is the loading processor's
        own buffer: the expected value is then the *committed* shadow
        with that buffer's pending stores forwarded over it — exactly
        the value a TSO/PC load must return (per-location coherence,
        CoRR included, without demanding a global store order).
        """
        shadow = self._shadow(st, region)
        got = np.asarray(values).reshape(-1)
        if isinstance(where, np.ndarray):
            expect = shadow[where]
        else:
            expect = shadow[where : where + got.size]
        if store_buffer is not None and store_buffer.has_pending_for(region):
            if isinstance(where, np.ndarray):
                expect = store_buffer.apply_pending_gather(
                    region, where, np.array(expect)
                )
            else:
                expect = store_buffer.apply_pending(
                    region, where, where + got.size, np.array(expect)
                )
        self.checks["data-value"] += 1
        bad = np.flatnonzero(_mismatch_mask(got, expect))
        if bad.size:
            i = int(bad[0])
            raise CheckError(
                "data-value",
                f"load from {region.name!r} returned {got[i]!r} where the "
                f"most recent store wrote {expect[i]!r} (element "
                f"{(where[i] if isinstance(where, np.ndarray) else where + i)})",
                node=pid,
                block=region.addr_of(
                    int(where[i]) if isinstance(where, np.ndarray) else where + i
                ),
            )

    def _instrument_sm_context(self, st: _SmState, ctx: Any) -> None:
        checker = self
        pid = ctx.pid
        # Relaxed contexts buffer tracked stores: memory (and hence the
        # shadow) advances at the drain's commit instants — wrapped in
        # _instrument_sm_drain — not at write() completion, and loads
        # are judged with the loader's own pending stores forwarded.
        store_buffer = getattr(ctx, "store_buffer", None) if st.relaxed else None
        orig_read = ctx.read
        orig_read_gather = ctx.read_gather
        orig_write = ctx.write
        orig_write_scatter = ctx.write_scatter
        orig_swap = ctx.atomic_swap
        orig_cas = ctx.atomic_cas

        # Every wrapper snapshots the region's shadow at *operation start*
        # (before the modeled op mutates memory): atomics assign memory
        # mid-operation, so a shadow first materialized afterwards would
        # capture post-op values and mislabel the op's own effect.

        def read(region, start=0, stop=None, **kwargs):
            tracked = checker._oracle_region(region)
            if tracked:
                checker._shadow(st, region)
            values = yield from orig_read(region, start, stop, **kwargs)
            if tracked:
                checker._check_loaded(
                    st, pid, region, start, values, store_buffer=store_buffer
                )
            return values

        def read_gather(region, indices):
            tracked = checker._oracle_region(region)
            if tracked:
                checker._shadow(st, region)
            values = yield from orig_read_gather(region, indices)
            if tracked:
                idx = np.asarray(indices, dtype=np.int64)
                checker._check_loaded(
                    st, pid, region, idx, values, store_buffer=store_buffer
                )
            return values

        def write(region, start=0, stop=None, values=None, **kwargs):
            tracked = checker._oracle_region(region)
            if tracked:
                checker._shadow(st, region)
            result = yield from orig_write(
                region, start, stop, values=values, **kwargs
            )
            if tracked and store_buffer is None:
                end = start + np.asarray(values).size if values is not None else stop
                shadow = checker._shadow(st, region)
                shadow[start:end] = region.np.reshape(-1)[start:end]
            return result

        def write_scatter(region, indices, values):
            tracked = checker._oracle_region(region)
            if tracked:
                checker._shadow(st, region)
            result = yield from orig_write_scatter(region, indices, values)
            if tracked and store_buffer is None:
                idx = np.asarray(indices, dtype=np.int64)
                shadow = checker._shadow(st, region)
                shadow[idx] = region.np.reshape(-1)[idx]
            return result

        def atomic_swap(region, index, new_value):
            tracked = checker._oracle_region(region)
            if tracked:
                checker._shadow(st, region)
            old = yield from orig_swap(region, index, new_value)
            if tracked:
                shadow = checker._shadow(st, region)
                expect = shadow[index]
                checker.checks["data-value"] += 1
                if old != expect:
                    raise CheckError(
                        "data-value",
                        f"atomic_swap on {region.name}[{index}] returned "
                        f"{old!r}; the most recent store wrote {expect!r}",
                        node=pid,
                        block=region.addr_of(index),
                    )
                shadow[index] = region.np.reshape(-1)[index]
            return old

        def atomic_cas(region, index, expected, new_value):
            tracked = checker._oracle_region(region)
            if tracked:
                checker._shadow(st, region)
            swapped = yield from orig_cas(region, index, expected, new_value)
            if tracked:
                shadow = checker._shadow(st, region)
                shadow[index] = region.np.reshape(-1)[index]
            return swapped

        ctx.read = read
        ctx.read_gather = read_gather
        ctx.write = write
        ctx.write_scatter = write_scatter
        ctx.atomic_swap = atomic_swap
        ctx.atomic_cas = atomic_cas

    # -- shared-memory: relaxed commit order + shadow advance ----------------

    def _instrument_sm_drain(self, st: _SmState, ctx: Any) -> None:
        """Wrap a relaxed context's drain commit (the visibility instant).

        Two duties: (a) *coherence order* — no entry may commit while an
        older pending store to an overlapping location exists (per-location
        program order; this is what keeps CoWW intact under both TSO and
        PC); (b) with the oracle on, advance the shadow with the committed
        values, since the write() wrapper deliberately did not.
        """
        checker = self
        drain = ctx.drain
        store_buffer = ctx.store_buffer
        orig_commit = drain.commit

        def commit(entry: Any) -> None:
            checker.checks["coherence-order"] += 1
            if not store_buffer.is_oldest_conflicting(entry):
                raise CheckError(
                    "coherence-order",
                    f"node {ctx.pid} committed {entry.describe()} while an "
                    f"older pending store to the same location existed "
                    f"(per-location program order / CoWW violated)",
                    node=ctx.pid,
                )
            orig_commit(entry)
            if (
                checker.oracle
                and entry.values is not None
                and checker._oracle_region(entry.region)
            ):
                shadow = checker._shadow(st, entry.region)
                if entry.indices is None:
                    shadow[entry.start : entry.start + entry.values.size] = (
                        entry.values
                    )
                else:
                    shadow[entry.indices] = entry.values

        drain.commit = commit

    # -- shared-memory: quiescent directory/cache agreement ------------------

    def verify_sm_quiescent(self, st: _SmState) -> None:
        """End-of-run sweep: directories and caches agree, oracle matches."""
        machine = st.machine
        if st.relaxed:
            for ctx in machine.contexts:
                store_buffer = getattr(ctx, "store_buffer", None)
                if store_buffer is None:
                    continue
                self.checks["sb-quiescent"] += 1
                if len(store_buffer):
                    pending = ", ".join(
                        e.describe() for e in store_buffer.entries
                    )
                    raise CheckError(
                        "sb-quiescent",
                        f"node {ctx.pid} ended the run with "
                        f"{len(store_buffer)} uncommitted store(s): {pending}",
                        node=ctx.pid,
                    )
        for block, holders in st.holders.items():
            if not holders:
                continue
            self.checks["dir-agreement"] += 1
            try:
                home = machine.home_of(block)
            except KeyError:
                raise CheckError(
                    "dir-agreement",
                    f"cached block has no home region (holders {holders})",
                    block=block,
                ) from None
            entry = machine.directories[home].entries.get(block)
            describe = entry.describe() if entry is not None else "absent"
            writers = [p for p, s in holders.items() if s is LineState.EXCLUSIVE]
            readers = sorted(p for p, s in holders.items() if s is LineState.SHARED)
            if entry is None:
                raise CheckError(
                    "dir-agreement",
                    f"home {home} has no entry for a block cached at "
                    f"{sorted(holders)}",
                    node=home,
                    block=block,
                    state=describe,
                )
            if entry.busy or entry.pending:
                raise CheckError(
                    "dir-agreement",
                    f"entry still busy at quiescence ({len(entry.pending)} "
                    f"parked requests)",
                    node=home,
                    block=block,
                    state=describe,
                )
            if writers:
                if (
                    entry.state is not DirState.EXCLUSIVE
                    or entry.owner != writers[0]
                    or readers
                ):
                    raise CheckError(
                        "dir-agreement",
                        f"cache holds EXCLUSIVE at {writers} (readers "
                        f"{readers}) but the directory disagrees",
                        node=writers[0],
                        block=block,
                        state=describe,
                    )
            else:
                stray = [p for p in readers if p not in entry.sharers]
                if stray:
                    raise CheckError(
                        "dir-agreement",
                        f"nodes {stray} hold SHARED copies the directory "
                        f"does not track",
                        node=stray[0],
                        block=block,
                        state=describe,
                    )
        if self.oracle:
            for name, shadow in st.shadow.items():
                region = machine.space.regions.get(name)
                if region is None:
                    continue
                self.checks["oracle-final"] += 1
                memory = region.np.reshape(-1)
                bad = np.flatnonzero(_mismatch_mask(memory, shadow))
                if bad.size:
                    i = int(bad[0])
                    raise CheckError(
                        "data-value",
                        f"final memory of {name!r} diverged from the oracle "
                        f"at element {i}: memory {memory[i]!r} vs oracle "
                        f"{shadow[i]!r} (a store bypassed the protocol)",
                        block=region.addr_of(i),
                    )

    # -- message-passing: FIFO + conservation --------------------------------

    def _instrument_mp_network(self, st: _MpState, machine: Any) -> None:
        checker = self
        packet_bytes = machine.params.mp.packet_bytes
        orig_deliver = machine.deliver

        def deliver(packet: Any) -> None:
            checker.checks["conservation"] += 1
            if packet.data_bytes + packet.control_bytes != packet.count * packet_bytes:
                raise CheckError(
                    "conservation",
                    f"train of {packet.count} packets carries "
                    f"{packet.data_bytes}+{packet.control_bytes} bytes; "
                    f"expected {packet.count * packet_bytes}",
                    node=packet.src,
                )
            st.outstanding[id(packet)] = (packet.src, packet.dest, packet.tag)
            st.sent += packet.count
            orig_deliver(packet)

        machine.deliver = deliver

        for node in machine.nodes:
            self._instrument_mp_ni(st, node.ni)

    def _instrument_mp_ni(self, st: _MpState, ni: Any) -> None:
        checker = self
        dest = ni.node_id
        orig_enqueue = ni.enqueue
        orig_dequeue = ni.dequeue
        orig_dequeue_interrupt = ni.dequeue_interrupt

        def enqueue(packet: Any) -> None:
            cls = "isr" if packet.tag in ni.interrupt_mask else "fifo"
            key = (dest, packet.src, packet.tag, cls)
            queue = st.channels.get(key)
            if queue is None:
                queue = st.channels[key] = deque()
            queue.append(id(packet))
            orig_enqueue(packet)

        def _receive(packet: Any, cls: str) -> None:
            entry = st.outstanding.pop(id(packet), None)
            if entry is None:
                raise CheckError(
                    "conservation",
                    f"node {dest} received a packet (tag {packet.tag!r} from "
                    f"{packet.src}) that was never delivered, or twice",
                    node=dest,
                )
            st.received += packet.count
            key = (dest, packet.src, packet.tag, cls)
            queue = st.channels.get(key)
            checker.checks["fifo"] += 1
            if not queue or queue[0] != id(packet):
                raise CheckError(
                    "fifo",
                    f"node {dest} dequeued a packet from {packet.src} "
                    f"(tag {packet.tag!r}) out of delivery order",
                    node=dest,
                )
            queue.popleft()

        def dequeue() -> Optional[Any]:
            packet = orig_dequeue()
            if packet is not None:
                _receive(packet, "fifo")
            return packet

        def dequeue_interrupt() -> Optional[Any]:
            packet = orig_dequeue_interrupt()
            if packet is not None:
                _receive(packet, "isr")
            return packet

        ni.enqueue = enqueue
        ni.dequeue = dequeue
        ni.dequeue_interrupt = dequeue_interrupt

    def verify_mp_quiescent(self, st: _MpState) -> None:
        """End-of-run sweep: nothing lost in flight, nothing half-consumed."""
        machine = st.machine
        self.checks["quiescence"] += 1
        # Account for every undelivered train: it must still be sitting in
        # some queue (benign residue, e.g. last-round flow-control credits)
        # — anything else was lost by the network or delivered twice.
        residual_trains = 0
        residual_packets = 0
        unaccounted = dict(st.outstanding)
        for node in machine.nodes:
            for packet in list(node.ni._incoming) + list(node.ni._interrupt_queue):
                residual_trains += 1
                residual_packets += packet.count
                if unaccounted.pop(id(packet), None) is None:
                    raise CheckError(
                        "conservation",
                        f"queued packet (tag {packet.tag!r} from "
                        f"{packet.src}) was never delivered by the network",
                        node=node.pid,
                    )
        if unaccounted:
            (src, dest, tag) = next(iter(unaccounted.values()))
            raise CheckError(
                "conservation",
                f"{len(unaccounted)} packet train(s) lost in flight, "
                f"e.g. {src}->{dest} tag {tag!r} "
                f"(sent {st.sent}, received {st.received})",
                node=dest,
            )
        if residual_packets:
            self.checks["residual-packets"] += residual_packets
            if self.strict_quiescence:
                raise CheckError(
                    "quiescence",
                    f"{residual_packets} packet(s) in {residual_trains} "
                    f"train(s) left undrained in incoming queues at end "
                    f"of run",
                )
        if st.sent != st.received + residual_packets:
            raise CheckError(
                "conservation",
                f"sent {st.sent} packets but received {st.received} "
                f"with {residual_packets} still queued",
            )
        # Push-style channels (ALCP-MP's star updates) legitimately end the
        # run with delivered-but-never-waited-on bytes: the data already
        # landed in the window and no consumer exists. Count the residue;
        # only strict mode (programs that drain everything) rejects it.
        for ctx in machine.contexts:
            cmmd = getattr(ctx, "cmmd", None)
            if cmmd is None:
                continue
            for channel in cmmd._recv_channels.values():
                if channel.received_bytes:
                    self.checks["residual-channel-bytes"] += channel.received_bytes
                    if self.strict_quiescence:
                        raise CheckError(
                            "quiescence",
                            f"CMMD channel {channel.cid} on node {ctx.pid} "
                            f"holds {channel.received_bytes} delivered but "
                            f"unconsumed bytes at end of run",
                            node=ctx.pid,
                        )

    # -- reporting -----------------------------------------------------------

    def verify_quiescent(self) -> None:
        """Run the end-of-run sweeps for every attached machine now."""
        for st in self._sm:
            self.verify_sm_quiescent(st)
        for st in self._mp:
            self.verify_mp_quiescent(st)

    def report(self) -> Dict[str, int]:
        """Checks performed so far, by invariant name (all of them passed —
        a failure raises instead of counting)."""
        return dict(sorted(self.checks.items()))
