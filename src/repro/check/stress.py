"""Randomized stress programs that drive the machines under the checker.

Litmus shapes probe known-dangerous interleavings; the stress programs
probe the interleavings nobody thought of. Each run pre-generates a
deterministic random schedule of operations from a seed (pure Python
``random.Random`` — the simulator's own RNG streams are untouched),
executes it on a real machine with the invariant monitors installed,
and asserts end-to-end properties the schedule makes predictable:

* **Shared memory** (:func:`run_sm_stress`): random reads, range
  writes, gathers, scatters, and compute bubbles over one shared
  region, interleaved with MCS-lock-protected counter increments. The
  data-value oracle cross-checks every load while it runs; afterwards
  the counter must equal the total number of increments (mutual
  exclusion) and the quiescent directory/cache sweep must pass.
* **Message passing** (:func:`run_mp_stress`): a random all-to-all
  burst of sequence-numbered active messages — every receiver asserts
  per-source FIFO order at the application level, on both the polled
  FIFO and the interrupt queue — followed by a synchronous CMMD ring
  exchange whose payloads are verified elementwise. Runs under
  ``strict_quiescence``: these programs drain everything they send.

Property-based tests (Hypothesis) drive the ``ops``/``seed`` parameters
from ``tests/check/test_stress.py``; the ``repro check --stress N`` CLI
runs a fixed seed schedule.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

import numpy as np

from repro import check
from repro.arch.params import MachineParams
from repro.check.errors import CheckError
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine

#: Elements in the shared stress region (24 blocks at 4 doubles/block —
#: enough to spread home nodes and force evictions at stress sizes).
_SM_REGION_ELEMS = 96

_STRESS_POLL_TAG = "_stress_seq"
_STRESS_ISR_TAG = "_stress_isr"


def _sm_schedule(ops: int, seed: int, nprocs: int) -> list:
    """Per-processor operation lists totalling ``ops`` operations."""
    rng = random.Random(seed)
    per_proc = [[] for _ in range(nprocs)]
    for i in range(ops):
        pid = i % nprocs
        kind = rng.choice(
            ("read", "read", "write", "write", "gather", "scatter",
             "compute", "lock_inc")
        )
        if kind in ("read", "write"):
            lo = rng.randrange(_SM_REGION_ELEMS)
            hi = min(_SM_REGION_ELEMS, lo + 1 + rng.randrange(12))
            value = float(rng.randrange(1_000_000))
            per_proc[pid].append((kind, lo, hi, value))
        elif kind in ("gather", "scatter"):
            count = 1 + rng.randrange(8)
            indices = tuple(
                rng.randrange(_SM_REGION_ELEMS) for _ in range(count)
            )
            value = float(rng.randrange(1_000_000))
            per_proc[pid].append((kind, indices, value))
        elif kind == "compute":
            per_proc[pid].append((kind, 1 + rng.randrange(150)))
        else:
            per_proc[pid].append((kind,))
    return per_proc


def _sm_stress_program(ctx, schedule, lock, counter, totals):
    for op in schedule[ctx.pid]:
        kind = op[0]
        if kind == "read":
            yield from ctx.read(ctx.machine.regions[0], op[1], op[2])
        elif kind == "write":
            _, lo, hi, value = op
            yield from ctx.write(
                ctx.machine.regions[0],
                lo,
                values=np.full(hi - lo, value),
            )
        elif kind == "gather":
            yield from ctx.read_gather(ctx.machine.regions[0], list(op[1]))
        elif kind == "scatter":
            yield from ctx.write_scatter(
                ctx.machine.regions[0], list(op[1]), op[2]
            )
        elif kind == "compute":
            yield from ctx.compute(op[1])
        elif kind == "lock_inc":
            yield from lock.acquire(ctx)
            current = yield from ctx.read(counter, 0, 1)
            yield from ctx.compute(7)
            yield from ctx.write(
                counter, 0, values=np.array([current[0].item() + 1.0])
            )
            yield from lock.release(ctx)
            totals[ctx.pid] += 1
    yield from ctx.barrier()
    # Every processor re-reads the whole region at quiescence, driving a
    # final full oracle cross-check through live coherence traffic.
    yield from ctx.read(ctx.machine.regions[0], 0, _SM_REGION_ELEMS)


def run_sm_stress(
    ops: int = 500,
    seed: int = 0,
    nprocs: int = 4,
    checker: Optional[check.Checker] = None,
    backend: str = "batched",
    consistency: str = "sc",
) -> Dict[str, int]:
    """Random load/store/lock stress on the SM machine under the checker.

    Under ``consistency="tso"|"pc"`` the same schedules run through the
    store-buffered machine and the monitor's *relaxed* oracle: loads are
    judged against the committed shadow with the loader's own pending
    stores forwarded (per-location coherence — CoRR/CoWW still enforced
    at every drain commit), and end-of-run quiescence additionally
    requires every store buffer to have drained dry. The MCS-protected
    counter must still be exact: lock release fences, so mutual
    exclusion survives relaxation by construction.
    """
    schedule = _sm_schedule(ops, seed, nprocs)
    if checker is None and not check.active().enabled:
        with check.checking() as checker:
            return _run_sm_stress(
                schedule, seed, nprocs, checker, backend, consistency
            )
    active = checker if checker is not None else check.active()
    return _run_sm_stress(schedule, seed, nprocs, active, backend, consistency)


def _run_sm_stress(
    schedule, seed, nprocs, checker, backend="batched", consistency="sc"
) -> Dict[str, int]:
    machine = SmMachine(
        MachineParams.paper(num_processors=nprocs),
        seed=2718 + seed,
        backend=backend,
        consistency=consistency,
    )
    region = machine.space.alloc_shared(
        "stress.data", owner=0, shape=_SM_REGION_ELEMS, dtype=np.float64
    )
    machine.index_region(region)
    assert machine.regions[0] is region
    counter = machine.space.alloc_shared(
        "stress.counter", owner=0, shape=4, dtype=np.float64
    )
    machine.index_region(counter)
    lock = machine.make_lock("stress.lock")
    totals = [0] * nprocs
    machine.run(_sm_stress_program, schedule, lock, counter, totals)
    increments = sum(totals)
    final = int(counter.np.reshape(-1)[0])
    if final != increments:
        raise CheckError(
            "mutual-exclusion",
            f"{increments} lock-protected increments produced counter "
            f"value {final} (lost updates)",
            block=counter.base,
        )
    report = dict(checker.report()) if checker.enabled else {}
    report["increments"] = increments
    report["sm_ops"] = sum(len(s) for s in schedule)
    return report


def _mp_schedule(ops: int, seed: int, nprocs: int) -> list:
    """Per-processor send lists: (dest, tag, seq) triples."""
    rng = random.Random(seed)
    next_seq = {}
    per_proc = [[] for _ in range(nprocs)]
    for i in range(ops):
        src = i % nprocs
        dest = rng.randrange(nprocs - 1)
        if dest >= src:
            dest += 1
        tag = _STRESS_ISR_TAG if rng.random() < 0.25 else _STRESS_POLL_TAG
        key = (src, dest, tag)
        seq = next_seq.get(key, 0)
        next_seq[key] = seq + 1
        per_proc[src].append((dest, tag, seq, 1 + rng.randrange(60)))
    return per_proc


def _mp_stress_program(ctx, schedule, expected_counts):
    me, nprocs = ctx.pid, ctx.nprocs
    next_seq: Dict[tuple, int] = {}
    received = [0]

    def on_seq(handler_tag):
        def handler(hctx, packet):
            (seq,) = packet.payload
            key = (packet.src, handler_tag)
            want = next_seq.get(key, 0)
            if seq != want:
                raise CheckError(
                    "fifo",
                    f"handler {handler_tag!r} saw seq {seq} from node "
                    f"{packet.src}, expected {want}",
                    node=hctx.pid,
                )
            next_seq[key] = want + 1
            received[0] += 1
            return
            yield  # pragma: no cover - makes this a generator

        return handler

    ctx.am.register(_STRESS_POLL_TAG, on_seq(_STRESS_POLL_TAG))
    ctx.am.register(_STRESS_ISR_TAG, on_seq(_STRESS_ISR_TAG))
    ctx.enable_interrupts(_STRESS_ISR_TAG)

    for dest, tag, seq, gap in schedule[me]:
        yield from ctx.compute(gap)
        yield from ctx.am.send(dest, tag, seq, data_bytes=8)
    yield from ctx.poll_wait(lambda: received[0] >= expected_counts[me])
    yield from ctx.barrier()
    ctx.disable_interrupts(_STRESS_ISR_TAG)

    # Synchronous CMMD ring: even nodes send first, odd receive first.
    mine = ctx.alloc("ring_out", 32, fill=0.0)
    theirs = ctx.alloc("ring_in", 32, fill=-1.0)
    yield from ctx.write(
        mine, 0, values=np.arange(32, dtype=np.float64) + 1000.0 * me
    )
    right = (me + 1) % nprocs
    left = (me - 1) % nprocs
    if me % 2 == 0:
        yield from ctx.cmmd.send_block(right, mine)
        yield from ctx.cmmd.receive_block(left, theirs)
    else:
        yield from ctx.cmmd.receive_block(left, theirs)
        yield from ctx.cmmd.send_block(right, mine)
    got = yield from ctx.read(theirs)
    want = np.arange(32, dtype=np.float64) + 1000.0 * left
    if not np.array_equal(np.asarray(got), want):
        raise CheckError(
            "mp-data",
            f"ring payload from node {left} corrupted "
            f"(first bad element "
            f"{int(np.flatnonzero(np.asarray(got) != want)[0])})",
            node=me,
        )
    yield from ctx.barrier()
    return received[0]


def run_mp_stress(
    ops: int = 200,
    seed: int = 0,
    nprocs: int = 4,
    checker: Optional[check.Checker] = None,
    backend: str = "batched",
) -> Dict[str, int]:
    """Random sequenced-message stress on the MP machine under the checker.

    Requires an even ``nprocs`` (the ring exchange pairs even/odd ranks).
    """
    if nprocs % 2:
        raise ValueError("run_mp_stress needs an even number of processors")
    schedule = _mp_schedule(ops, seed, nprocs)
    expected = [0] * nprocs
    for src, sends in enumerate(schedule):
        for dest, _tag, _seq, _gap in sends:
            expected[dest] += 1
    if checker is None and not check.active().enabled:
        with check.checking(check.Checker(strict_quiescence=True)) as checker:
            return _run_mp_stress(schedule, expected, seed, nprocs, checker, backend)
    active = checker if checker is not None else check.active()
    return _run_mp_stress(schedule, expected, seed, nprocs, active, backend)


def _run_mp_stress(
    schedule, expected, seed, nprocs, checker, backend="batched"
) -> Dict[str, int]:
    machine = MpMachine(
        MachineParams.paper(num_processors=nprocs),
        seed=3141 + seed,
        backend=backend,
    )
    result = machine.run(_mp_stress_program, schedule, expected)
    delivered = sum(result.outputs)
    sent = sum(len(s) for s in schedule)
    if delivered != sent:
        raise CheckError(
            "conservation",
            f"programs sent {sent} sequenced messages but handlers "
            f"ran {delivered} times",
        )
    report = dict(checker.report()) if checker.enabled else {}
    report["mp_messages"] = sent
    return report
