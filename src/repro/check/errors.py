"""Typed failure vocabulary of the checking subsystem.

Every invariant violation — whether detected by a runtime monitor, a
litmus outcome assertion, or a protocol controller rejecting a message
it cannot legally receive — raises :class:`CheckError`, which carries
the processor/node id, the block address, and the directory (or cache)
state so a failing litmus or stress run is diagnosable from the message
alone.
"""

from __future__ import annotations

from typing import Optional


class CheckError(RuntimeError):
    """An invariant of the simulated machines was violated.

    Subclasses ``RuntimeError`` so existing callers that guard protocol
    paths with ``except RuntimeError`` (and tests using
    ``pytest.raises(RuntimeError)``) keep working.

    Attributes:
        invariant: short name of the violated invariant, e.g. ``"swmr"``,
            ``"data-value"``, ``"fifo"``, ``"conservation"``,
            ``"dir-agreement"``, ``"protocol"``.
        node: processor/node id where the violation was detected.
        block: block (or byte) address involved, if any.
        state: human-readable directory/cache state at the time
            (e.g. ``DirEntry.describe()`` output).
        detail: free-form explanation.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        node: Optional[int] = None,
        block: Optional[int] = None,
        state: Optional[str] = None,
    ) -> None:
        self.invariant = invariant
        self.node = node
        self.block = block
        self.state = state
        self.detail = detail
        parts = [f"[{invariant}]"]
        if node is not None:
            parts.append(f"node {node}")
        if block is not None:
            parts.append(f"block {block:#x}")
        if state is not None:
            parts.append(f"state {state}")
        parts.append(detail)
        super().__init__(" ".join(parts))
