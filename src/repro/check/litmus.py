"""Litmus tests: the memory-model oracle for the SM machine.

The simulated shared-memory machine is sequentially consistent by
default — one numpy array backs each region and the Dir_nNB protocol
invalidates every copy before a write completes — and the paper's cycle
attribution assumes exactly that. These tests pin the property: each
classic litmus shape (message passing, store buffering, IRIW, coherence
order, ...) runs as a real multi-processor program on the real machine,
many times under different per-operation timing jitter, and its
*forbidden* outcome must never appear. A future change that reorders
protocol completion against memory update would surface here first.

With the relaxed models (``consistency="tso"|"pc"``, see
:mod:`repro.sm.relaxed`) the suite becomes a **model × shape verdict
matrix**: each shape declares, via ``permitted_under``, which models
permit its relaxed outcome, and :func:`run_litmus` asserts *both*
directions — a forbidden outcome must never be observed, and a
permitted outcome must actually show up within a seed budget. The
matrix is what distinguishes the models behaviorally:

========================  ====  ====  ====
shape                      sc    tso   pc
========================  ====  ====  ====
mp_message_passing        forb  forb  PERM
sb_store_buffering        forb  PERM  PERM
lb_load_buffering         forb  forb  forb
iriw_independent_reads    forb  forb  forb
corr_coherent_read_read   forb  forb  forb
coww_coherent_write_write forb  forb  forb
w2plus2_write_serialization forb forb PERM
wrc_write_read_causality  forb  forb  forb
rmw_atomicity             forb  forb  forb
========================  ====  ====  ====

Grounding: loads block in program order on this machine, so LB never
relaxes; commits are single memory-write instants serialized by the
directory, so IRIW/WRC (store atomicity) hold everywhere; the store
buffer is per-location FIFO under both relaxed models, so CoRR/CoWW
hold; atomics fence, so RMW holds. TSO's FIFO drain preserves MP and
2+2W but permits SB (both stores parked while both loads run); PC's
cross-location commit jitter additionally permits MP and 2+2W.

The DSL is four operation types — :class:`St`, :class:`Ld`,
:class:`Pause`, :class:`CasInc` — composed into one program (a tuple of
operations) per processor:

    MP = LitmusTest(
        name="mp_message_passing",
        programs=(
            (St("x", 1), St("y", 1)),            # producer
            (Ld("y", "r0"), Ld("x", "r1")),      # consumer
        ),
        forbidden=lambda o: o["1:r0"] == 1 and o["1:r1"] == 0,
    )

Each variable becomes its own one-block shared region; loads record
``"pid:reg"`` entries in the outcome, and final memory is exposed as
``"mem:var"``. ``run_litmus`` executes the shape once per seed with
deterministic per-(processor, op) delays drawn from the seed, asserts
``forbidden`` never holds, and returns the histogram of observed
outcomes. Runs execute under an installed :class:`~repro.check.Checker`
(reusing the active one if any), so every litmus execution also
exercises the SWMR/agreement/oracle monitors.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple, Union

import numpy as np

from repro import check
from repro.arch.params import MachineParams
from repro.arch.write_buffer import MEMORY_MODELS
from repro.check.errors import CheckError
from repro.sm.machine import SmMachine


@dataclass(frozen=True)
class St:
    """Store ``value`` to variable ``var``."""

    var: str
    value: int


@dataclass(frozen=True)
class Ld:
    """Load variable ``var`` into outcome register ``reg``."""

    var: str
    reg: str


@dataclass(frozen=True)
class Pause:
    """Compute for a fixed number of cycles (shapes timing windows)."""

    cycles: int = 50


@dataclass(frozen=True)
class CasInc:
    """Atomically increment ``var`` ``times`` times via a CAS loop."""

    var: str
    times: int = 1


Op = Union[St, Ld, Pause, CasInc]
Outcome = Dict[str, int]


@dataclass(frozen=True)
class LitmusTest:
    """One litmus shape: per-processor programs plus the SC-forbidden outcome.

    ``permitted_under`` lists the memory models under which the shape's
    "forbidden" outcome is in fact allowed (and must be *observable* —
    :func:`run_litmus` checks both directions). Empty means the outcome
    is forbidden under every model the machine implements.
    """

    name: str
    programs: Tuple[Tuple[Op, ...], ...]
    forbidden: Callable[[Outcome], bool]
    description: str = ""
    permitted_under: Tuple[str, ...] = ()

    @property
    def nprocs(self) -> int:
        return len(self.programs)

    def variables(self) -> Tuple[str, ...]:
        seen = []
        for program in self.programs:
            for op in program:
                var = getattr(op, "var", None)
                if var is not None and var not in seen:
                    seen.append(var)
        return tuple(seen)


#: Maximum jitter inserted before each operation, in cycles. Spans the
#: machine's interesting reorder window: network latency is 100 cycles,
#: so delays in [0, 120] move operations across transaction boundaries.
MAX_JITTER_CYCLES = 120

#: Relaxed runs keep the same op window: the races that distinguish the
#: models come from the store buffer's own residency draws (see
#: ``PC_DRAIN_BANDS``), not from sliding the operations further — a
#: wider window would delay the producer's two ops more than the
#: consumer's one, systematically hiding the commit-vs-load races.

DEFAULT_SEEDS: Tuple[int, ...] = tuple(range(6))


def _jitter(seed: int, nprocs: int, lengths: Sequence[int]) -> list:
    """Deterministic per-(processor, op) delays for one execution."""
    rng = random.Random(seed)
    return [
        [rng.randrange(MAX_JITTER_CYCLES + 1) for _ in range(length)]
        for length in lengths
    ]


def _litmus_program(ctx, test: LitmusTest, regions: Dict[str, object],
                    delays: list, outcome: Outcome):
    ops = test.programs[ctx.pid]
    my_delays = delays[ctx.pid]
    for i, op in enumerate(ops):
        if my_delays[i]:
            yield from ctx.compute(my_delays[i])
        if isinstance(op, St):
            yield from ctx.write(
                regions[op.var], 0, values=np.array([float(op.value)])
            )
        elif isinstance(op, Ld):
            values = yield from ctx.read(regions[op.var], 0, 1)
            outcome[f"{ctx.pid}:{op.reg}"] = int(values[0].item())
        elif isinstance(op, CasInc):
            region = regions[op.var]
            for _ in range(op.times):
                while True:
                    current = yield from ctx.read(region, 0, 1)
                    current = int(current[0].item())
                    swapped = yield from ctx.atomic_cas(
                        region, 0, current, current + 1
                    )
                    if swapped:
                        break
        elif isinstance(op, Pause):
            yield from ctx.compute(op.cycles)
        else:
            raise TypeError(f"unknown litmus op {op!r}")


def _run_once(
    test: LitmusTest,
    seed: int,
    backend: str = "batched",
    consistency: str = "sc",
) -> Outcome:
    machine = SmMachine(
        MachineParams.paper(num_processors=test.nprocs),
        seed=1994 + seed,
        backend=backend,
        consistency=consistency,
    )
    regions = {}
    for var in test.variables():
        # One 4-element float64 row: exactly one 32-byte cache block, so
        # distinct variables never share a line.
        region = machine.space.alloc_shared(
            f"lit.{var}", owner=0, shape=4, dtype=np.float64, fill=0.0
        )
        machine.index_region(region)
        regions[var] = region
    delays = _jitter(seed, test.nprocs, [len(p) for p in test.programs])
    outcome: Outcome = {}
    machine.run(_litmus_program, test, regions, delays, outcome)
    for var, region in regions.items():
        outcome[f"mem:{var}"] = int(region.np.reshape(-1)[0])
    return outcome


#: Total seeded runs a *permitted* relaxed outcome gets to show itself
#: in before run_litmus declares the model unable to produce it. The
#: default 6-seed pass extends deterministically (seeds 0, 1, 2, ...)
#: up to this many runs, stopping at the first observation.
OBSERVE_SEED_BUDGET = 48


def run_litmus(
    test: LitmusTest,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    check_invariants: bool = True,
    backend: str = "batched",
    consistency: str = "sc",
    observe_budget: int = OBSERVE_SEED_BUDGET,
) -> Counter:
    """Run one shape across ``seeds``; returns the outcome histogram.

    Asserts the model × shape verdict in both directions. If
    ``consistency`` is *not* in the shape's ``permitted_under``, a
    :class:`CheckError` is raised the moment the relaxed outcome is
    observed (or any runtime invariant trips mid-run). If it *is*
    permitted, the relaxed outcome must be observed — the seed pool is
    extended deterministically up to ``observe_budget`` total runs, and
    never seeing it raises too (a model that cannot exhibit its own
    relaxations is mislabeled or broken). ``backend`` selects the
    execution backend — the differential suite runs the shapes under
    both to show the verdicts hold identically.
    """
    if consistency not in MEMORY_MODELS:
        raise ValueError(
            f"unknown consistency {consistency!r}; "
            f"known: {list(MEMORY_MODELS)}"
        )
    mislabeled = set(test.permitted_under) - set(MEMORY_MODELS)
    if mislabeled:
        raise CheckError(
            "litmus",
            f"{test.name}: permitted_under names unknown model(s) "
            f"{sorted(mislabeled)}; known: {list(MEMORY_MODELS)}",
        )
    permitted = consistency in test.permitted_under
    observed: Counter = Counter()
    relaxed_seen = 0

    def observe(seed: int) -> bool:
        nonlocal relaxed_seen
        if check_invariants and not check.active().enabled:
            with check.checking():
                outcome = _run_once(
                    test, seed, backend=backend, consistency=consistency
                )
        else:
            outcome = _run_once(
                test, seed, backend=backend, consistency=consistency
            )
        if test.forbidden(outcome):
            if not permitted:
                raise CheckError(
                    "litmus",
                    f"{test.name}: forbidden outcome {outcome} under seed "
                    f"{seed} (consistency={consistency})",
                )
            relaxed_seen += 1
        observed[tuple(sorted(outcome.items()))] += 1
        return relaxed_seen > 0

    for seed in seeds:
        observe(seed)
    if permitted and not relaxed_seen:
        tried = set(seeds)
        for seed in range(observe_budget):
            if seed in tried:
                continue
            if len(tried) >= observe_budget:
                break
            tried.add(seed)
            if observe(seed):
                break
        if not relaxed_seen:
            raise CheckError(
                "litmus",
                f"{test.name}: relaxed outcome is permitted under "
                f"{consistency} but was never observed in "
                f"{sum(observed.values())} seeded runs",
            )
    return observed


def run_suite(
    tests: Sequence[LitmusTest] = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    backend: str = "batched",
    consistency: str = "sc",
) -> Dict[str, Counter]:
    """Run every shape under one model; returns ``{name: histogram}``."""
    results = {}
    for test in LITMUS_TESTS if tests is None else tests:
        results[test.name] = run_litmus(
            test, seeds=seeds, backend=backend, consistency=consistency
        )
    return results


def run_matrix(
    tests: Sequence[LitmusTest] = None,
    models: Sequence[str] = MEMORY_MODELS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    backend: str = "batched",
    observe_budget: int = OBSERVE_SEED_BUDGET,
) -> List[Dict[str, Any]]:
    """The full model × shape verdict matrix, one record per cell.

    Each record carries the expected verdict (``"permitted"`` /
    ``"forbidden"``), the number of runs, the number of distinct
    outcomes, and how often the relaxed outcome was observed. Any cell
    whose behavior contradicts its label raises :class:`CheckError`
    inside :func:`run_litmus` — a completed matrix *is* the regression
    gate.
    """
    rows: List[Dict[str, Any]] = []
    for model in models:
        for test in LITMUS_TESTS if tests is None else tests:
            observed = run_litmus(
                test,
                seeds=seeds,
                backend=backend,
                consistency=model,
                observe_budget=observe_budget,
            )
            relaxed = sum(
                n
                for outcome, n in observed.items()
                if test.forbidden(dict(outcome))
            )
            rows.append(
                {
                    "model": model,
                    "test": test.name,
                    "expected": (
                        "permitted"
                        if model in test.permitted_under
                        else "forbidden"
                    ),
                    "runs": sum(observed.values()),
                    "distinct_outcomes": len(observed),
                    "relaxed_observed": relaxed,
                }
            )
    return rows


#: Increments per processor in the RMW-atomicity shape.
_RMW_INCREMENTS = 8

LITMUS_TESTS: Tuple[LitmusTest, ...] = (
    LitmusTest(
        name="mp_message_passing",
        programs=(
            (St("x", 1), St("y", 1)),
            (Ld("y", "r0"), Ld("x", "r1")),
        ),
        forbidden=lambda o: o["1:r0"] == 1 and o["1:r1"] == 0,
        description="Seeing the flag (y) implies seeing the data (x).",
        # TSO's FIFO drain commits x before y; only PC's cross-location
        # commit reorder lets the flag overtake the data.
        permitted_under=("pc",),
    ),
    LitmusTest(
        name="sb_store_buffering",
        programs=(
            (St("x", 1), Ld("y", "r0")),
            (St("y", 1), Ld("x", "r1")),
        ),
        forbidden=lambda o: o["0:r0"] == 0 and o["1:r1"] == 0,
        description="Both processors cannot miss each other's store "
        "(the signature relaxation of any store buffer).",
        # Both stores park in their buffers while both loads run: the
        # defining observable of TSO, inherited by PC.
        permitted_under=("tso", "pc"),
    ),
    LitmusTest(
        name="lb_load_buffering",
        programs=(
            (Ld("x", "r0"), St("y", 1)),
            (Ld("y", "r1"), St("x", 1)),
        ),
        forbidden=lambda o: o["0:r0"] == 1 and o["1:r1"] == 1,
        description="Loads cannot observe stores that are program-order "
        "after the loads that would justify them.",
    ),
    LitmusTest(
        name="iriw_independent_reads",
        programs=(
            (St("x", 1),),
            (St("y", 1),),
            (Ld("x", "r0"), Ld("y", "r1")),
            (Ld("y", "r2"), Ld("x", "r3")),
        ),
        forbidden=lambda o: (
            o["2:r0"] == 1
            and o["2:r1"] == 0
            and o["3:r2"] == 1
            and o["3:r3"] == 0
        ),
        description="Two readers cannot disagree on the order of two "
        "independent writes (write atomicity).",
    ),
    LitmusTest(
        name="corr_coherent_read_read",
        programs=(
            (St("x", 1),),
            (Ld("x", "r0"), Ld("x", "r1")),
        ),
        forbidden=lambda o: o["1:r0"] == 1 and o["1:r1"] == 0,
        description="Per-location coherence: a later read of x cannot go "
        "back in time.",
    ),
    LitmusTest(
        name="coww_coherent_write_write",
        programs=(
            (St("x", 1), St("x", 2)),
            (Ld("x", "r0"), Pause(30), Ld("x", "r1")),
        ),
        forbidden=lambda o: (
            (o["1:r0"] == 2 and o["1:r1"] == 1) or o["mem:x"] != 2
        ),
        description="Same-location stores serialize in program order; the "
        "second store must win.",
    ),
    LitmusTest(
        name="w2plus2_write_serialization",
        programs=(
            (St("x", 1), St("y", 2)),
            (St("y", 1), St("x", 2)),
        ),
        forbidden=lambda o: o["mem:x"] == 1 and o["mem:y"] == 1,
        description="2+2W: the two first-writes cannot both finish last.",
        # Under FIFO drains the four commits cannot form the required
        # cycle (x1<y2, y1<x2, x2<x1, y2<y1); PC's per-entry jitter can.
        permitted_under=("pc",),
    ),
    LitmusTest(
        name="wrc_write_read_causality",
        programs=(
            (St("x", 1),),
            (Ld("x", "r0"), St("y", 1)),
            (Ld("y", "r1"), Ld("x", "r2")),
        ),
        forbidden=lambda o: (
            o["1:r0"] == 1 and o["2:r1"] == 1 and o["2:r2"] == 0
        ),
        description="Causality through an intermediate processor: reading "
        "y=1 implies the write of x is visible.",
    ),
    LitmusTest(
        name="rmw_atomicity",
        programs=(
            (CasInc("x", _RMW_INCREMENTS),),
            (CasInc("x", _RMW_INCREMENTS),),
        ),
        forbidden=lambda o: o["mem:x"] != 2 * _RMW_INCREMENTS,
        description="CAS-loop increments never lose updates.",
    ),
)
