"""Opt-in invariant checking for the simulated machines (``repro.check``).

Everything the paper measures assumes the Dir_nNB protocol and the
CM-5-style message layer are *correct*; this package makes that claim
checkable. It follows the :mod:`repro.trace` pattern exactly:

* **Zero overhead when off.** The module-level :data:`NULL` checker is
  installed by default; machine constructors call
  ``check.active().attach_sm(self)`` / ``attach_mp(self)``, which are
  free no-ops. Golden cycle counts stay bit-identical.
* **Per-instance instrumentation when on.** ``install(Checker())``
  (or the ``checking()`` context manager) makes every machine built
  afterwards self-checking: SWMR, directory/cache agreement, and the
  data-value invariant on the shared-memory machine; per-channel FIFO,
  packet conservation, and quiescence on the message-passing machine.
  A violation raises :class:`CheckError` at the instant it happens.
* **Checking never perturbs a run.** Monitors schedule no events and
  draw no RNG streams, so cycle counts with checking on equal the
  unchecked counts exactly.

The litmus-test DSL (:mod:`repro.check.litmus`) and the randomized
stress generator (:mod:`repro.check.stress`) build on the monitors;
they import the machines, so they are *not* imported here (the
machines import this package for its attach hooks).
"""

from repro.check.errors import CheckError
from repro.check.monitor import (
    NULL,
    Checker,
    NullChecker,
    active,
    checking,
    install,
    uninstall,
)

__all__ = [
    "NULL",
    "CheckError",
    "Checker",
    "NullChecker",
    "active",
    "checking",
    "install",
    "uninstall",
]
