"""Named metric extraction from serializable run summaries.

A :class:`~repro.runner.record.RunRecord` carries a JSON-safe
``summary`` (breakdowns, counts, and ratios for pair experiments). The
sweep engine — and anything else that post-processes records without
re-simulating — pulls scalar metrics out of those summaries by *name*
through this registry, so a sweep spec can say ``metrics=("sm_total",
"sm_over_mp")`` and stay declarative and serializable.

Every metric function takes a summary mapping and returns a float;
metrics that need a quantity the summary does not carry raise
``ValueError`` (e.g. asking a pair metric of a scalars-only summary).
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Dict, Mapping, Optional, Sequence

MetricFn = Callable[[Mapping[str, Any]], float]


def _pair(summary: Mapping[str, Any]) -> Mapping[str, Any]:
    if summary.get("kind") != "pair":
        raise ValueError(
            f"metric needs a pair summary, got kind={summary.get('kind')!r}"
        )
    return summary


def _overall(summary: Mapping[str, Any], side: str) -> Mapping[str, float]:
    return _pair(summary)[side]["overall"]


def _phase(summary: Mapping[str, Any], side: str, phase: str) -> Mapping[str, float]:
    phases = _pair(summary)[side]["phases"]
    if phase not in phases:
        raise ValueError(f"summary has no {side} phase {phase!r}: {sorted(phases)}")
    return phases[phase]


def _share(part: float, whole: float) -> float:
    return part / whole if whole else 0.0


# ---------------------------------------------------------------------------
# The registry. Totals are average per-processor cycles (the paper's
# table rows); shares are fractions of the side's total; ratios are the
# paper's "Relative to ..." footers.
# ---------------------------------------------------------------------------

METRICS: Dict[str, MetricFn] = {
    "mp_total": lambda s: _overall(s, "mp")["total"],
    "sm_total": lambda s: _overall(s, "sm")["total"],
    "mp_over_sm": lambda s: float(_pair(s)["mp_relative_to_sm"]),
    "sm_over_mp": lambda s: float(_pair(s)["sm_relative_to_mp"]),
    "mp_compute_share": lambda s: _share(
        _overall(s, "mp")["computation"], _overall(s, "mp")["total"]
    ),
    "mp_comm_share": lambda s: _share(
        _overall(s, "mp")["communication"], _overall(s, "mp")["total"]
    ),
    "mp_barrier_share": lambda s: _share(
        _overall(s, "mp")["barriers"], _overall(s, "mp")["total"]
    ),
    "sm_compute_share": lambda s: _share(
        _overall(s, "sm")["computation"], _overall(s, "sm")["total"]
    ),
    "sm_data_access_share": lambda s: _share(
        _overall(s, "sm")["data_access"], _overall(s, "sm")["total"]
    ),
    "sm_sync_share": lambda s: _share(
        _overall(s, "sm")["synchronization"], _overall(s, "sm")["total"]
    ),
    "sm_main_total": lambda s: _phase(s, "sm", "main")["total"],
    "mp_main_total": lambda s: _phase(s, "mp", "main")["total"],
    "sm_shared_misses": lambda s: _pair(s)["sm_counts"]["shared_misses"],
    "sm_private_misses": lambda s: _pair(s)["sm_counts"]["private_misses"],
    "sm_remote_fraction": lambda s: _pair(s)["sm_counts"]["remote_fraction"],
    "mp_bytes": lambda s: _pair(s)["mp_counts"]["bytes_transmitted"],
    "sm_bytes": lambda s: _pair(s)["sm_counts"]["bytes_transmitted"],
    "mp_intensity": lambda s: _pair(s)["mp_counts"]["comp_cycles_per_data_byte"],
    "sm_intensity": lambda s: _pair(s)["sm_counts"]["comp_cycles_per_data_byte"],
}


def metric_names() -> Sequence[str]:
    """Every registered metric name, sorted."""
    return sorted(METRICS)


def resolve_metric(
    name: str, extra: Optional[Mapping[str, MetricFn]] = None
) -> MetricFn:
    """Look one metric up, with a did-you-mean error on a typo."""
    if extra and name in extra:
        return extra[name]
    if name in METRICS:
        return METRICS[name]
    known = sorted(set(METRICS) | set(extra or ()))
    matches = difflib.get_close_matches(name, known, n=1, cutoff=0.5)
    hint = f" (did you mean {matches[0]!r}?)" if matches else ""
    raise ValueError(f"unknown metric {name!r}{hint}; known: {known}")


def derive_metrics(
    summary: Mapping[str, Any],
    names: Sequence[str],
    extra: Optional[Mapping[str, MetricFn]] = None,
) -> Dict[str, float]:
    """Extract ``names`` from one record summary, in order.

    ``extra`` supplies sweep-local metric functions that shadow or
    extend the registry (e.g. a custom scalar pulled out of a
    non-pair experiment's summary).
    """
    return {
        name: float(resolve_metric(name, extra)(summary)) for name in names
    }
