"""Paper-style ASCII rendering of breakdowns and event counts."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

#: (label, cycles, indent-depth)
BreakdownRow = Tuple[str, float, int]
#: (label, value-string, indent-depth)
CountRow = Tuple[str, str, int]


def human_quantity(value: float) -> str:
    """Format counts the way the paper does: 2.4M, 23,590, 774."""
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1000:
        return f"{int(round(value)):,}"
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def format_breakdown(
    title: str,
    rows: Sequence[BreakdownRow],
    total: float,
    relative: Optional[Tuple[str, float]] = None,
) -> str:
    """Render a time-breakdown table (cycles in millions + percentage).

    Args:
        title: table caption, e.g. "MSE Message Passing (MSE-MP)".
        rows: (label, cycles, depth) rows; depth indents sub-categories.
        total: total cycles (denominator for percentages).
        relative: optional ("Relative to Shared Memory", 0.98) footer.
    """
    lines = [title, "-" * max(len(title), 44)]
    header = f"{'Category':<28}{'Cycles (M)':>12}{'%':>6}"
    lines.append(header)
    for label, cycles, depth in rows:
        indent = "  " * depth
        pct = 0.0 if total == 0 else 100.0 * cycles / total
        lines.append(f"{indent + label:<28}{cycles / 1e6:>12.2f}{pct:>5.0f}%")
    lines.append(f"{'Total':<28}{total / 1e6:>12.2f}{100:>5.0f}%")
    if relative is not None:
        label, ratio = relative
        lines.append(f"{label:<28}{'':>12}{100 * ratio:>5.0f}%")
    return "\n".join(lines)


def format_counts(title: str, rows: Sequence[CountRow]) -> str:
    """Render an event-count table (paper Tables 6/7, 10/11, 13/15, 22/23)."""
    lines = [title, "-" * max(len(title), 44)]
    for label, value, depth in rows:
        indent = "  " * depth
        lines.append(f"{indent + label:<36}{value:>12}")
    return "\n".join(lines)


def format_comparison(title: str, columns: Sequence[str], rows: Sequence[Tuple[str, Sequence[str]]]) -> str:
    """Simple multi-column table for side-by-side comparisons."""
    widths: List[int] = [max(len(c), 12) for c in columns]
    lines = [title, "-" * max(len(title), 44)]
    header = f"{'':<28}" + "".join(f"{c:>{w + 2}}" for c, w in zip(columns, widths))
    lines.append(header)
    for label, values in rows:
        line = f"{label:<28}" + "".join(
            f"{v:>{w + 2}}" for v, w in zip(values, widths)
        )
        lines.append(line)
    return "\n".join(lines)
