"""Per-processor cycle and event accounting.

Attribution works through two orthogonal mechanisms:

* **Contexts** remap base categories while active. Entering library code
  on the message-passing machine remaps COMPUTE -> LIB_COMPUTE and
  LOCAL_MISS -> LIB_MISS (the paper's "Lib Comp" / "Lib Misses" rows);
  entering synchronization code on the shared-memory machine remaps
  COMPUTE -> SYNC_COMPUTE and miss categories -> SYNC_MISS.
* **Phases** accumulate parallel per-phase totals: the EM3D tables report
  initialization and main loop separately; the Gauss table groups
  collective time under "Broadcast/Reduction".

Counts (misses, messages, bytes, ...) are plain named counters.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Mapping, Optional


class ProcStats:
    """Cycle categories, event counters, and phase totals for one processor."""

    def __init__(
        self,
        pid: int,
        remaps: Optional[Mapping[str, Mapping[object, object]]] = None,
    ) -> None:
        self.pid = pid
        self.cycles: Dict[object, int] = defaultdict(int)
        self.counts: Dict[str, int] = defaultdict(int)
        self.phase_cycles: Dict[str, Dict[object, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self.phase_counts: Dict[str, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._remaps: Dict[str, Mapping[object, object]] = dict(remaps or {})
        self._context_stack: List[str] = []
        self._phase_stack: List[str] = []
        # Inner accumulator dicts of the active phases, cached so the
        # per-charge loop skips the outer phase_cycles/phase_counts
        # lookups. Maintained by push_phase/pop_phase.
        self._phase_cycle_maps: List[Dict[object, int]] = []
        self._phase_count_maps: List[Dict[str, int]] = []

    # -- contexts ---------------------------------------------------------

    def push_context(self, name: str) -> None:
        """Enter an attribution context (must be a registered remap name)."""
        if name not in self._remaps:
            raise KeyError(f"unknown stats context {name!r}")
        self._context_stack.append(name)

    def pop_context(self, expected: Optional[str] = None) -> None:
        """Leave the innermost context; ``expected`` catches mismatched nesting."""
        if not self._context_stack:
            wanted = f" (expected {expected!r})" if expected is not None else ""
            raise RuntimeError(
                f"p{self.pid}: pop_context{wanted} with no context active"
            )
        top = self._context_stack[-1]
        if expected is not None and top != expected:
            raise RuntimeError(
                f"p{self.pid}: pop_context expected {expected!r} "
                f"but innermost context is {top!r}"
            )
        self._context_stack.pop()

    @contextmanager
    def context(self, name: str) -> Iterator[None]:
        """``with stats.context("lib"):`` — safe across generator yields."""
        self.push_context(name)
        try:
            yield
        finally:
            self.pop_context(expected=name)

    @property
    def active_contexts(self) -> Iterable[str]:
        return tuple(self._context_stack)

    # -- phases -----------------------------------------------------------

    def push_phase(self, name: str) -> None:
        self._phase_stack.append(name)
        self._phase_cycle_maps.append(self.phase_cycles[name])
        self._phase_count_maps.append(self.phase_counts[name])

    def pop_phase(self, expected: Optional[str] = None) -> None:
        """Leave the innermost phase; ``expected`` catches mismatched nesting."""
        if not self._phase_stack:
            wanted = f" (expected {expected!r})" if expected is not None else ""
            raise RuntimeError(
                f"p{self.pid}: pop_phase{wanted} with no phase active"
            )
        top = self._phase_stack[-1]
        if expected is not None and top != expected:
            raise RuntimeError(
                f"p{self.pid}: pop_phase expected {expected!r} "
                f"but innermost phase is {top!r}"
            )
        self._phase_stack.pop()
        self._phase_cycle_maps.pop()
        self._phase_count_maps.pop()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        self.push_phase(name)
        try:
            yield
        finally:
            self.pop_phase(expected=name)

    @property
    def current_phase(self) -> Optional[str]:
        return self._phase_stack[-1] if self._phase_stack else None

    # -- charging ---------------------------------------------------------

    def _resolve(self, category: object) -> object:
        for name in reversed(self._context_stack):
            remap = self._remaps[name]
            if category in remap:
                return remap[category]
        return category

    def charge(self, category: object, cycles: int) -> None:
        """Add cycles under ``category``, remapped by the active context."""
        if cycles < 0:
            raise ValueError(f"negative charge: {cycles}")
        if cycles == 0:
            return
        resolved = self._resolve(category) if self._context_stack else category
        self.cycles[resolved] += cycles
        for phase_map in self._phase_cycle_maps:
            phase_map[resolved] += cycles

    def charge_raw(self, category: object, cycles: int) -> None:
        """Add cycles under ``category`` exactly, bypassing context remaps."""
        if cycles < 0:
            raise ValueError(f"negative charge: {cycles}")
        if cycles == 0:
            return
        self.cycles[category] += cycles
        for phase_map in self._phase_cycle_maps:
            phase_map[category] += cycles

    def count(self, key: str, amount: int = 1) -> None:
        """Bump a named event counter."""
        self.counts[key] += amount
        for phase_map in self._phase_count_maps:
            phase_map[key] += amount

    # -- summaries --------------------------------------------------------

    def total_cycles(self) -> int:
        """Sum over every category (the tables' Total row)."""
        return sum(self.cycles.values())


class StatsBoard:
    """Aggregates the per-processor stats of one machine run.

    The paper reports "an average over all processors" for every cycle
    category; :meth:`mean_cycles` is that number.
    """

    def __init__(self, procs: List[ProcStats]) -> None:
        if not procs:
            raise ValueError("a StatsBoard needs at least one processor")
        self.procs = procs

    @property
    def num_procs(self) -> int:
        return len(self.procs)

    def mean_cycles(self, category: object, phase: Optional[str] = None) -> float:
        """Average cycles per processor for one category (optionally a phase)."""
        if phase is None:
            return sum(p.cycles.get(category, 0) for p in self.procs) / self.num_procs
        return (
            sum(p.phase_cycles.get(phase, {}).get(category, 0) for p in self.procs)
            / self.num_procs
        )

    def mean_total(self, phase: Optional[str] = None) -> float:
        """Average per-processor total cycles (the tables' Total row)."""
        if phase is None:
            return sum(p.total_cycles() for p in self.procs) / self.num_procs
        return (
            sum(sum(p.phase_cycles.get(phase, {}).values()) for p in self.procs)
            / self.num_procs
        )

    def mean_count(self, key: str, phase: Optional[str] = None) -> float:
        """Average per-processor value of a named counter."""
        if phase is None:
            return sum(p.counts.get(key, 0) for p in self.procs) / self.num_procs
        return (
            sum(p.phase_counts.get(phase, {}).get(key, 0) for p in self.procs)
            / self.num_procs
        )

    def total_count(self, key: str) -> int:
        """Sum of a counter over all processors."""
        return sum(p.counts.get(key, 0) for p in self.procs)

    def categories(self) -> List[object]:
        """Every category charged on any processor, in first-seen order."""
        seen: Dict[object, None] = {}
        for proc in self.procs:
            for category in proc.cycles:
                seen.setdefault(category, None)
        return list(seen)
