"""Cycle-category accounting and paper-style reporting.

Every simulated processor carries a :class:`ProcStats`: cycle counts per
category (the rows of the paper's time-breakdown tables), event counters
(the rows of its event-count tables), and phase totals (the
initialization / main-loop split of the EM3D tables and the
broadcast/reduction grouping of the Gauss table).
"""

from repro.stats.categories import MpCat, SmCat
from repro.stats.collector import ProcStats, StatsBoard
from repro.stats.report import format_breakdown, format_counts

__all__ = [
    "MpCat",
    "SmCat",
    "ProcStats",
    "StatsBoard",
    "format_breakdown",
    "format_counts",
]
