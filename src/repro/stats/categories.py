"""Cycle categories: the rows of the paper's time-breakdown tables.

Message-passing programs (paper Tables 4, 8, 12, 18, 20) split time
into computation; local cache misses; and communication, itself split
into library computation, library-induced local misses, and network
(interface) access; plus hardware-barrier time.

Shared-memory programs (Tables 5, 9, 14, 19, 21) split time into
computation; data access (private misses, shared misses, write faults,
TLB misses); and synchronization (synchronization computation and
misses, locks, barriers, reductions, and start-up wait).
"""

from __future__ import annotations

import enum


class MpCat(enum.Enum):
    """Cycle categories for message-passing programs."""

    # Members are singletons, so identity hashing is equivalent — and the
    # C-level slot avoids Python-level Enum.__hash__ on every stats charge.
    __hash__ = object.__hash__

    COMPUTE = "Computation"
    LOCAL_MISS = "Local Misses"
    LIB_COMPUTE = "Lib Comp"
    LIB_MISS = "Lib Misses"
    NETWORK_ACCESS = "Network Access"
    BARRIER = "Barriers"


#: Categories grouped under "Communication" in the paper's MP tables.
MP_COMMUNICATION_CATS = (MpCat.LIB_COMPUTE, MpCat.LIB_MISS, MpCat.NETWORK_ACCESS)


class SmCat(enum.Enum):
    """Cycle categories for shared-memory programs."""

    __hash__ = object.__hash__  # singletons; see MpCat

    COMPUTE = "Computation"
    PRIVATE_MISS = "Private Misses"
    SHARED_MISS = "Shared Misses"
    WRITE_FAULT = "Write Faults"
    TLB_MISS = "TLB Misses"
    SYNC_COMPUTE = "Sync Comp"
    SYNC_MISS = "Sync Miss"
    LOCK = "Locks"
    BARRIER = "Barriers"
    REDUCTION = "Reductions"
    STARTUP_WAIT = "Start-up Wait"


#: Categories grouped under "Data Access" (or "Cache Misses") in SM tables.
SM_DATA_ACCESS_CATS = (
    SmCat.PRIVATE_MISS,
    SmCat.SHARED_MISS,
    SmCat.WRITE_FAULT,
    SmCat.TLB_MISS,
)

#: Categories grouped under "Synchronization" in SM tables.
SM_SYNC_CATS = (
    SmCat.SYNC_COMPUTE,
    SmCat.SYNC_MISS,
    SmCat.LOCK,
    SmCat.BARRIER,
    SmCat.REDUCTION,
    SmCat.STARTUP_WAIT,
)
