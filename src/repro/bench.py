"""Deprecated alias for :mod:`repro.runner.bench`.

The benchmark suite moved behind the runner facade so backend selection
and the per-app regression gate live next to the config machinery that
implements them. Import :mod:`repro.runner.bench` (or call
:func:`repro.api.bench`) instead; this shim re-exports the public
surface and will be removed in a future release.
"""

from __future__ import annotations

import warnings

from repro.runner.bench import (  # noqa: F401
    APP_CONFIGS,
    DEFAULT_THRESHOLD,
    SCHEMA,
    compare,
    load_baseline,
    platform_meta,
    run_benchmarks,
)

warnings.warn(
    "repro.bench is deprecated; use repro.runner.bench or repro.api.bench()",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "APP_CONFIGS",
    "DEFAULT_THRESHOLD",
    "SCHEMA",
    "compare",
    "load_baseline",
    "platform_meta",
    "run_benchmarks",
]
