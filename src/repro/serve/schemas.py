"""Request/response shapes for the ``repro serve`` HTTP surface.

The service speaks plain JSON over two submission endpoints. This
module owns the *structural* validation — required keys, types,
unknown-key rejection with a did-you-mean — and returns small frozen
request objects. Semantic validation (does the experiment exist, are
the override keys real config fields) happens when the server resolves
the request into an :class:`~repro.runner.config.ExperimentConfig`;
both layers raise :class:`SchemaError`, which the server maps to a
``400`` with the message in the body, so a curl user sees exactly the
same error text a CLI user would.

Submission bodies::

    POST /v1/runs    {"experiment": "em3d", "overrides": {...}, "force": false}
    POST /v1/sweeps  {"spec": "em3d-latency", "axes": {"net_latency": [0, 100]},
                      "jobs": 2, "force": false}

Every response is a JSON *job envelope* (see
:meth:`repro.serve.jobqueue.Job.to_jsonable`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.runner.config import suggest


class SchemaError(ValueError):
    """A malformed or semantically invalid request body (HTTP 400)."""


def _require_mapping(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise SchemaError(
            f"{what} must be a JSON object, got {type(data).__name__}"
        )
    return data


def _reject_unknown_keys(
    data: Mapping[str, Any], known: Tuple[str, ...], what: str
) -> None:
    for key in data:
        if key not in known:
            raise SchemaError(
                f"unknown {what} field {key!r}{suggest(str(key), known)}; "
                f"known: {sorted(known)}"
            )


def _opt_bool(data: Mapping[str, Any], key: str, what: str) -> bool:
    value = data.get(key, False)
    if not isinstance(value, bool):
        raise SchemaError(f"{what} field {key!r} must be a boolean")
    return value


@dataclass(frozen=True)
class RunRequest:
    """A validated ``POST /v1/runs`` body."""

    exp_id: str
    overrides: Dict[str, Any] = field(default_factory=dict)
    force: bool = False


@dataclass(frozen=True)
class SweepRequest:
    """A validated ``POST /v1/sweeps`` body."""

    spec: str
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    jobs: Optional[int] = None
    force: bool = False


def parse_run_request(data: Any) -> RunRequest:
    """Structurally validate a run submission body."""
    data = _require_mapping(data, "run request")
    _reject_unknown_keys(
        data, ("experiment", "overrides", "force"), "run request"
    )
    exp_id = data.get("experiment")
    if not isinstance(exp_id, str) or not exp_id:
        raise SchemaError(
            "run request needs an 'experiment' string "
            "(see GET /v1/experiments or `repro list`)"
        )
    overrides = data.get("overrides") or {}
    overrides = dict(_require_mapping(overrides, "run request 'overrides'"))
    return RunRequest(
        exp_id=exp_id,
        overrides=overrides,
        force=_opt_bool(data, "force", "run request"),
    )


def parse_sweep_request(data: Any) -> SweepRequest:
    """Structurally validate a sweep submission body."""
    data = _require_mapping(data, "sweep request")
    _reject_unknown_keys(
        data, ("spec", "axes", "jobs", "force"), "sweep request"
    )
    spec = data.get("spec")
    if not isinstance(spec, str) or not spec:
        raise SchemaError(
            "sweep request needs a 'spec' string naming a shipped sweep "
            "(em3d-latency, em3d-cache, gauss-speedup)"
        )
    raw_axes = data.get("axes") or {}
    raw_axes = _require_mapping(raw_axes, "sweep request 'axes'")
    axes: Dict[str, List[Any]] = {}
    for name, values in raw_axes.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise SchemaError(
                f"sweep axis {name!r} must be a non-empty list of values"
            )
        axes[str(name)] = list(values)
    jobs = data.get("jobs")
    if jobs is not None and (not isinstance(jobs, int) or jobs < 1):
        raise SchemaError("sweep request 'jobs' must be a positive integer")
    return SweepRequest(
        spec=spec,
        axes=axes,
        jobs=jobs,
        force=_opt_bool(data, "force", "sweep request"),
    )
