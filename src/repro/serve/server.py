"""The ``repro serve`` HTTP service (stdlib-only, threaded).

A :class:`ReproServer` is a ``ThreadingHTTPServer`` front end over a
:class:`~repro.serve.jobqueue.JobQueue`: HTTP threads only parse,
validate, and consult the registry/cache — every simulation happens in
the queue's workers (which themselves ship work to spawned processes),
so the service stays responsive while experiments run.

Endpoints (all JSON)::

    POST /v1/runs        submit an experiment run   -> job envelope
    POST /v1/sweeps      submit a sensitivity sweep -> job envelope
    GET  /v1/jobs/<id>   poll one job               -> job envelope
    GET  /v1/jobs        list known jobs            -> {"jobs": [...]}
    GET  /v1/experiments list runnable experiments  -> {"experiments": [...]}
    GET  /healthz        liveness + queue/cache stats

Submission responses carry the full job envelope immediately: a warm
request (already cached) arrives with ``state: "done"``,
``simulated: false`` and the record inline — zero simulation, suitable
for millisecond-latency polling loops. Status codes: ``200`` for
finished jobs and reads, ``202`` for accepted-but-not-finished
submissions, ``400`` for invalid bodies (message in ``{"error": ...}``),
``404`` for unknown jobs/paths.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.runner.cache import ResultCache
from repro.serve.jobqueue import DONE, JobQueue
from repro.serve.schemas import (
    SchemaError,
    parse_run_request,
    parse_sweep_request,
)

#: Largest accepted request body; runs/sweep submissions are tiny.
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ReproServer`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def repro(self) -> "ReproServer":
        return self.server.repro_server  # type: ignore[attr-defined]

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise SchemaError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise SchemaError(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SchemaError(f"request body is not valid JSON: {exc}") from exc

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        self.repro.log(f"{self.address_string()} {format % args}")

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, self.repro.health())
            return
        if path == "/v1/experiments":
            self._send_json(200, self.repro.experiments())
            return
        if path == "/v1/jobs":
            jobs = self.repro.queue.registry.jobs()
            self._send_json(
                200,
                {"jobs": [job.to_jsonable(include_result=False)
                          for job in jobs]},
            )
            return
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            job = self.repro.queue.registry.get(job_id)
            if job is None:
                self._send_json(404, {"error": f"unknown job {job_id!r}"})
                return
            self._send_json(200, job.to_jsonable())
            return
        self._send_json(404, {"error": f"unknown path {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            if path == "/v1/runs":
                request = parse_run_request(self._read_json_body())
                job = self.repro.queue.submit_run(request)
            elif path == "/v1/sweeps":
                request = parse_sweep_request(self._read_json_body())
                job = self.repro.queue.submit_sweep(request)
            else:
                self._send_json(404, {"error": f"unknown path {path!r}"})
                return
        except SchemaError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._send_json(200 if job.state == DONE else 202, job.to_jsonable())


class ReproServer:
    """The long-running service: HTTP front end + job queue + cache."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8737,
        jobs: int = 2,
        cache: Optional[ResultCache] = None,
        cache_budget_bytes: Optional[int] = None,
        run_executor=None,
        sweep_executor=None,
        quiet: bool = False,
    ) -> None:
        self.cache = cache if cache is not None else ResultCache()
        self.queue = JobQueue(
            workers=jobs,
            cache=self.cache,
            cache_budget_bytes=cache_budget_bytes,
            run_executor=run_executor,
            sweep_executor=sweep_executor,
        )
        self.quiet = quiet
        self.started_at = time.time()
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.repro_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- addresses ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` ephemerals."""
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle ---------------------------------------------------------

    def log(self, message: str) -> None:
        if not self.quiet:
            import sys

            stamp = time.strftime("%Y-%m-%d %H:%M:%S")
            print(f"[{stamp}] {message}", file=sys.stderr, flush=True)

    def start(self) -> None:
        """Serve in a background thread (programmatic/tests)."""
        self.queue.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        self.log(f"repro serve listening on {self.url}")

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path); Ctrl-C stops."""
        self.queue.start()
        self.log(
            f"repro serve listening on {self.url} "
            f"({self.queue.workers} workers, cache {self.cache.directory}"
            + (
                f", budget {self.queue.cache_budget_bytes} bytes"
                if self.queue.cache_budget_bytes is not None
                else ""
            )
            + ")"
        )
        try:
            self.httpd.serve_forever()
        finally:
            self.stop()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.queue.stop()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.log("repro serve stopped")

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- endpoint payloads -------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document: uptime, queue, cache, heartbeat."""
        from repro import __version__

        now = time.time()
        return {
            "status": "ok",
            "version": __version__,
            "heartbeat": now,
            "started_at": self.started_at,
            "uptime_seconds": round(now - self.started_at, 3),
            "queue": self.queue.stats(),
            "cache": self.cache.stats(),
        }

    def experiments(self) -> Dict[str, Any]:
        from repro.core.experiments import EXPERIMENTS

        return {
            "experiments": [
                {
                    "id": exp_id,
                    "title": spec.title,
                    "paper_tables": spec.paper_tables,
                }
                for exp_id, spec in EXPERIMENTS.items()
            ]
        }
