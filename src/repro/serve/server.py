"""The ``repro serve`` HTTP service (stdlib-only, threaded).

A :class:`ReproServer` is a ``ThreadingHTTPServer`` front end over a
:class:`~repro.serve.jobqueue.JobQueue`: HTTP threads only parse,
validate, and consult the registry/cache — every simulation happens in
the queue's workers (which themselves ship work to spawned processes),
so the service stays responsive while experiments run.

Endpoints (JSON unless noted)::

    POST /v1/runs             submit an experiment run   -> job envelope
    POST /v1/sweeps           submit a sensitivity sweep -> job envelope
    GET  /v1/jobs/<id>        poll one job               -> job envelope
    GET  /v1/jobs/<id>?wait=S long-poll: block up to S seconds for a
                              terminal state, then answer (no busy loop)
    GET  /v1/jobs             list known jobs            -> {"jobs": [...]}
    GET  /v1/experiments      list runnable experiments  -> {"experiments": [...]}
    GET  /v1/specs            list YAML experiment/sweep specs -> {"specs": [...]}
    GET  /healthz             liveness + queue/cache stats
    GET  /status              human-readable HTML status page

Submission responses carry the full job envelope immediately: a warm
request (already cached) arrives with ``state: "done"``,
``simulated: false`` and the record inline — zero simulation, suitable
for millisecond-latency polling loops. Status codes: ``200`` for
finished jobs and reads, ``202`` for accepted-but-not-finished
submissions, ``400`` for invalid bodies (message in ``{"error": ...}``),
``404`` for unknown jobs/paths, ``429`` + ``Retry-After`` when
admission control refuses (queue full, or a client over its rate
limit), ``503`` while shutting down.

Keep-alive discipline: the handler speaks HTTP/1.1 with persistent
connections, so *every* request's body is consumed (or the connection
is marked close) before the response — including early-exit error
paths — otherwise the unread body would be parsed as the next request
on the same connection (request desync).
"""

from __future__ import annotations

import html
import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.runner.cache import ResultCache
from repro.serve.admission import AdmissionError, RateLimiter
from repro.serve.jobqueue import DONE, JobQueue, QueueShutdown
from repro.serve.schemas import (
    SchemaError,
    parse_run_request,
    parse_sweep_request,
)

#: Largest accepted request body; runs/sweep submissions are tiny.
MAX_BODY_BYTES = 1 << 20

#: Largest body worth draining to keep a connection alive; anything
#: bigger is cheaper to answer-and-close than to read-and-discard.
MAX_DRAIN_BYTES = MAX_BODY_BYTES * 8

#: Ceiling on ``GET /v1/jobs/<id>?wait=S`` (seconds).
MAX_LONGPOLL_SECONDS = 60.0


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ReproServer`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def repro(self) -> "ReproServer":
        return self.server.repro_server  # type: ignore[attr-defined]

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_body(status, body, "application/json", headers)

    def _send_html(self, status: int, markup: str) -> None:
        self._send_body(
            status, markup.encode("utf-8"), "text/html; charset=utf-8"
        )

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            # We are going to drop the connection (undrained body);
            # say so instead of silently hanging up on a keep-alive
            # client.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _content_length(self) -> int:
        try:
            return int(self.headers.get("Content-Length") or 0)
        except (TypeError, ValueError):
            return 0

    def _discard_body(self) -> None:
        """Consume an unread request body so keep-alive stays in sync.

        Replying without reading the body would leave it in the socket
        buffer, where it gets parsed as the *next* request on this
        persistent connection (HTTP desync). Bodies too large to be
        worth draining — and chunked bodies, which this server never
        dechunks — force the connection closed instead.
        """
        if self._body_consumed:
            return
        self._body_consumed = True
        if "chunked" in (self.headers.get("Transfer-Encoding") or "").lower():
            self.close_connection = True
            return
        remaining = self._content_length()
        if remaining <= 0:
            return
        if remaining > MAX_DRAIN_BYTES:
            self.close_connection = True
            return
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                self.close_connection = True
                return
            remaining -= len(chunk)

    def _read_json_body(self) -> Any:
        length = self._content_length()
        if length <= 0:
            raise SchemaError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            # Leave the body unread; _discard_body decides whether the
            # connection survives.
            raise SchemaError(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        self._body_consumed = True
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SchemaError(f"request body is not valid JSON: {exc}") from exc

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        self.repro.log(f"{self.address_string()} {format % args}")

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._body_consumed = False
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)
        try:
            self._route_get(path, query)
        finally:
            # A GET with a body is unusual but legal; stay in sync.
            self._discard_body()

    def _route_get(self, path: str, query: Dict[str, list]) -> None:
        if path == "/healthz":
            self._send_json(200, self.repro.health())
            return
        if path == "/status":
            self._send_html(200, self.repro.status_page())
            return
        if path == "/v1/experiments":
            self._send_json(200, self.repro.experiments())
            return
        if path == "/v1/specs":
            self._send_json(200, self.repro.specs())
            return
        if path == "/v1/jobs":
            jobs = self.repro.queue.registry.jobs()
            self._send_json(
                200,
                {"jobs": [job.to_jsonable(include_result=False)
                          for job in jobs]},
            )
            return
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            job = self.repro.queue.registry.get(job_id)
            if job is None:
                self._send_json(404, {"error": f"unknown job {job_id!r}"})
                return
            try:
                wait = min(
                    max(0.0, float(query.get("wait", ["0"])[0])),
                    MAX_LONGPOLL_SECONDS,
                )
            except (TypeError, ValueError):
                self._send_json(
                    400, {"error": "wait= must be a number of seconds"}
                )
                return
            if wait > 0:
                # Long-poll: ride the job's done_event instead of
                # making the client busy-poll.
                job.wait(wait)
            self._send_json(200, job.to_jsonable())
            return
        self._send_json(404, {"error": f"unknown path {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._body_consumed = False
        path = urlsplit(self.path).path.rstrip("/")
        try:
            self.repro.admit(self.client_address[0])
            if path == "/v1/runs":
                request = parse_run_request(self._read_json_body())
                job = self.repro.queue.submit_run(request)
            elif path == "/v1/sweeps":
                request = parse_sweep_request(self._read_json_body())
                job = self.repro.queue.submit_sweep(request)
            else:
                self._discard_body()
                self._send_json(404, {"error": f"unknown path {path!r}"})
                return
        except SchemaError as exc:
            self._discard_body()
            self._send_json(400, {"error": str(exc)})
            return
        except AdmissionError as exc:
            self._discard_body()
            self._send_json(
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": exc.retry_after_header},
            )
            return
        except QueueShutdown as exc:
            self._discard_body()
            self._send_json(
                503, {"error": str(exc)}, headers={"Retry-After": "5"}
            )
            return
        self._send_json(200 if job.state == DONE else 202, job.to_jsonable())


class ReproServer:
    """The long-running service: HTTP front end + job queue + cache."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8737,
        jobs: int = 2,
        cache: Optional[ResultCache] = None,
        cache_budget_bytes: Optional[int] = None,
        store: Union[str, Any, None] = None,
        run_executor=None,
        sweep_executor=None,
        max_pending: Optional[int] = 64,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        retention_seconds: Optional[float] = 3600.0,
        max_terminal_jobs: Optional[int] = 1024,
        quiet: bool = False,
    ) -> None:
        self.cache = cache if cache is not None else ResultCache(store=store)
        self.queue = JobQueue(
            workers=jobs,
            cache=self.cache,
            cache_budget_bytes=cache_budget_bytes,
            run_executor=run_executor,
            sweep_executor=sweep_executor,
            max_pending=max_pending,
            retention_seconds=retention_seconds,
            max_terminal=max_terminal_jobs,
        )
        self.limiter = (
            RateLimiter(rate_limit, burst=rate_burst)
            if rate_limit is not None
            else None
        )
        self.quiet = quiet
        self.started_at = time.time()
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.repro_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- addresses ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` ephemerals."""
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- admission ---------------------------------------------------------

    def admit(self, client: str) -> None:
        """Per-client rate limiting; raises AdmissionError over budget."""
        if self.limiter is not None:
            self.limiter.check(client)

    # -- lifecycle ---------------------------------------------------------

    def log(self, message: str) -> None:
        if not self.quiet:
            import sys

            stamp = time.strftime("%Y-%m-%d %H:%M:%S")
            print(f"[{stamp}] {message}", file=sys.stderr, flush=True)

    def start(self) -> None:
        """Serve in a background thread (programmatic/tests)."""
        self.queue.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        self.log(f"repro serve listening on {self.url}")

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path); Ctrl-C stops."""
        self.queue.start()
        self.log(
            f"repro serve listening on {self.url} "
            f"({self.queue.workers} workers, "
            f"{getattr(self.cache.blob_store, 'kind', 'custom')} store, "
            f"cache {self.cache.directory}"
            + (
                f", budget {self.queue.cache_budget_bytes} bytes"
                if self.queue.cache_budget_bytes is not None
                else ""
            )
            + ")"
        )
        try:
            self.httpd.serve_forever()
        finally:
            self.stop()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.queue.stop()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.log("repro serve stopped")

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- endpoint payloads -------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document: uptime, queue, cache, heartbeat."""
        from repro import __version__

        now = time.time()
        return {
            "status": "ok",
            "version": __version__,
            "heartbeat": now,
            "started_at": self.started_at,
            "uptime_seconds": round(now - self.started_at, 3),
            "replica": {"pid": os.getpid(), "url": self.url},
            "admission": {
                "max_pending": self.queue.max_pending,
                "rate_limit": self.limiter.rate if self.limiter else None,
                "rate_burst": self.limiter.burst if self.limiter else None,
            },
            "queue": self.queue.stats(),
            "cache": self.cache.stats(),
        }

    def experiments(self) -> Dict[str, Any]:
        from repro.core.experiments import EXPERIMENTS

        return {
            "experiments": [
                {
                    "id": exp_id,
                    "title": spec.title,
                    "paper_tables": spec.paper_tables,
                }
                for exp_id, spec in EXPERIMENTS.items()
            ]
        }

    def specs(self) -> Dict[str, Any]:
        """The YAML scenario layer, as listing metadata (``/v1/specs``).

        A broken spec file on the search path becomes a row with an
        ``error`` field rather than a 500: the listing is a discovery
        surface and must stay answerable while someone edits a spec.
        """
        from dataclasses import asdict

        from repro.specs import SpecError, list_specs

        try:
            rows = [asdict(info) for info in list_specs()]
        except SpecError as exc:
            return {"specs": [], "error": str(exc)}
        return {"specs": rows}

    def status_page(self) -> str:
        """``/status``: the health document and job table as HTML."""
        health = self.health()
        jobs = sorted(
            (job.to_jsonable(include_result=False)
             for job in self.queue.registry.jobs()),
            key=lambda job: job["submitted_at"],
            reverse=True,
        )
        e = html.escape

        def fmt(value: Any, digits: int = 1) -> str:
            if value is None:
                return "–"
            if isinstance(value, float):
                return f"{value:.{digits}f}"
            return str(value)

        cards = [
            ("uptime", f"{health['uptime_seconds']:.0f}s"),
            ("replica pid", str(health["replica"]["pid"])),
            ("workers", str(health["queue"]["workers"])),
            ("queue depth", str(health["queue"]["depth"])),
            ("jobs done", str(health["queue"]["jobs"]["done"])),
            ("jobs failed", str(health["queue"]["jobs"]["failed"])),
            ("coalesced", str(health["queue"]["coalesced"])),
            ("pruned", str(health["queue"]["retention"]["pruned"])),
            ("cache records", str(health["cache"]["records"])),
            ("cache bytes", str(health["cache"]["bytes"])),
            ("store", e(str(health["cache"]["store"]))),
        ]
        card_html = "".join(
            f"<div class='card'><div class='v'>{value}</div>"
            f"<div class='k'>{e(label)}</div></div>"
            for label, value in cards
        )
        rows = "".join(
            "<tr>"
            f"<td><code>{e(job['job_id'][:16])}</code></td>"
            f"<td>{e(job['kind'])}</td>"
            f"<td class='s-{e(job['state'])}'>{e(job['state'])}</td>"
            f"<td>{e(json.dumps(job['params'], sort_keys=True))[:120]}</td>"
            f"<td>{fmt(job['elapsed_seconds'], 2)}</td>"
            f"<td>{fmt(job['simulated'])}</td>"
            f"<td>{fmt(job['coalesced'])}</td>"
            f"<td>{e(job['error'][:80])}</td>"
            "</tr>"
            for job in jobs
        )
        return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta http-equiv="refresh" content="5">
<title>repro serve status</title>
<style>
 body {{ font-family: system-ui, sans-serif; margin: 2rem; color: #222; }}
 .cards {{ display: flex; flex-wrap: wrap; gap: .6rem; }}
 .card {{ border: 1px solid #ddd; border-radius: .5rem;
          padding: .6rem 1rem; min-width: 7rem; }}
 .card .v {{ font-size: 1.4rem; font-weight: 600; }}
 .card .k {{ color: #666; font-size: .8rem; }}
 table {{ border-collapse: collapse; margin-top: 1.2rem; width: 100%; }}
 th, td {{ border-bottom: 1px solid #eee; padding: .35rem .6rem;
           text-align: left; font-size: .85rem; }}
 .s-done {{ color: #0a7d32; }} .s-failed {{ color: #b3261e; }}
 .s-running {{ color: #b26a00; }} .s-pending {{ color: #555; }}
</style></head><body>
<h1>repro serve <small>{e(health['version'])}</small></h1>
<p>{e(self.url)} — status <b>{e(health['status'])}</b>,
rendered from <code>/healthz</code> + <code>/v1/jobs</code>;
refreshes every 5s.</p>
<div class="cards">{card_html}</div>
<table><thead><tr><th>job</th><th>kind</th><th>state</th><th>params</th>
<th>elapsed (s)</th><th>simulated</th><th>coalesced</th><th>error</th>
</tr></thead><tbody>{rows or
    '<tr><td colspan="8">no jobs yet</td></tr>'}</tbody></table>
</body></html>"""
