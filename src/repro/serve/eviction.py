"""Byte-budget eviction for the content-addressed result cache.

``.repro_cache/`` grows by one JSON record per distinct configuration
ever simulated; a long-running server sweeping large grids needs a
bound. :func:`enforce_budget` trims the record set to a byte budget
with a two-tier policy:

1. **stale-salt records first** — records whose stored key no longer
   matches a key recomputed under the current ``CODE_SALT`` / package
   version / record schema can never satisfy a lookup again (the cache
   treats them as misses), so they are reclaimed before anything
   live, oldest first;
2. **then LRU by mtime** — cache *hits* bump a record's mtime
   (:meth:`ResultCache.load`), so mtime order is true
   least-recently-used order and hot records survive while cold ones
   go.

Eviction is mechanically simple — delete files until under budget —
and idempotent; the queue runs it after every record store.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.runner.cache import ResultCache


@dataclass
class EvictionReport:
    """What one :func:`enforce_budget` pass did."""

    budget_bytes: int
    bytes_before: int
    bytes_after: int
    evicted: List[str] = field(default_factory=list)
    stale_evicted: int = 0

    @property
    def evicted_count(self) -> int:
        return len(self.evicted)


def enforce_budget(cache: ResultCache, budget_bytes: int) -> EvictionReport:
    """Delete records (stale first, then oldest-mtime) until under budget."""
    entries = cache.index()  # already oldest-mtime first
    total = sum(entry.bytes for entry in entries)
    report = EvictionReport(
        budget_bytes=budget_bytes, bytes_before=total, bytes_after=total
    )
    if total <= budget_bytes:
        return report

    stale = [entry for entry in entries if entry.stale]
    fresh = [entry for entry in entries if not entry.stale]
    for entry in stale + fresh:
        if total <= budget_bytes:
            break
        try:
            entry.path.unlink()
        except OSError:
            continue
        total -= entry.bytes
        report.evicted.append(entry.path.name)
        report.stale_evicted += 1 if entry.stale else 0
    report.bytes_after = total
    return report


#: ``--cache-bytes`` suffixes, case-insensitive: 64K, 32M, 2G.
_UNITS = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3}


def parse_bytes(text: Optional[str]) -> Optional[int]:
    """Parse a byte budget like ``"67108864"``, ``"64M"``, or ``"1.5G"``.

    Returns ``None`` for ``None``/empty input (no budget). Raises
    :class:`ValueError` on anything unparseable.
    """
    if text is None or text == "":
        return None
    match = re.fullmatch(
        r"\s*(\d+(?:\.\d+)?)\s*([kKmMgG]?)[bB]?\s*", str(text)
    )
    if not match:
        raise ValueError(
            f"cannot parse byte budget {text!r} (try 67108864, 64M, 1G)"
        )
    value = float(match.group(1)) * _UNITS[match.group(2).lower()]
    return int(value)
