"""Request coalescing: identical submissions share one job.

Job IDs are content hashes (the run's cache key, or the sweep's grid
key), so "the same request" is a pure function of the request body —
two clients asking for the same uncached configuration race to create
the same job ID, and the registry guarantees exactly one of them wins.
The loser's submission attaches to the winner's job: one simulation,
two (or N) satisfied clients.

The registry is also the job store the poll endpoint reads, so a
finished job keeps answering ``GET /v1/jobs/<id>`` until the server
restarts. A ``force=True`` resubmission of a *finished* job replaces
it with a fresh pending one (same ID — the content address did not
change); an in-flight job is never replaced, because sharing the
running simulation is strictly better than starting a second one.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.jobqueue import Job

#: States a force-resubmission may replace (terminal states only).
_REPLACEABLE = ("done", "failed")


class CoalescingRegistry:
    """Thread-safe job store keyed by content-hash job ID."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, "Job"] = {}
        self._coalesced = 0

    def add_or_share(
        self, job: "Job", replace_terminal: bool = False
    ) -> Tuple["Job", bool]:
        """Register ``job``, or return the existing job with its ID.

        Returns ``(job, created)``: ``created`` is ``False`` when an
        earlier submission already owns the ID, in which case the
        caller must *not* enqueue any work — the existing job's
        execution (or finished result) serves this submission too.

        ``replace_terminal`` lets a new job displace a finished/failed
        one under the same ID (a warm cache answer superseding an old
        envelope, or a ``force`` re-simulation); an in-flight job is
        never displaced — sharing the running simulation is the point.
        """
        with self._lock:
            existing = self._jobs.get(job.job_id)
            if existing is not None:
                if replace_terminal and existing.state in _REPLACEABLE:
                    self._jobs[job.job_id] = job
                    return job, True
                existing.coalesced += 1
                self._coalesced += 1
                return existing, False
            self._jobs[job.job_id] = job
            return job, True

    def get(self, job_id: str) -> Optional["Job"]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List["Job"]:
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        """Jobs per state plus the lifetime coalesced-submission count."""
        with self._lock:
            counts: Dict[str, int] = {
                "pending": 0, "running": 0, "done": 0, "failed": 0,
            }
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            counts["coalesced"] = self._coalesced
            return counts
