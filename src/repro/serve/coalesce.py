"""Request coalescing: identical submissions share one job.

Job IDs are content hashes (the run's cache key, or the sweep's grid
key), so "the same request" is a pure function of the request body —
two clients asking for the same uncached configuration race to create
the same job ID, and the registry guarantees exactly one of them wins.
The loser's submission attaches to the winner's job: one simulation,
two (or N) satisfied clients.

The registry is also the job store the poll endpoint reads. *Terminal*
jobs (done/failed) are retained only for a bounded window — a TTL
(``retention_seconds`` past completion) and a count cap
(``max_terminal``, oldest-finished evicted first) — so a long-running
server's memory and ``/v1/jobs`` listing stay bounded. In-flight jobs
are never pruned. A pruned job ID is not lost information: run IDs are
cache keys, so re-submitting the same body is answered warm from the
result store.

A ``force=True`` resubmission of a *finished* job replaces it with a
fresh pending one (same ID — the content address did not change); an
in-flight job is never replaced, because sharing the running
simulation is strictly better than starting a second one.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.jobqueue import Job

#: States a force-resubmission may replace (terminal states only).
_REPLACEABLE = ("done", "failed")


class CoalescingRegistry:
    """Thread-safe job store keyed by content-hash job ID."""

    def __init__(
        self,
        retention_seconds: Optional[float] = 3600.0,
        max_terminal: Optional[int] = 1024,
    ) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, "Job"] = {}
        self._coalesced = 0
        self._pruned = 0
        self.retention_seconds = retention_seconds
        self.max_terminal = max_terminal

    def add_or_share(
        self,
        job: "Job",
        replace_terminal: bool = False,
        admit: Optional[Callable[[], None]] = None,
    ) -> Tuple["Job", bool]:
        """Register ``job``, or return the existing job with its ID.

        Returns ``(job, created)``: ``created`` is ``False`` when an
        earlier submission already owns the ID, in which case the
        caller must *not* enqueue any work — the existing job's
        execution (or finished result) serves this submission too.

        ``replace_terminal`` lets a new job displace a finished/failed
        one under the same ID (a warm cache answer superseding an old
        envelope, or a ``force`` re-simulation); an in-flight job is
        never displaced — sharing the running simulation is the point.

        ``admit`` (if given) runs under the registry lock immediately
        before the job would be inserted as *new*; raising from it
        (e.g. :class:`~repro.serve.admission.AdmissionError`) refuses
        the submission atomically — no job is registered, nothing must
        be rolled back, and coalesced/warm submissions are unaffected.
        """
        with self._lock:
            self._prune_locked()
            existing = self._jobs.get(job.job_id)
            if existing is not None:
                if replace_terminal and existing.state in _REPLACEABLE:
                    if admit is not None:
                        admit()
                    self._jobs[job.job_id] = job
                    return job, True
                existing.coalesced += 1
                self._coalesced += 1
                return existing, False
            if admit is not None:
                admit()
            self._jobs[job.job_id] = job
            return job, True

    def get(self, job_id: str) -> Optional["Job"]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List["Job"]:
        with self._lock:
            self._prune_locked()
            return list(self._jobs.values())

    def prune(self) -> int:
        """Apply the retention policy now; returns jobs pruned so far."""
        with self._lock:
            self._prune_locked()
            return self._pruned

    def _prune_locked(self) -> None:
        """Drop terminal jobs past the TTL or over the count cap.

        In-flight (pending/running) jobs are never touched. Reading
        ``state`` without the per-job lock is safe: terminal states are
        set *after* ``finished_at`` and never change again.
        """
        terminal = [
            (job.finished_at or 0.0, job_id)
            for job_id, job in self._jobs.items()
            if job.state in _REPLACEABLE
        ]
        doomed = set()
        if self.retention_seconds is not None:
            cutoff = time.time() - self.retention_seconds
            doomed.update(jid for at, jid in terminal if at < cutoff)
        if self.max_terminal is not None:
            excess = len(terminal) - len(doomed) - self.max_terminal
            if excess > 0:
                survivors = sorted(
                    item for item in terminal if item[1] not in doomed
                )
                doomed.update(jid for _at, jid in survivors[:excess])
        for job_id in doomed:
            del self._jobs[job_id]
        self._pruned += len(doomed)

    def counts(self) -> Dict[str, int]:
        """Jobs per state plus lifetime coalesced/pruned counts."""
        with self._lock:
            self._prune_locked()
            counts: Dict[str, int] = {
                "pending": 0, "running": 0, "done": 0, "failed": 0,
            }
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            counts["coalesced"] = self._coalesced
            counts["pruned"] = self._pruned
            return counts
