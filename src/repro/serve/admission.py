"""Admission control for ``repro serve``: stay up by saying no early.

Two independent gates protect the service under overload, both
answering HTTP ``429`` with a ``Retry-After`` hint instead of letting
work pile up until nothing finishes:

* a **bounded job queue** — the :class:`~repro.serve.jobqueue.JobQueue`
  refuses to enqueue a new *cold* job once ``max_pending`` jobs are
  already waiting for a worker (warm and coalesced submissions are
  never refused: they cost no simulation, so turning them away would
  only hurt);
* a **per-client token bucket** — each client address accrues
  ``rate`` submissions per second up to a burst of ``burst``; a client
  over its budget is refused before its body is even parsed.

Both gates raise :class:`AdmissionError`, which the HTTP layer maps to
``429`` plus a ``Retry-After`` header (seconds, rounded up).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Optional, Tuple


class AdmissionError(Exception):
    """Request refused by admission control (HTTP ``429``)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        #: Seconds the client should wait before retrying (>= 1).
        self.retry_after = max(1.0, float(retry_after))

    @property
    def retry_after_header(self) -> str:
        """The ``Retry-After`` header value (integer seconds)."""
        return str(int(math.ceil(self.retry_after)))


class TokenBucket:
    """One client's budget: ``rate`` tokens/second, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def try_take(self, now: float) -> Tuple[bool, float]:
        """Spend one token; ``(allowed, seconds_until_next_token)``."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate

    @property
    def idle(self) -> bool:
        """Fully refilled — the client has not submitted in a while."""
        return self.tokens >= self.burst


class RateLimiter:
    """Per-client token buckets keyed on client address.

    Thread-safe (one lock; bucket math is trivial). Buckets are pruned
    once the table exceeds ``max_clients``: any fully-refilled (idle)
    bucket carries no state worth keeping, so dropping it is lossless.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate limit must be positive, got {rate!r}")
        self.rate = float(rate)
        self.burst = max(1.0, float(burst if burst is not None else rate))
        self.max_clients = max_clients
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}

    def check(self, client: str) -> None:
        """Admit one submission from ``client`` or raise AdmissionError."""
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.max_clients:
                    self._prune_locked()
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[client] = bucket
            allowed, wait = bucket.try_take(now)
        if not allowed:
            raise AdmissionError(
                f"client {client} over the submission rate limit "
                f"({self.rate:g}/s, burst {self.burst:g})",
                retry_after=wait,
            )

    def _prune_locked(self) -> None:
        now = self._clock()
        idle = [
            client for client, b in self._buckets.items()
            if b.tokens + max(0.0, now - b.updated) * b.rate >= b.burst
        ]
        for client in idle:
            del self._buckets[client]

    def clients(self) -> int:
        with self._lock:
            return len(self._buckets)
