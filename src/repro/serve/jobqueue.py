"""The async job queue between the HTTP surface and the simulators.

Submissions become :class:`Job` objects with content-hash IDs (a run's
ID is its config's cache key; a sweep's ID is its grid key) and flow
through a bounded pool of worker threads. Each worker drives one job
at a time through an *executor* — by default the run executor ships
the simulation to a spawned worker process via the existing
:func:`repro.runner.executor.run_parallel` machinery, so the GIL-heavy
simulation never stalls the HTTP threads — and writes the finished
record back to the shared content-addressed cache, then enforces the
cache byte budget (:mod:`repro.serve.eviction`).

The three paths a submission can take:

* **warm** — the cache already holds the record: the job is born
  ``done`` with ``simulated: false``, no queue, no simulation,
  response in milliseconds;
* **coalesced** — an identical job is pending or running: the
  submission attaches to it (``coalesced`` counts how many riders the
  job picked up) and no second simulation starts;
* **cold** — the job enters the queue and a worker simulates it.

Executors are injectable (``run_executor``/``sweep_executor``) so
tests can count simulations or substitute canned results without
touching the queue's concurrency behavior.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.runner.cache import ResultCache, cache_key
from repro.runner.record import RunRecord
from repro.serve.coalesce import CoalescingRegistry
from repro.serve.eviction import enforce_budget
from repro.serve.schemas import RunRequest, SchemaError, SweepRequest

#: Job lifecycle states (JSON-facing strings).
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Sentinel shutting a worker thread down.
_STOP = object()

RunExecutor = Callable[[RunRequest], RunRecord]
SweepExecutor = Callable[[SweepRequest, ResultCache], Any]


@dataclass
class Job:
    """One submitted unit of work, polled via ``GET /v1/jobs/<id>``."""

    job_id: str
    kind: str  # "run" | "sweep"
    params: Dict[str, Any]
    state: str = PENDING
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: False when the result came straight from the cache (warm path or
    #: an all-warm sweep); True when this job ran a simulation.
    simulated: Optional[bool] = None
    #: Extra submissions this job absorbed (see coalesce.py).
    coalesced: int = 0
    result: Optional[Dict[str, Any]] = None
    error: str = ""
    done_event: threading.Event = field(default_factory=threading.Event)

    @property
    def elapsed_seconds(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - (self.started_at or self.submitted_at)

    def finish(self, result: Dict[str, Any], simulated: bool) -> None:
        self.result = result
        self.simulated = simulated
        self.state = DONE
        self.finished_at = time.time()
        self.done_event.set()

    def fail(self, error: str) -> None:
        self.error = error
        self.state = FAILED
        self.finished_at = time.time()
        self.done_event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (tests/clients)."""
        return self.done_event.wait(timeout)

    def to_jsonable(self, include_result: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "params": self.params,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_seconds": self.elapsed_seconds,
            "simulated": self.simulated,
            "coalesced": self.coalesced,
            "error": self.error,
        }
        if include_result:
            out["result"] = self.result
        return out


# ---------------------------------------------------------------------------
# Default executors: simulate via the spawn-based process machinery.
# ---------------------------------------------------------------------------


def subprocess_run_executor(request: RunRequest) -> RunRecord:
    """Simulate one experiment in a spawned worker process.

    ``jobs=2`` forces :func:`run_parallel` onto its process-pool path
    (one group → one spawned worker); the queue's worker thread only
    blocks on the future, keeping the HTTP threads responsive while
    the simulation burns CPU in another process.
    """
    from repro.runner.executor import plan_groups, run_parallel

    item = (request.exp_id, request.overrides or None)
    return run_parallel(plan_groups([item]), jobs=2)[0]


def inprocess_run_executor(request: RunRequest) -> RunRecord:
    """Simulate in this process (tests, and ``--jobs 0`` debugging)."""
    from repro.runner.executor import run_group

    return run_group([(request.exp_id, request.overrides or None)])[0]


def default_sweep_executor(request: SweepRequest, cache: ResultCache) -> Any:
    """Run one sweep through :func:`repro.api.sweep` (cache-aware)."""
    from repro import api

    return api.sweep(
        request.spec,
        axes=request.axes or None,
        jobs=request.jobs,
        cache=cache,
        force=request.force,
    )


# ---------------------------------------------------------------------------
# The queue.
# ---------------------------------------------------------------------------


class JobQueue:
    """Bounded worker pool with coalescing submission endpoints."""

    def __init__(
        self,
        workers: int = 2,
        cache: Optional[ResultCache] = None,
        cache_budget_bytes: Optional[int] = None,
        run_executor: Optional[RunExecutor] = None,
        sweep_executor: Optional[SweepExecutor] = None,
    ) -> None:
        self.workers = max(1, workers)
        self.cache = cache if cache is not None else ResultCache()
        self.cache_budget_bytes = cache_budget_bytes
        self.run_executor = run_executor or subprocess_run_executor
        self.sweep_executor = sweep_executor or default_sweep_executor
        self.registry = CoalescingRegistry()
        self.last_finished_at: Optional[float] = None
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._threads: list = []
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-serve-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0) -> None:
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()
        self._started = False

    def depth(self) -> int:
        """Jobs waiting for a worker (running jobs excluded)."""
        return self._queue.qsize()

    # -- submission --------------------------------------------------------

    def submit_run(self, request: RunRequest) -> Job:
        """Submit one experiment run; warm/coalesced/cold (see module doc)."""
        from repro.runner.api import resolve_config

        try:
            config = resolve_config(request.exp_id, request.overrides or None)
        except (KeyError, ValueError, TypeError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            raise SchemaError(str(message)) from exc

        job = Job(
            job_id=cache_key(config),
            kind="run",
            params={
                "experiment": request.exp_id,
                "overrides": request.overrides,
                "force": request.force,
            },
        )

        warm = None
        if not request.force:
            warm = self.cache.load(config)
        if warm is not None:
            job.started_at = job.submitted_at
            job.finish(warm.to_jsonable(), simulated=False)

        # A warm answer or a force re-run may displace an old finished
        # envelope under the same content hash; in-flight jobs are
        # always shared instead (one simulation, N clients).
        job, created = self.registry.add_or_share(
            job, replace_terminal=request.force or warm is not None
        )
        if created and job.state == PENDING:
            self._queue.put(job)
        return job

    def submit_sweep(self, request: SweepRequest) -> Job:
        """Submit one sensitivity sweep (always queued; the engine
        serves warm points from the cache internally)."""
        from repro.sweep import get_sweep

        try:
            spec = get_sweep(request.spec).with_axes(request.axes or None)
        except ValueError as exc:
            raise SchemaError(str(exc)) from exc

        job = Job(
            job_id=spec.grid_key(),
            kind="sweep",
            params={
                "spec": request.spec,
                "axes": request.axes,
                "jobs": request.jobs,
                "force": request.force,
            },
        )
        job, created = self.registry.add_or_share(
            job, replace_terminal=request.force
        )
        if created and job.state == PENDING:
            self._queue.put((job, request))
        return job

    # -- workers -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            if isinstance(item, tuple):
                job, request = item
            else:
                job, request = item, None
            if job.state != PENDING:
                continue
            job.state = RUNNING
            job.started_at = time.time()
            try:
                if job.kind == "run":
                    self._execute_run(job)
                else:
                    self._execute_sweep(job, request)
            except Exception as exc:  # noqa: BLE001 - jobs report, not crash
                job.fail(f"{type(exc).__name__}: {exc}")
            self.last_finished_at = time.time()

    def _execute_run(self, job: Job) -> None:
        request = RunRequest(
            exp_id=job.params["experiment"],
            overrides=job.params.get("overrides") or {},
            force=bool(job.params.get("force")),
        )
        record = self.run_executor(request)
        self.cache.store(record)
        self._enforce_budget()
        job.finish(record.to_jsonable(), simulated=True)

    def _execute_sweep(self, job: Job, request: Optional[SweepRequest]) -> None:
        if request is None:
            request = SweepRequest(
                spec=job.params["spec"],
                axes=job.params.get("axes") or {},
                jobs=job.params.get("jobs"),
                force=bool(job.params.get("force")),
            )
        result = self.sweep_executor(request, self.cache)
        payload = result.to_jsonable() if hasattr(result, "to_jsonable") else result
        simulated = True
        if isinstance(payload, dict):
            simulated = bool(payload.get("meta", {}).get("simulated", 1))
        self._enforce_budget()
        job.finish(payload, simulated=simulated)

    def _enforce_budget(self) -> None:
        if self.cache_budget_bytes is not None:
            enforce_budget(self.cache, self.cache_budget_bytes)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Queue-side numbers for ``/healthz``."""
        counts = self.registry.counts()
        return {
            "workers": self.workers,
            "depth": self.depth(),
            "jobs": {k: counts[k] for k in (PENDING, RUNNING, DONE, FAILED)},
            "coalesced": counts["coalesced"],
            "last_finished_at": self.last_finished_at,
        }
