"""The async job queue between the HTTP surface and the simulators.

Submissions become :class:`Job` objects with content-hash IDs (a run's
ID is its config's cache key; a sweep's ID is its grid key) and flow
through a bounded pool of worker threads. Each worker drives one job
at a time through an *executor* — by default the run executor ships
the simulation to a spawned worker process via the existing
:func:`repro.runner.executor.run_parallel` machinery, so the GIL-heavy
simulation never stalls the HTTP threads — and writes the finished
record back to the shared content-addressed cache, then enforces the
cache byte budget (:mod:`repro.serve.eviction`).

The three paths a submission can take:

* **warm** — the cache already holds the record: the job is born
  ``done`` with ``simulated: false``, no queue, no simulation,
  response in milliseconds;
* **coalesced** — an identical job is pending or running: the
  submission attaches to it (``coalesced`` counts how many riders the
  job picked up) and no second simulation starts;
* **cold** — the job enters the queue and a worker simulates it.
  Cold admission is bounded: once ``max_pending`` jobs are waiting,
  new cold jobs are refused with
  :class:`~repro.serve.admission.AdmissionError` (HTTP ``429``).

When the cache sits on a store that *coordinates writers*
(:class:`~repro.serve.store.SharedDirStore`, N server replicas on one
filesystem), a cold job additionally claims its key fleet-wide before
simulating: the claim loser waits for the winner's record to appear in
the shared store instead of burning a duplicate simulation — the
cross-replica analogue of in-process coalescing.

Shutdown is a graceful drain (:meth:`JobQueue.stop`): submissions are
refused with :class:`QueueShutdown` (HTTP ``503``), jobs still waiting
for a worker fail immediately with a "server shutting down" error so
clients unblock, and running jobs get ``timeout`` seconds to finish.

Executors are injectable (``run_executor``/``sweep_executor``) so
tests can count simulations or substitute canned results without
touching the queue's concurrency behavior.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.runner.cache import ResultCache, cache_key
from repro.runner.record import RunRecord
from repro.serve.admission import AdmissionError
from repro.serve.coalesce import CoalescingRegistry
from repro.serve.eviction import enforce_budget
from repro.serve.schemas import RunRequest, SchemaError, SweepRequest

#: Job lifecycle states (JSON-facing strings).
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Sentinel shutting a worker thread down.
_STOP = object()

RunExecutor = Callable[[RunRequest], RunRecord]
SweepExecutor = Callable[[SweepRequest, ResultCache], Any]


class QueueShutdown(Exception):
    """Submission refused because the queue is draining (HTTP ``503``)."""


@dataclass
class Job:
    """One submitted unit of work, polled via ``GET /v1/jobs/<id>``.

    State transitions and envelope serialization are guarded by a
    per-job lock, so an HTTP thread serializing the envelope mid-
    transition can never observe a torn state (``state: "done"`` with
    ``finished_at: null``). Within the lock, terminal fields are
    assigned *before* ``state``, so even lock-free readers (the
    registry's prune scan) see a consistent terminal envelope.
    """

    job_id: str
    kind: str  # "run" | "sweep"
    params: Dict[str, Any]
    state: str = PENDING
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: False when the result came straight from the cache (warm path,
    #: an all-warm sweep, or a peer replica's simulation); True when
    #: this job ran a simulation.
    simulated: Optional[bool] = None
    #: Extra submissions this job absorbed (see coalesce.py).
    coalesced: int = 0
    result: Optional[Dict[str, Any]] = None
    error: str = ""
    done_event: threading.Event = field(default_factory=threading.Event)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    @property
    def elapsed_seconds(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - (self.started_at or self.submitted_at)

    def try_start(self) -> bool:
        """Atomically move pending → running; False if already taken."""
        with self._lock:
            if self.state != PENDING:
                return False
            self.started_at = time.time()
            self.state = RUNNING
            return True

    def finish(self, result: Dict[str, Any], simulated: bool) -> None:
        with self._lock:
            self.result = result
            self.simulated = simulated
            self.finished_at = time.time()
            self.state = DONE
        self.done_event.set()

    def fail(self, error: str) -> None:
        with self._lock:
            self.error = error
            self.finished_at = time.time()
            self.state = FAILED
        self.done_event.set()

    def fail_if_pending(self, error: str) -> bool:
        """Fail the job only if no worker has started it (drain path)."""
        with self._lock:
            if self.state != PENDING:
                return False
            self.error = error
            self.finished_at = time.time()
            self.state = FAILED
        self.done_event.set()
        return True

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (tests/clients)."""
        return self.done_event.wait(timeout)

    def to_jsonable(self, include_result: bool = True) -> Dict[str, Any]:
        with self._lock:
            out: Dict[str, Any] = {
                "job_id": self.job_id,
                "kind": self.kind,
                "state": self.state,
                "params": self.params,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "elapsed_seconds": self.elapsed_seconds,
                "simulated": self.simulated,
                "coalesced": self.coalesced,
                "error": self.error,
            }
            if include_result:
                out["result"] = self.result
        return out


# ---------------------------------------------------------------------------
# Default executors: simulate via the spawn-based process machinery.
# ---------------------------------------------------------------------------


def subprocess_run_executor(request: RunRequest) -> RunRecord:
    """Simulate one experiment in a spawned worker process.

    ``jobs=2`` forces :func:`run_parallel` onto its process-pool path
    (one group → one spawned worker); the queue's worker thread only
    blocks on the future, keeping the HTTP threads responsive while
    the simulation burns CPU in another process.
    """
    from repro.runner.executor import plan_groups, run_parallel

    item = (request.exp_id, request.overrides or None)
    return run_parallel(plan_groups([item]), jobs=2)[0]


def inprocess_run_executor(request: RunRequest) -> RunRecord:
    """Simulate in this process (tests, and ``--jobs 0`` debugging)."""
    from repro.runner.executor import run_group

    return run_group([(request.exp_id, request.overrides or None)])[0]


def default_sweep_executor(request: SweepRequest, cache: ResultCache) -> Any:
    """Run one sweep through :func:`repro.api.sweep` (cache-aware)."""
    from repro import api

    return api.sweep(
        request.spec,
        axes=request.axes or None,
        jobs=request.jobs,
        cache=cache,
        force=request.force,
    )


# ---------------------------------------------------------------------------
# The queue.
# ---------------------------------------------------------------------------


class JobQueue:
    """Bounded worker pool with coalescing submission endpoints."""

    def __init__(
        self,
        workers: int = 2,
        cache: Optional[ResultCache] = None,
        cache_budget_bytes: Optional[int] = None,
        run_executor: Optional[RunExecutor] = None,
        sweep_executor: Optional[SweepExecutor] = None,
        max_pending: Optional[int] = None,
        retention_seconds: Optional[float] = 3600.0,
        max_terminal: Optional[int] = 1024,
        peer_poll_seconds: float = 0.2,
    ) -> None:
        self.workers = max(1, workers)
        self.cache = cache if cache is not None else ResultCache()
        self.cache_budget_bytes = cache_budget_bytes
        self.run_executor = run_executor or subprocess_run_executor
        self.sweep_executor = sweep_executor or default_sweep_executor
        self.max_pending = max_pending
        self.peer_poll_seconds = peer_poll_seconds
        self.registry = CoalescingRegistry(
            retention_seconds=retention_seconds, max_terminal=max_terminal
        )
        self.last_finished_at: Optional[float] = None
        self._avg_seconds: Optional[float] = None
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._threads: list = []
        self._started = False
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-serve-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful drain: refuse new work, fail the backlog, let
        running jobs finish (up to ``timeout`` seconds per worker).

        Jobs still waiting for a worker reach a terminal state *now*
        (failed, with a "server shutting down" error), so no client is
        left polling a job that will never run.
        """
        if not self._started:
            return
        self._stopping = True
        self._drain_pending()
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout)
        # A submission that passed admission just before the flag went
        # up may have enqueued behind the sentinels; fail it too.
        self._drain_pending()
        self._threads.clear()
        self._started = False

    def _drain_pending(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            job = item[0] if isinstance(item, tuple) else item
            job.fail_if_pending("server shutting down before this job started")

    def depth(self) -> int:
        """Jobs waiting for a worker (running jobs excluded)."""
        return self._queue.qsize()

    # -- admission ---------------------------------------------------------

    def _admit_cold(self) -> None:
        """Gate one cold job's entry into the queue.

        Runs under the registry lock (so refusal registers nothing);
        warm and coalesced submissions never reach this check.
        """
        if self._stopping:
            raise QueueShutdown(
                "server is shutting down; not accepting new jobs"
            )
        if self.max_pending is not None and self.depth() >= self.max_pending:
            raise AdmissionError(
                f"job queue full ({self.max_pending} jobs pending); "
                f"retry later",
                retry_after=self.retry_after_hint(),
            )

    def retry_after_hint(self) -> float:
        """Seconds until queue space plausibly frees up: the backlog
        divided across workers, priced at the recent mean job time."""
        per_job = self._avg_seconds if self._avg_seconds else 5.0
        return min(120.0, max(1.0, self.depth() * per_job / self.workers))

    # -- submission --------------------------------------------------------

    def submit_run(self, request: RunRequest) -> Job:
        """Submit one experiment run; warm/coalesced/cold (see module doc)."""
        from repro.runner.api import resolve_config

        try:
            config = resolve_config(request.exp_id, request.overrides or None)
        except (KeyError, ValueError, TypeError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            raise SchemaError(str(message)) from exc

        job = Job(
            job_id=cache_key(config),
            kind="run",
            params={
                "experiment": request.exp_id,
                "overrides": request.overrides,
                "force": request.force,
            },
        )

        warm = None
        if not request.force:
            warm = self.cache.load(config)
        if warm is not None:
            job.started_at = job.submitted_at
            job.finish(warm.to_jsonable(), simulated=False)

        # A warm answer or a force re-run may displace an old finished
        # envelope under the same content hash; in-flight jobs are
        # always shared instead (one simulation, N clients).
        job, created = self.registry.add_or_share(
            job,
            replace_terminal=request.force or warm is not None,
            admit=self._admit_cold if job.state == PENDING else None,
        )
        if created and job.state == PENDING:
            self._queue.put(job)
        return job

    def submit_sweep(self, request: SweepRequest) -> Job:
        """Submit one sensitivity sweep (always queued; the engine
        serves warm points from the cache internally)."""
        from repro.sweep import get_sweep

        try:
            spec = get_sweep(request.spec).with_axes(request.axes or None)
        except ValueError as exc:
            raise SchemaError(str(exc)) from exc

        job = Job(
            job_id=spec.grid_key(),
            kind="sweep",
            params={
                "spec": request.spec,
                "axes": request.axes,
                "jobs": request.jobs,
                "force": request.force,
            },
        )
        job, created = self.registry.add_or_share(
            job, replace_terminal=request.force, admit=self._admit_cold
        )
        if created and job.state == PENDING:
            self._queue.put((job, request))
        return job

    # -- workers -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            if isinstance(item, tuple):
                job, request = item
            else:
                job, request = item, None
            if not job.try_start():
                continue  # failed by a drain, or displaced
            try:
                if job.kind == "run":
                    self._execute_run(job)
                else:
                    self._execute_sweep(job, request)
            except Exception as exc:  # noqa: BLE001 - jobs report, not crash
                job.fail(f"{type(exc).__name__}: {exc}")
            self._note_finished(job)

    def _note_finished(self, job: Job) -> None:
        self.last_finished_at = time.time()
        elapsed = job.elapsed_seconds
        if elapsed is not None and job.simulated:
            self._avg_seconds = (
                elapsed if self._avg_seconds is None
                else 0.8 * self._avg_seconds + 0.2 * elapsed
            )

    def _execute_run(self, job: Job) -> None:
        from repro.runner.api import resolve_config

        request = RunRequest(
            exp_id=job.params["experiment"],
            overrides=job.params.get("overrides") or {},
            force=bool(job.params.get("force")),
        )
        config = resolve_config(request.exp_id, request.overrides or None)

        # While this job sat in the queue a peer replica may have
        # published the record; serve it instead of re-simulating.
        if not request.force:
            warm = self.cache.load(config)
            if warm is not None:
                job.finish(warm.to_jsonable(), simulated=False)
                return

        if self.cache.coordinates_writers:
            record, simulated = self._run_coordinated(config, request)
        else:
            record = self.run_executor(request)
            self.cache.store(record)
            simulated = True
        if simulated:
            self._enforce_budget()
        job.finish(record.to_jsonable(), simulated=simulated)

    def _run_coordinated(self, config, request: RunRequest):
        """One simulation fleet-wide: claim the key in the shared
        store, or wait for the claim holder's record."""
        while True:
            if self.cache.try_claim(config):
                try:
                    record = self.run_executor(request)
                    self.cache.store(record)
                finally:
                    self.cache.release_claim(config)
                return record, True
            if request.force:
                # force wants a *fresh* simulation from us; wait out the
                # peer's claim rather than serving whatever it stores.
                time.sleep(self.peer_poll_seconds)
                continue
            record = self._await_peer(config)
            if record is not None:
                return record, False
            # The claim vanished (or went stale) without a record —
            # the peer died; take over.

    def _await_peer(self, config) -> Optional[RunRecord]:
        """Poll the shared store while a peer's claim stands.

        Returns the peer's record, or ``None`` when the claim is gone
        (released or stale) and no record ever appeared.
        """
        ttl = self.cache.claim_ttl
        while True:
            record = self.cache.load(config)
            if record is not None:
                return record
            age = self.cache.claim_age(config)
            if age is None:
                # Released: one last look, then report no-record.
                return self.cache.load(config)
            if ttl is not None and age > ttl:
                return None  # orphaned claim; caller breaks it
            time.sleep(self.peer_poll_seconds)

    def _execute_sweep(self, job: Job, request: Optional[SweepRequest]) -> None:
        if request is None:
            request = SweepRequest(
                spec=job.params["spec"],
                axes=job.params.get("axes") or {},
                jobs=job.params.get("jobs"),
                force=bool(job.params.get("force")),
            )
        result = self.sweep_executor(request, self.cache)
        payload = result.to_jsonable() if hasattr(result, "to_jsonable") else result
        simulated = True
        if isinstance(payload, dict):
            simulated = bool(payload.get("meta", {}).get("simulated", 1))
        self._enforce_budget()
        job.finish(payload, simulated=simulated)

    def _enforce_budget(self) -> None:
        if self.cache_budget_bytes is not None:
            enforce_budget(self.cache, self.cache_budget_bytes)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Queue-side numbers for ``/healthz``."""
        counts = self.registry.counts()
        return {
            "workers": self.workers,
            "depth": self.depth(),
            "max_pending": self.max_pending,
            "stopping": self._stopping,
            "jobs": {k: counts[k] for k in (PENDING, RUNNING, DONE, FAILED)},
            "coalesced": counts["coalesced"],
            "retention": {
                "seconds": self.registry.retention_seconds,
                "max_terminal": self.registry.max_terminal,
                "pruned": counts["pruned"],
            },
            "last_finished_at": self.last_finished_at,
        }
