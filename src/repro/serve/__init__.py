"""``repro serve``: the harness as a long-running HTTP service.

The simulator becomes a backend: clients ``POST`` experiment and sweep
requests, get content-hash job IDs derived from the result cache's
keys, and poll (or long-poll) for results. Identical uncached requests
coalesce into one simulation per replica — and, on a shared store
(:class:`~repro.serve.store.SharedDirStore`), one simulation
*fleet-wide*; identical cached requests are answered from the
content-addressed store in milliseconds; the store itself is bounded
by a byte budget with stale-salt-first LRU eviction; admission control
(a bounded queue plus per-client token buckets) answers overload with
``429`` + ``Retry-After`` instead of falling over. See
``docs/serve.md`` and :mod:`repro.serve.server`.

>>> from repro import api
>>> server = api.serve(port=0, block=False)   # ephemeral port, background
>>> server.url
'http://127.0.0.1:...'
>>> server.stop()
"""

from repro.serve.admission import AdmissionError, RateLimiter, TokenBucket
from repro.serve.coalesce import CoalescingRegistry
from repro.serve.eviction import EvictionReport, enforce_budget, parse_bytes
from repro.serve.jobqueue import (
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    Job,
    JobQueue,
    QueueShutdown,
    inprocess_run_executor,
    subprocess_run_executor,
)
from repro.serve.schemas import (
    RunRequest,
    SchemaError,
    SweepRequest,
    parse_run_request,
    parse_sweep_request,
)
from repro.serve.server import ReproServer
from repro.serve.store import (
    STORE_KINDS,
    BlobStat,
    LocalDirStore,
    SharedDirStore,
    make_store,
)

__all__ = [
    "DONE",
    "FAILED",
    "PENDING",
    "RUNNING",
    "STORE_KINDS",
    "AdmissionError",
    "BlobStat",
    "CoalescingRegistry",
    "EvictionReport",
    "Job",
    "JobQueue",
    "LocalDirStore",
    "QueueShutdown",
    "RateLimiter",
    "ReproServer",
    "RunRequest",
    "SchemaError",
    "SharedDirStore",
    "SweepRequest",
    "TokenBucket",
    "enforce_budget",
    "inprocess_run_executor",
    "make_store",
    "parse_bytes",
    "parse_run_request",
    "parse_sweep_request",
    "subprocess_run_executor",
]
