"""Pluggable result stores: the filesystem seam under ``ResultCache``.

The content-addressed cache names every record by a pure function of
its configuration, which makes records *location-independent*: any
store that can hold named blobs can serve them. This module owns the
blob layer:

* :class:`LocalDirStore` — the original single-server layout, one JSON
  file per record in one directory;
* :class:`SharedDirStore` — the same layout hardened for N server
  replicas sharing one filesystem (NFS, a bind-mounted volume, ...):
  collision-free temp names feeding atomic ``os.replace`` publishes,
  tolerance for files vanishing mid-scan (a peer's eviction pass), and
  a *claim* protocol (``O_CREAT | O_EXCL`` lock files with a staleness
  TTL) that lets replicas agree on a single simulator per cache key —
  the cross-replica analogue of the in-process coalescing registry.

Both stores produce byte-identical record files — the store choice
never changes a cache key or a stored record.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union


@dataclass(frozen=True)
class BlobStat:
    """Size/age facts about one stored blob."""

    name: str
    bytes: int
    mtime: float


class LocalDirStore:
    """One directory of JSON blobs; the original cache layout.

    Suitable when exactly one server process owns the directory. Writes
    are atomic (temp file + ``os.replace``) so readers in *other*
    processes — e.g. a concurrent ``repro run`` — never observe a torn
    record, but there is no cross-writer coordination.
    """

    kind = "local"
    #: Whether :meth:`try_claim` actually arbitrates between writers.
    coordinates_writers = False

    def __init__(self, directory: Union[str, os.PathLike]) -> None:
        self.directory = Path(directory)

    # -- blob primitives ---------------------------------------------------

    def _path(self, name: str) -> Path:
        return self.directory / name

    def _tmp_path(self, name: str) -> Path:
        return self.directory / f"{name}.tmp.{os.getpid()}"

    def read(self, name: str) -> Optional[bytes]:
        """The blob's bytes, or ``None`` if absent (or just evicted)."""
        try:
            return self._path(name).read_bytes()
        except OSError:
            return None

    def write(self, name: str, data: bytes) -> Path:
        """Atomically publish ``data`` under ``name`` (temp + replace)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(name)
        tmp = self._tmp_path(name)
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        return path

    def delete(self, name: str) -> bool:
        try:
            self._path(name).unlink()
            return True
        except OSError:
            return False

    def touch(self, name: str) -> bool:
        """Bump the blob's mtime (LRU bookkeeping); False if absent."""
        try:
            os.utime(self._path(name), None)
            return True
        except OSError:
            return False

    def list_blobs(self) -> List[BlobStat]:
        """All ``*.json`` blobs, oldest mtime first.

        Tolerant of concurrent eviction: a file deleted between the
        directory scan and its ``stat`` is simply skipped.
        """
        if not self.directory.is_dir():
            return []
        out: List[BlobStat] = []
        for path in self.directory.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with a concurrent delete
            out.append(BlobStat(path.name, stat.st_size, stat.st_mtime))
        out.sort(key=lambda blob: (blob.mtime, blob.name))
        return out

    # -- claims ------------------------------------------------------------
    #
    # A claim says "I am about to compute this blob". The local store
    # has exactly one writer process, whose in-process coalescing
    # registry already guarantees one computation per key — so claims
    # trivially succeed and cost nothing.

    def try_claim(self, name: str) -> bool:
        return True

    def release_claim(self, name: str) -> None:
        return None

    def claim_age(self, name: str) -> Optional[float]:
        """Seconds since the claim was taken, or ``None`` if unclaimed."""
        return None


class SharedDirStore(LocalDirStore):
    """A directory shared by N server replicas on one filesystem.

    Same blob layout (and therefore byte-identical records) as
    :class:`LocalDirStore`, plus the coordination the multi-writer case
    needs:

    * temp names carry pid + thread id + a sequence number, so replicas
      and worker threads never collide before their ``os.replace``;
    * claims are real: ``<name>.lock`` files created with
      ``O_CREAT | O_EXCL`` (atomic on POSIX filesystems, including NFS
      for local-filesystem semantics), holding the claimant's pid/host;
      a claim older than ``claim_ttl`` seconds is presumed orphaned by
      a crashed replica and is broken by the next claimant.
    """

    kind = "shared"
    coordinates_writers = True

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        claim_ttl: float = 900.0,
    ) -> None:
        super().__init__(directory)
        self.claim_ttl = float(claim_ttl)
        self._tmp_seq = itertools.count()

    def _tmp_path(self, name: str) -> Path:
        return self.directory / (
            f"{name}.tmp.{os.getpid()}.{threading.get_ident()}"
            f".{next(self._tmp_seq)}"
        )

    def _claim_path(self, name: str) -> Path:
        return self.directory / f"{name}.lock"

    def try_claim(self, name: str) -> bool:
        """Atomically claim ``name``; breaks stale claims first."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._claim_path(name)
        for _ in range(2):  # second pass only after breaking a stale claim
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                age = self.claim_age(name)
                if age is not None and age > self.claim_ttl:
                    # The claimant is presumed dead; break its claim and
                    # race the other survivors for a fresh one.
                    try:
                        path.unlink()
                    except OSError:
                        pass
                    continue
                return False
            try:
                os.write(fd, json.dumps({
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                    "claimed_at": time.time(),
                }).encode("utf-8"))
            finally:
                os.close(fd)
            return True
        return False

    def release_claim(self, name: str) -> None:
        try:
            self._claim_path(name).unlink()
        except OSError:
            pass

    def claim_age(self, name: str) -> Optional[float]:
        try:
            return max(0.0, time.time() - self._claim_path(name).stat().st_mtime)
        except OSError:
            return None


#: ``--store`` choices for the CLI and :func:`make_store`.
STORE_KINDS = ("local", "shared")


def make_store(
    kind: str, directory: Union[str, os.PathLike], **kwargs
) -> LocalDirStore:
    """Build a store by kind name (``"local"`` or ``"shared"``)."""
    if kind == "local":
        return LocalDirStore(directory)
    if kind == "shared":
        return SharedDirStore(directory, **kwargs)
    raise ValueError(
        f"unknown store kind {kind!r}; choose from {STORE_KINDS}"
    )
