"""Common hardware model shared by both simulated machines.

Transcribes the paper's Tables 1 (common hardware), 2 (message-passing
machine), and 3 (shared-memory machine), and provides the structural
models — set-associative cache, FIFO TLB, write buffer — that both
machines are built from.
"""

from repro.arch.address import AddressRange, block_span, page_span
from repro.arch.cache import Cache, LineState
from repro.arch.costs import CostModel
from repro.arch.params import CommonParams, MachineParams, MpParams, SmParams
from repro.arch.tlb import Tlb
from repro.arch.write_buffer import WriteBuffer

__all__ = [
    "AddressRange",
    "Cache",
    "CommonParams",
    "CostModel",
    "LineState",
    "MachineParams",
    "MpParams",
    "SmParams",
    "Tlb",
    "WriteBuffer",
    "block_span",
    "page_span",
]
