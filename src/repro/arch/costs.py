"""Computation cost model.

The paper measures computation by directly executing instrumented SPARC
binaries. We substitute an explicit per-operation cost model: application
kernels perform their real arithmetic in numpy and charge cycles through
these rates. What the study needs from computation costs is that each
MP/SM program pair charges (nearly) the same amount for the same
algorithm — guaranteed here because both versions share one numeric core
and one cost model. Absolute rates are calibrated to a SPARC-class,
single-issue, 30 ns-cycle node.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for abstract operations on the simulated node."""

    fp_op_cycles: float = 3.0  # average FP add/mul incl. load/store slots
    fp_div_cycles: float = 12.0
    int_op_cycles: float = 1.0
    loop_iter_cycles: float = 2.0  # induction + branch per loop iteration
    call_cycles: float = 8.0  # procedure call/return overhead
    byte_copy_cycles: float = 0.25  # word-at-a-time copy, 4 bytes/cycle

    def flops(self, count: float) -> int:
        """Cycles for ``count`` floating-point operations."""
        return max(0, int(round(count * self.fp_op_cycles)))

    def divs(self, count: float) -> int:
        return max(0, int(round(count * self.fp_div_cycles)))

    def int_ops(self, count: float) -> int:
        return max(0, int(round(count * self.int_op_cycles)))

    def loop(self, iterations: float) -> int:
        """Loop bookkeeping for ``iterations`` iterations."""
        return max(0, int(round(iterations * self.loop_iter_cycles)))

    def calls(self, count: float) -> int:
        return max(0, int(round(count * self.call_cycles)))

    def copy(self, nbytes: float) -> int:
        """Memory-to-memory copy of ``nbytes`` (buffer management)."""
        return max(0, int(round(nbytes * self.byte_copy_cycles)))
