"""Address arithmetic: cache-block and page decomposition of byte ranges.

Simulated memory accesses are issued as byte ranges; the machines walk
the cache blocks (and TLB pages) a range covers. These helpers keep that
arithmetic in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class AddressRange:
    """A half-open byte range ``[start, start + length)``."""

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.length < 0:
            raise ValueError(f"invalid range: start={self.start} len={self.length}")

    @property
    def end(self) -> int:
        return self.start + self.length

    def blocks(self, block_bytes: int) -> Iterator[int]:
        """Block-aligned addresses of every cache block the range touches."""
        return block_span(self.start, self.length, block_bytes)

    def pages(self, page_bytes: int) -> Iterator[int]:
        """Page-aligned addresses of every page the range touches."""
        return page_span(self.start, self.length, page_bytes)


def block_span(start: int, length: int, block_bytes: int) -> Iterator[int]:
    """Yield block-aligned addresses covering ``[start, start+length)``."""
    if length <= 0:
        return
    first = start - (start % block_bytes)
    last = (start + length - 1) - ((start + length - 1) % block_bytes)
    for addr in range(first, last + 1, block_bytes):
        yield addr


def page_span(start: int, length: int, page_bytes: int) -> Iterator[int]:
    """Yield page-aligned addresses covering ``[start, start+length)``."""
    return block_span(start, length, page_bytes)


def block_run(start: int, length: int, block_bytes: int) -> range:
    """The addresses of :func:`block_span` as a C-level ``range``.

    Same aligned addresses in the same order; the ``range`` form gives
    the batched backend O(1) length and allocation-free iteration when
    probing a whole run of blocks at once.
    """
    if length <= 0:
        return range(0)
    first = start - (start % block_bytes)
    last = (start + length - 1) - ((start + length - 1) % block_bytes)
    return range(first, last + 1, block_bytes)


def align_up(value: int, alignment: int) -> int:
    """Smallest multiple of ``alignment`` that is >= ``value``."""
    remainder = value % alignment
    if remainder == 0:
        return value
    return value + alignment - remainder
