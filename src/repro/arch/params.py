"""Machine parameters, transcribed from the paper's Tables 1-3.

All times are in processor cycles (the paper assumes a 30 ns cycle).
Defaults reproduce the paper's configuration exactly; experiments may
override (e.g., the 1 MB-cache EM3D ablation of paper Table 16).

Beyond the paper's CM-5-era table, two *presets* re-ask the paper's
MP-vs-SM question on later hardware (ROADMAP scenario-diversity item):

* :meth:`MachineParams.multicore` — a multicore-era table (grounded in
  Hasta & Mutiara, PAPERS.md): cores share a die, so remote messages
  cross an on-chip interconnect in tens of cycles, while DRAM costs
  *more* cycles than in 1994 (the memory wall).
* :meth:`MachineParams.cluster` — a cluster-of-multicores with
  two-level communication cost (grounded in Task & Chauhan, PAPERS.md):
  ``cluster_size`` cores per node talk at ``intra_cluster_latency``;
  crossing nodes pays the full NIC + wire ``network_latency``.

``cluster_size=1`` / ``intra_cluster_latency=None`` are inert: both
machines then use the flat latency exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


@dataclass(frozen=True)
class CommonParams:
    """Paper Table 1: hardware characteristics common to both machines."""

    num_processors: int = 32
    cache_bytes: int = 256 * 1024
    cache_assoc: int = 4
    block_bytes: int = 32
    tlb_entries: int = 64
    page_bytes: int = 4096
    network_latency: int = 100  # cycles, remote message
    barrier_latency: int = 100  # cycles from last arrival
    local_miss_cycles: int = 11  # + replacement; excludes DRAM access
    dram_cycles: int = 10
    # Not in the paper's tables; documented assumption (software-loaded
    # TLB on a SPARC-like node). Only the shared-memory machine reports
    # TLB-miss time, matching the paper's tables.
    tlb_miss_cycles: int = 25
    # Two-level topology (cluster preset). cluster_size=1 means flat:
    # every distinct pair of processors is "remote" and pays
    # network_latency, exactly the paper's machine.
    cluster_size: int = 1
    intra_cluster_latency: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cache_bytes % (self.block_bytes * self.cache_assoc) != 0:
            raise ValueError("cache size must be a multiple of assoc * block")
        if self.page_bytes % self.block_bytes != 0:
            raise ValueError("page size must be a multiple of block size")
        if self.cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")

    def message_latency(self, src: int, dest: int) -> int:
        """Network cycles between two distinct processors.

        Flat machines (``intra_cluster_latency=None``) always pay
        ``network_latency``. Two-level machines pay the cheap on-node
        latency when both processors sit in the same cluster.
        """
        if (
            self.intra_cluster_latency is not None
            and src // self.cluster_size == dest // self.cluster_size
        ):
            return self.intra_cluster_latency
        return self.network_latency

    @property
    def cache_sets(self) -> int:
        return self.cache_bytes // (self.block_bytes * self.cache_assoc)

    @property
    def local_miss_total_cycles(self) -> int:
        """Full cost of a local miss: detection + DRAM (replacement extra)."""
        return self.local_miss_cycles + self.dram_cycles


@dataclass(frozen=True)
class MpParams:
    """Paper Table 2: the message-passing machine's network interface.

    Packets are 20 bytes, as on the CM-5 (the CMMD library uses 20-byte
    packets); we model them as 16 payload bytes plus a 4-byte tag/header.
    """

    replacement_cycles: int = 1  # infinite write buffer
    ni_status_cycles: int = 5
    ni_write_tag_dest_cycles: int = 5
    ni_send_5_words_cycles: int = 15  # including the stores
    ni_recv_5_words_cycles: int = 15  # including the loads
    packet_bytes: int = 20
    packet_payload_bytes: int = 16
    # Software overheads of the re-implemented CMAML/CMMD library (not in
    # the paper's tables; calibrated so library time lands in the paper's
    # reported 3-42% band — see DESIGN.md section 2.8).
    lib_send_packet_cycles: int = 70  # per-packet sender bookkeeping
    lib_recv_packet_cycles: int = 80  # per-packet handler bookkeeping
    lib_transfer_setup_cycles: int = 100  # per channel-write/send setup
    lib_handshake_cycles: int = 60  # per sync-send rendezvous leg
    lib_am_send_cycles: int = 25  # active-message injection bookkeeping
    lib_am_handler_cycles: int = 35  # active-message handler bookkeeping
    # Interrupt-driven delivery (the NI's interrupt mask): on a real
    # CM-5 a message interrupt traps to the kernel, which invokes the
    # user handler in a new register window. The paper's simulator
    # skips that cost (CMMD polls heavily); ours models it for programs
    # that do enable interrupts.
    interrupt_dispatch_cycles: int = 120

    @property
    def packet_header_bytes(self) -> int:
        return self.packet_bytes - self.packet_payload_bytes

    @property
    def send_packet_cycles(self) -> int:
        """NI cost to inject one packet: tag+dest write, then 5 words."""
        return self.ni_write_tag_dest_cycles + self.ni_send_5_words_cycles

    @property
    def recv_packet_cycles(self) -> int:
        """NI cost to drain one packet (5 word loads)."""
        return self.ni_recv_5_words_cycles


@dataclass(frozen=True)
class SmParams:
    """Paper Table 3: the shared-memory machine (Dir_nNB protocol)."""

    self_message_cycles: int = 10
    shared_miss_cycles: int = 19  # processor-side; + replacement
    invalidate_cycles: int = 3  # at the invalidated cache; + replacement
    replacement_private_cycles: int = 1
    replacement_shared_clean_cycles: int = 5
    replacement_shared_dirty_cycles: int = 13
    directory_base_cycles: int = 10
    directory_recv_block_cycles: int = 8
    directory_send_msg_cycles: int = 5
    directory_send_block_cycles: int = 8
    message_bytes: int = 40  # cache block + control information
    atomic_op_cycles: int = 5  # atomic swap ALU cost (assumption)
    directory_ack_cycles: int = 2  # directory occupancy per collected ack
    write_fault_detect_cycles: int = 5  # processor-side write-fault cost

    @property
    def control_only_bytes(self) -> int:
        """Wire size charged for a block-less protocol message."""
        return self.message_bytes

    @property
    def block_message_control_bytes(self) -> int:
        """Control portion of a block-carrying message (40 - 32 bytes)."""
        return self.message_bytes - 32


@dataclass(frozen=True)
class MachineParams:
    """Complete configuration for one simulated machine."""

    common: CommonParams = field(default_factory=CommonParams)
    mp: MpParams = field(default_factory=MpParams)
    sm: SmParams = field(default_factory=SmParams)

    @classmethod
    def paper(cls, num_processors: int = 32) -> "MachineParams":
        """The paper's exact configuration."""
        return cls(common=CommonParams(num_processors=num_processors))

    @classmethod
    def multicore(cls, num_processors: int = 32) -> "MachineParams":
        """A multicore-era table (Hasta & Mutiara grounding).

        Cores share a die: remote messages cross an on-chip mesh in
        ~30 cycles and barriers resolve on-chip, but a DRAM access —
        10 cycles in the paper's 30 ns world — costs ~150 core cycles
        behind a modern clock (the memory wall). Caches are larger and
        local-miss detection is a longer pipeline.
        """
        return cls(
            common=CommonParams(
                num_processors=num_processors,
                cache_bytes=1024 * 1024,
                network_latency=30,
                barrier_latency=30,
                local_miss_cycles=20,
                dram_cycles=150,
            )
        )

    @classmethod
    def cluster(cls, num_processors: int = 32) -> "MachineParams":
        """A cluster of multicores with two-level latency (Task & Chauhan).

        ``cluster_size`` cores per node keep the cheap on-chip latency
        of the multicore table among themselves; any message that
        crosses nodes pays a NIC + wire cost far above the CM-5's 100
        cycles (a few microseconds at a modern clock). The barrier
        spans nodes, so it pays the cross-node cost too.
        """
        return cls(
            common=CommonParams(
                num_processors=num_processors,
                cache_bytes=1024 * 1024,
                network_latency=600,
                barrier_latency=600,
                local_miss_cycles=20,
                dram_cycles=150,
                cluster_size=8,
                intra_cluster_latency=30,
            )
        )

    def with_cache_bytes(self, cache_bytes: int) -> "MachineParams":
        """Copy with a different cache size (EM3D Table 16 ablation)."""
        return replace(self, common=replace(self.common, cache_bytes=cache_bytes))

    def with_processors(self, num_processors: int) -> "MachineParams":
        return replace(
            self, common=replace(self.common, num_processors=num_processors)
        )


#: Named machine tables selectable via the ``preset=`` config channel.
MACHINE_PRESETS: Tuple[str, ...] = ("paper", "multicore", "cluster")


def machine_preset(name: str, num_processors: int = 32) -> MachineParams:
    """Resolve a preset name to its :class:`MachineParams`."""
    if name not in MACHINE_PRESETS:
        raise ValueError(
            f"unknown machine preset {name!r}; known: {list(MACHINE_PRESETS)}"
        )
    factory = getattr(MachineParams, name)
    return factory(num_processors=num_processors)
