"""Set-associative cache with random replacement (paper Table 1).

One structure serves both machines. The message-passing machine only
uses INVALID/PRESENT-style occupancy for local data; the shared-memory
machine additionally distinguishes SHARED (read-only) from EXCLUSIVE
(writable, dirty) lines for the Dir_nNB protocol.

Lookups are the simulator's single hottest operation (every simulated
block access probes the cache, and the overwhelming majority hit), so
the resident state is mirrored in one flat ``block_addr -> state`` dict:
a hit is a single dict probe plus a counter bump. The per-set dicts
remain the authority for occupancy and victim choice; both structures
are updated together on the (rare) insert/invalidate paths.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np


class LineState(enum.Enum):
    """Coherence state of a cache line."""

    INVALID = 0
    SHARED = 1  # read-only copy
    EXCLUSIVE = 2  # writable and dirty


_INVALID = LineState.INVALID


class CacheError(RuntimeError):
    """Raised on inconsistent cache manipulation."""


class Cache:
    """N-way set-associative, random replacement, write-allocate.

    Eviction notifications: ``on_evict(block_addr, state)`` is invoked for
    every line displaced by an insert, letting the owning machine issue
    write-backs (shared-memory) or charge replacement costs.
    """

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        block_bytes: int,
        rng: np.random.Generator,
        name: str = "cache",
    ) -> None:
        if size_bytes % (assoc * block_bytes) != 0:
            raise ValueError("cache size must divide into assoc * block_bytes")
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_bytes = block_bytes
        self.name = name
        self.num_sets = size_bytes // (assoc * block_bytes)
        self._rng = rng
        # Per set: dict block_addr -> LineState (len <= assoc).
        self._sets: List[Dict[int, LineState]] = [{} for _ in range(self.num_sets)]
        # Flat mirror of every resident line (the hit fast path).
        self._lines: Dict[int, LineState] = {}
        self.on_evict: Optional[Callable[[int, LineState], None]] = None
        # Instrumentation.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Bumped on every content mutation (insert/set_state/invalidate/
        # flush). A probe verdict computed at version V stays valid while
        # the version still reads V: hits never mutate content, so the
        # batched backend memoizes all-hit verdicts against this stamp.
        self.version = 0

    def _set_index(self, block_addr: int) -> int:
        return (block_addr // self.block_bytes) % self.num_sets

    def _aligned(self, block_addr: int) -> int:
        if block_addr % self.block_bytes != 0:
            raise CacheError(f"unaligned block address {block_addr:#x}")
        return block_addr

    def lookup(self, block_addr: int) -> LineState:
        """State of the block, counting a hit or miss."""
        state = self._lines.get(block_addr, _INVALID)
        if state is _INVALID:
            # Only aligned addresses are ever resident, so the alignment
            # check is needed (and paid) on this branch alone.
            if block_addr % self.block_bytes != 0:
                raise CacheError(f"unaligned block address {block_addr:#x}")
            self.misses += 1
        else:
            self.hits += 1
        return state

    def peek(self, block_addr: int) -> LineState:
        """State of the block without touching hit/miss counters."""
        self._aligned(block_addr)
        return self._lines.get(block_addr, _INVALID)

    def insert(
        self, block_addr: int, state: LineState
    ) -> Optional[Tuple[int, LineState]]:
        """Install a block, evicting a random victim if the set is full.

        Returns ``(victim_addr, victim_state)`` if a line was displaced,
        else None. The ``on_evict`` callback (if set) also fires.
        """
        self._aligned(block_addr)
        if state is LineState.INVALID:
            raise CacheError("cannot insert an INVALID line")
        self.version += 1
        line_set = self._sets[self._set_index(block_addr)]
        if block_addr in line_set:
            line_set[block_addr] = state
            self._lines[block_addr] = state
            return None
        victim: Optional[Tuple[int, LineState]] = None
        if len(line_set) >= self.assoc:
            candidates = list(line_set.keys())
            victim_addr = candidates[int(self._rng.integers(len(candidates)))]
            victim = (victim_addr, line_set.pop(victim_addr))
            del self._lines[victim_addr]
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(*victim)
        line_set[block_addr] = state
        self._lines[block_addr] = state
        return victim

    def set_state(self, block_addr: int, state: LineState) -> None:
        """Change the state of a present line (e.g., SHARED -> EXCLUSIVE)."""
        self._aligned(block_addr)
        line_set = self._sets[self._set_index(block_addr)]
        if block_addr not in line_set:
            raise CacheError(f"block {block_addr:#x} not present in {self.name}")
        if state is LineState.INVALID:
            raise CacheError("use invalidate() to remove a line")
        self.version += 1
        line_set[block_addr] = state
        self._lines[block_addr] = state

    def invalidate(self, block_addr: int) -> LineState:
        """Remove a line; returns its prior state (INVALID if absent)."""
        self._aligned(block_addr)
        line_set = self._sets[self._set_index(block_addr)]
        prior = line_set.pop(block_addr, _INVALID)
        if prior is not _INVALID:
            self.version += 1
            del self._lines[block_addr]
        return prior

    def run_states(self, blocks) -> Optional[List[LineState]]:
        """Vectorized probe: states of a whole run of blocks, or None.

        Returns the per-block states only if *every* block is resident;
        a single absent block returns None immediately. No hit/miss
        counters are touched — the batched backend probes first and, on
        an all-hit run, commits ``hits += len(run)`` in one bump (the
        exact count the scalar :meth:`lookup` loop would have produced).
        """
        get = self._lines.get
        states: List[LineState] = []
        append = states.append
        for block in blocks:
            state = get(block)
            if state is None:
                return None
            append(state)
        return states

    def run_resident(self, blocks) -> bool:
        """Vectorized probe: True if every block of the run is resident.

        Counter-neutral, like :meth:`run_states`; the read-only variant
        skips materializing the state list.
        """
        get = self._lines.get
        for block in blocks:
            if get(block) is None:
                return False
        return True

    def resident_blocks(self) -> int:
        """Total lines currently valid (for tests and sanity checks)."""
        return len(self._lines)

    def flush(self) -> None:
        """Drop every line without eviction callbacks (test helper)."""
        self.version += 1
        for line_set in self._sets:
            line_set.clear()
        self._lines.clear()
