"""Fully associative FIFO TLB (paper Table 1: 64 entries, 4 KB pages)."""

from __future__ import annotations

from collections import OrderedDict


class Tlb:
    """Fully associative translation buffer with FIFO replacement.

    FIFO (not LRU): a hit does not refresh an entry's position, matching
    the paper's "FIFO replacement".
    """

    def __init__(self, entries: int, page_bytes: int) -> None:
        if entries <= 0:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self.page_bytes = page_bytes
        self._fifo: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _page_of(self, addr: int) -> int:
        return addr - (addr % self.page_bytes)

    def access(self, addr: int) -> bool:
        """Touch the page containing ``addr``; True on hit, False on miss.

        A miss installs the page, evicting the oldest entry if full.
        """
        page = self._page_of(addr)
        if page in self._fifo:
            self.hits += 1
            return True
        self.misses += 1
        if len(self._fifo) >= self.entries:
            self._fifo.popitem(last=False)
        self._fifo[page] = None
        return False

    def contains(self, addr: int) -> bool:
        """Whether the page of ``addr`` is resident (no counter update)."""
        return self._page_of(addr) in self._fifo

    def flush(self) -> None:
        """Drop all translations."""
        self._fifo.clear()
