"""Fully associative FIFO TLB (paper Table 1: 64 entries, 4 KB pages)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class Tlb:
    """Fully associative translation buffer with FIFO replacement.

    FIFO (not LRU): a hit does not refresh an entry's position, matching
    the paper's "FIFO replacement". Hits are the simulator's common case
    and cost one masked address computation plus a dict probe.
    """

    def __init__(self, entries: int, page_bytes: int) -> None:
        if entries <= 0:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self.page_bytes = page_bytes
        # Page alignment by mask when the page size is a power of two
        # (it always is in practice), by modulo otherwise.
        self._page_mask: Optional[int] = (
            ~(page_bytes - 1) if page_bytes & (page_bytes - 1) == 0 else None
        )
        self._fifo: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        # Bumped whenever the resident set changes (miss-install, flush).
        # FIFO hits do not refresh positions, so a residency verdict
        # computed at version V stays valid while the version reads V.
        self.version = 0

    def _page_of(self, addr: int) -> int:
        if self._page_mask is not None:
            return addr & self._page_mask
        return addr - (addr % self.page_bytes)

    def access(self, addr: int) -> bool:
        """Touch the page containing ``addr``; True on hit, False on miss.

        A miss installs the page, evicting the oldest entry if full.
        """
        mask = self._page_mask
        if mask is not None:
            page = addr & mask
        else:
            page = addr - (addr % self.page_bytes)
        fifo = self._fifo
        if page in fifo:
            self.hits += 1
            return True
        self.misses += 1
        self.version += 1
        if len(fifo) >= self.entries:
            fifo.popitem(last=False)
        fifo[page] = None
        return False

    def contains(self, addr: int) -> bool:
        """Whether the page of ``addr`` is resident (no counter update)."""
        return self._page_of(addr) in self._fifo

    def run_resident(self, addrs) -> bool:
        """Vectorized probe: True if every addr's page is resident.

        Counter-neutral: the batched backend probes a whole run first
        and, when everything hits, commits ``hits += len(run)`` in one
        bump — the exact count the scalar :meth:`access` loop would
        have produced. Any miss returns False with nothing installed.
        """
        fifo = self._fifo
        mask = self._page_mask
        if mask is not None:
            for addr in addrs:
                if addr & mask not in fifo:
                    return False
        else:
            page_bytes = self.page_bytes
            for addr in addrs:
                if addr - (addr % page_bytes) not in fifo:
                    return False
        return True

    def flush(self) -> None:
        """Drop all translations."""
        self.version += 1
        self._fifo.clear()
