"""Write buffering: the paper's infinite buffer plus relaxed store buffers.

Both machines drain dirty *private* lines through an infinite write
buffer at a cost of 1 cycle; the shared-memory machine bypasses the
buffer for shared lines to preserve consistency (5 cycles clean,
13 cycles dirty, per Table 3). The buffer never fills, so it is pure
accounting — retained as a distinct component for fidelity and for the
event counts it provides.

The relaxed-consistency extension (``consistency="tso"|"pc"``) puts a
*semantic* per-processor store buffer in front of the Dir_nNB protocol:
:class:`StoreBuffer` holds retired-but-uncommitted shared stores, whose
values become globally visible only when the drain process commits them
to memory through a real coherence transaction. Two ordering policies:

* ``"fifo"`` — total store order (TSO): entries commit strictly in
  program order; only the head is ever eligible.
* ``"relaxed"`` — partition consistency (Cheng/Higham/Kawash): entries
  to the *same* location still commit in program order (per-location
  FIFO, so CoWW holds), but stores to different locations may commit in
  any order. Cross-location choice is driven by a per-entry retirement
  delay drawn from a seeded RNG stream, keeping runs reproducible.

The data structure is policy only — it schedules nothing and touches no
memory. The shared-memory drain process (:mod:`repro.sm.relaxed`) owns
the timing and the protocol transactions.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

#: The memory-consistency models the shared-memory machine implements.
#: ``sc`` is the paper's sequentially consistent baseline (no buffer at
#: all — bit-identical to the pre-relaxation code path).
MEMORY_MODELS = ("sc", "tso", "pc")


class WriteBuffer:
    """Accounting model of an infinite write buffer."""

    def __init__(self, drain_cycles: int = 1) -> None:
        self.drain_cycles = drain_cycles
        self.entries_accepted = 0
        self.bytes_accepted = 0

    def accept(self, nbytes: int) -> int:
        """Buffer a dirty private line; returns the cycle cost (constant)."""
        self.entries_accepted += 1
        self.bytes_accepted += nbytes
        return self.drain_cycles


class PendingStore:
    """One retired-but-uncommitted store held in a :class:`StoreBuffer`.

    Either a contiguous range write (``indices is None``; ``values`` may
    be None for a protocol-only write) or a scatter (``indices`` holds
    the element indices). ``lo``/``hi`` bound the touched elements for
    conflict detection; scatters use the conservative [min, max] hull.
    """

    __slots__ = ("region", "start", "indices", "values", "seq", "ready_time",
                 "lo", "hi")

    def __init__(self, region, start, indices, values, seq, ready_time):
        self.region = region
        self.start = start
        self.indices = indices
        self.values = values
        self.seq = seq
        self.ready_time = ready_time
        if indices is None:
            self.lo = start
            self.hi = start + (values.size if values is not None else 1)
        else:
            self.lo = int(indices.min())
            self.hi = int(indices.max()) + 1

    def conflicts(self, other: "PendingStore") -> bool:
        """Do the two entries touch overlapping elements of one region?"""
        return (self.region is other.region
                and self.lo < other.hi and other.lo < self.hi)

    def describe(self) -> str:
        kind = "scatter" if self.indices is not None else "range"
        return (f"{kind} {self.region.name}[{self.lo}:{self.hi}] "
                f"seq={self.seq} ready={self.ready_time}")


class StoreBuffer:
    """Per-processor FIFO of retired, not-yet-committed shared stores."""

    def __init__(
        self,
        ordering: str = "fifo",
        rng: Optional[np.random.Generator] = None,
        delay_bands: Tuple[Tuple[int, int], ...] = ((0, 0),),
    ) -> None:
        if ordering not in ("fifo", "relaxed"):
            raise ValueError(f"unknown store-buffer ordering {ordering!r}")
        for lo, hi in delay_bands:
            if not 0 <= lo <= hi:
                raise ValueError(f"bad delay band ({lo}, {hi})")
        self.ordering = ordering
        self.delay_bands = tuple(delay_bands)
        self._rng = rng
        self._entries: List[PendingStore] = []  # program order
        self._seq = 0
        self._empty_callbacks: List[Callable[[], None]] = []
        # Instrumentation.
        self.pushes = 0
        self.commits = 0
        self.forwards = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Tuple[PendingStore, ...]:
        """Pending entries in program order (oldest first)."""
        return tuple(self._entries)

    # -- retiring stores ---------------------------------------------------

    def _ready_time(self, now: int) -> int:
        """Earliest commit-eligibility instant for a store retiring now.

        Each entry draws a residency from ``delay_bands``: one band
        chosen uniformly, then a uniform delay inside it. Residency
        models buffer occupancy before the commit transaction issues —
        it is what makes relaxation observable at all (an eager drain's
        GETX is exactly as fast as a racing load's GETS, so the commit
        would always win the race). A *multi-band* profile gives the
        bimodal mix relaxed hardware shows — most stores commit
        promptly, some linger behind buffer backpressure — and the
        short-vs-long asymmetry between two entries is what produces
        cross-location commit reorder under the relaxed ordering.
        """
        bands = self.delay_bands
        if len(bands) == 1 and bands[0][0] == bands[0][1]:
            return now + bands[0][0]
        rng = self._rng
        if rng is None:
            return now + bands[0][0]
        lo, hi = bands[int(rng.integers(len(bands)))] if len(bands) > 1 else bands[0]
        return now + (lo if lo == hi else int(rng.integers(lo, hi + 1)))

    def push_range(
        self,
        region,
        start: int,
        values: Optional[np.ndarray],
        now: int,
    ) -> PendingStore:
        """Retire a contiguous store into the buffer."""
        entry = PendingStore(
            region, start, None, values, self._seq, self._ready_time(now)
        )
        self._seq += 1
        self._entries.append(entry)
        self.pushes += 1
        self.max_depth = max(self.max_depth, len(self._entries))
        return entry

    def push_scatter(
        self, region, indices: np.ndarray, values: np.ndarray, now: int
    ) -> PendingStore:
        """Retire an indexed store into the buffer."""
        entry = PendingStore(
            region, None, np.asarray(indices, dtype=np.int64),
            values, self._seq, self._ready_time(now),
        )
        self._seq += 1
        self._entries.append(entry)
        self.pushes += 1
        self.max_depth = max(self.max_depth, len(self._entries))
        return entry

    # -- drain policy ------------------------------------------------------

    def next_entry(self) -> Optional[PendingStore]:
        """The entry the drain should commit next, or None when empty.

        FIFO ordering always nominates the head. Relaxed ordering
        nominates the *eligible* entry (no earlier conflicting entry,
        preserving per-location program order) with the earliest
        ``ready_time``, breaking ties by program order.
        """
        if not self._entries:
            return None
        if self.ordering == "fifo":
            return self._entries[0]
        best = None
        for i, entry in enumerate(self._entries):
            if any(self._entries[j].conflicts(entry) for j in range(i)):
                continue
            if best is None or (entry.ready_time, entry.seq) < (
                best.ready_time, best.seq
            ):
                best = entry
        return best

    def is_oldest_conflicting(self, entry: PendingStore) -> bool:
        """Would committing ``entry`` now preserve per-location FIFO?

        True iff no earlier pending entry touches overlapping elements —
        the CoWW/coherence-order invariant the checker enforces on every
        commit, under both orderings.
        """
        for other in self._entries:
            if other.seq >= entry.seq:
                return True
            if other.conflicts(entry):
                return False
        return True

    def remove(self, entry: PendingStore) -> None:
        """Drop a committed entry; fires empty callbacks when drained dry."""
        self._entries.remove(entry)
        self.commits += 1
        if not self._entries:
            callbacks, self._empty_callbacks = self._empty_callbacks, []
            for callback in callbacks:
                callback()

    def on_empty(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` once the buffer next drains dry (now if empty)."""
        if not self._entries:
            callback()
        else:
            self._empty_callbacks.append(callback)

    # -- read-own-write forwarding ----------------------------------------

    def has_pending_for(self, region) -> bool:
        for entry in self._entries:
            if entry.region is region:
                return True
        return False

    def apply_pending(
        self, region, start: int, stop: int, base: np.ndarray
    ) -> np.ndarray:
        """``base`` (committed values of [start, stop)) with this
        processor's pending stores applied in program order — the value
        a TSO/PC load must return (read-own-write forwarding). Returns
        ``base`` itself when nothing overlaps; a copy otherwise."""
        out = base
        for entry in self._entries:
            if entry.region is not region or entry.values is None:
                continue
            if entry.indices is None:
                lo = max(start, entry.start)
                hi = min(stop, entry.start + entry.values.size)
                if lo >= hi:
                    continue
                if out is base:
                    out = base.copy()
                out[lo - start:hi - start] = entry.values[
                    lo - entry.start:hi - entry.start
                ]
                self.forwards += 1
            else:
                mask = (entry.indices >= start) & (entry.indices < stop)
                if not mask.any():
                    continue
                if out is base:
                    out = base.copy()
                out[entry.indices[mask] - start] = entry.values[mask]
                self.forwards += 1
        return out

    def apply_pending_gather(
        self, region, indices: np.ndarray, base: np.ndarray
    ) -> np.ndarray:
        """Gather-read variant of :meth:`apply_pending`."""
        out = base
        indices = np.asarray(indices, dtype=np.int64)
        for entry in self._entries:
            if entry.region is not region or entry.values is None:
                continue
            if entry.indices is None:
                mask = (indices >= entry.start) & (
                    indices < entry.start + entry.values.size
                )
                if not mask.any():
                    continue
                if out is base:
                    out = base.copy()
                out[mask] = entry.values[indices[mask] - entry.start]
                self.forwards += 1
            else:
                # Apply the scatter's writes in their own order so the
                # last write to a repeated index wins.
                hit = False
                for j, idx in enumerate(entry.indices):
                    where = indices == idx
                    if where.any():
                        if out is base:
                            out = base.copy()
                        out[where] = entry.values[j]
                        hit = True
                if hit:
                    self.forwards += 1
        return out
