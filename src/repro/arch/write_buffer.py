"""Infinite write buffer (paper Tables 2 and 3).

Both machines drain dirty *private* lines through an infinite write
buffer at a cost of 1 cycle; the shared-memory machine bypasses the
buffer for shared lines to preserve consistency (5 cycles clean,
13 cycles dirty, per Table 3). The buffer never fills, so it is pure
accounting — retained as a distinct component for fidelity and for the
event counts it provides.
"""

from __future__ import annotations


class WriteBuffer:
    """Accounting model of an infinite write buffer."""

    def __init__(self, drain_cycles: int = 1) -> None:
        self.drain_cycles = drain_cycles
        self.entries_accepted = 0
        self.bytes_accepted = 0

    def accept(self, nbytes: int) -> int:
        """Buffer a dirty private line; returns the cycle cost (constant)."""
        self.entries_accepted += 1
        self.bytes_accepted += nbytes
        return self.drain_cycles
