"""Hardware barrier shared by both machines (paper Table 1).

Both simulated machines provide a CM-5-like hardware barrier that
releases all participants 100 cycles after the last arrival. The barrier
is reusable (successive barrier episodes are independent rounds).
"""

from __future__ import annotations

from typing import Generator

from repro.sim.engine import Engine
from repro.sim.events import SimEvent
from repro.sim.process import Wait


class HardwareBarrier:
    """All-processor barrier with a fixed release latency."""

    def __init__(self, engine: Engine, participants: int, latency: int) -> None:
        if participants <= 0:
            raise ValueError("barrier needs at least one participant")
        self.engine = engine
        self.participants = participants
        self.latency = latency
        self.rounds_completed = 0
        self._arrived = 0
        self._round_event = SimEvent(name="barrier.round0")

    def arrive(self) -> Generator:
        """Generator subroutine: enter the barrier, resume on release.

        Returns the number of cycles this participant waited (arrival to
        release), which the caller charges to its barrier category.
        """
        arrival_time = self.engine.now
        self._arrived += 1
        event = self._round_event
        if self._arrived == self.participants:
            # Last arrival: release everyone `latency` cycles from now and
            # open a fresh round for the next episode.
            self._arrived = 0
            self.rounds_completed += 1
            self._round_event = SimEvent(
                name=f"barrier.round{self.rounds_completed}"
            )
            self.engine.schedule(self.latency, lambda: event.fire(None))
        yield Wait(event)
        return self.engine.now - arrival_time
