"""Synchronization primitives for simulated processes.

``SimEvent`` is a one-shot broadcast event carrying a value — the basic
completion signal for protocol transactions (a cache-miss reply, a message
arrival, a barrier release). ``Gate`` is a reusable level-triggered
condition used for spin-wait modeling: a waiter parks until the gate is
pulsed, re-checks its predicate, and parks again if unsatisfied.
"""

from __future__ import annotations

from typing import Any, Callable, List


class SimEvent:
    """One-shot event: fires once with a value, releasing all waiters.

    Waiters registered after the event has fired are resumed immediately
    (on the next engine step) with the stored value.
    """

    __slots__ = ("_callbacks", "_value", "fired", "name")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.fired = False
        self._value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def value(self) -> Any:
        """Value the event fired with (None before firing)."""
        return self._value

    def fire(self, value: Any = None) -> None:
        """Fire the event, delivering ``value`` to every waiter."""
        if self.fired:
            raise RuntimeError(f"SimEvent {self.name!r} fired twice")
        self.fired = True
        self._value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for callback in callbacks:
                callback(value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(value)`` when the event fires (or now if fired)."""
        if self.fired:
            callback(self._value)
        else:
            self._callbacks.append(callback)


class Gate:
    """Reusable pulse: every pulse wakes all currently parked waiters.

    Unlike :class:`SimEvent`, a gate never stays fired; a waiter that
    arrives between pulses parks until the next pulse. This models
    spinning on a cached flag efficiently: the spinner parks on the gate
    attached to its flag's cache line and is pulsed when an invalidation
    (i.e., a remote write) arrives, at which point it re-reads the flag.
    """

    __slots__ = ("_waiters", "name", "pulses")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.pulses = 0
        self._waiters: List[Callable[[], None]] = []

    def pulse(self) -> None:
        """Wake every parked waiter."""
        self.pulses += 1
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter()

    def park(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to run on the next pulse."""
        self._waiters.append(callback)

    def waiting(self) -> int:
        """Number of parked waiters."""
        return len(self._waiters)
