"""Named, reproducible random-number streams.

Every source of randomness in the reproduction — cache replacement
victims, EM3D graph generation, synthetic workload data — draws from a
stream derived deterministically from ``(experiment seed, stream name)``.
Two runs with the same seed are bit-identical regardless of the order in
which streams are first touched.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RngStreams:
    """Factory for independent, deterministically seeded RNG streams."""

    def __init__(self, seed: int = 1994) -> None:
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(self._derive(name))
            self._streams[name] = generator
        return generator

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def fork(self, name: str) -> "RngStreams":
        """A child factory whose streams are independent of the parent's."""
        return RngStreams(self._derive(f"fork:{name}"))
