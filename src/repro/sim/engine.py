"""Event-queue core of the discrete-event simulator.

The engine maintains a binary heap of ``(time, sequence, action)`` entries.
Ties in time are broken by insertion order, which makes every simulation
fully deterministic: the same program and seed always produce the same
event interleaving and the same cycle counts.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for fatal conditions inside the simulation kernel."""


class ScheduledAction:
    """Handle for a scheduled action; allows cancellation.

    Cancellation is lazy: the heap entry stays in place but is skipped
    when popped.
    """

    __slots__ = ("action", "cancelled", "time")

    def __init__(self, time: int, action: Callable[[], None]) -> None:
        self.time = time
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the action from running when its time arrives."""
        self.cancelled = True


class Engine:
    """Deterministic discrete-event engine measured in processor cycles."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: List[Tuple[int, int, ScheduledAction]] = []
        self._running = False
        self._stop_requested = False

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def schedule(self, delay: int, action: Callable[[], None]) -> ScheduledAction:
        """Schedule ``action`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        handle = ScheduledAction(self._now + delay, action)
        heapq.heappush(self._heap, (handle.time, self._seq, handle))
        self._seq += 1
        return handle

    def schedule_at(self, time: int, action: Callable[[], None]) -> ScheduledAction:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        return self.schedule(time - self._now, action)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current action."""
        self._stop_requested = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: if given, stop once simulation time would pass this value.
            max_events: if given, stop after this many actions (a guard
                against runaway simulations in tests).

        Returns:
            The number of actions executed.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        executed = 0
        try:
            while self._heap:
                if self._stop_requested:
                    break
                if max_events is not None and executed >= max_events:
                    break
                time, _seq, handle = heapq.heappop(self._heap)
                if handle.cancelled:
                    continue
                if until is not None and time > until:
                    # Put it back; the caller may resume later.
                    heapq.heappush(self._heap, (time, _seq, handle))
                    self._now = until
                    break
                self._now = time
                handle.action()
                executed += 1
        finally:
            self._running = False
        return executed

    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled actions."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)
