"""Event-queue core of the discrete-event simulator.

The engine keeps two structures: a binary heap of ``(time, sequence,
action)`` entries for *future* events, and a FIFO "due lane" for events
scheduled at the current simulation time (``delay == 0``). Ties in time
are broken by insertion order, which makes every simulation fully
deterministic: the same program and seed always produce the same event
interleaving and the same cycle counts.

The due lane preserves that contract without paying heap costs for the
kernel's most common operation (a zero-delay wake-up): it only ever
holds entries created *at* the current time, which by construction were
scheduled after every heap entry that shares that timestamp — so heap
entries due now drain first, then the lane in FIFO order, exactly the
(time, sequence) order the heap alone would have produced.

Two entry shapes share the queues. :meth:`Engine.schedule` wraps the
action in a cancellable :class:`ScheduledAction` handle; the internal
:meth:`Engine._schedule_step` used by the process layer enqueues the
bare callable — a process never cancels its own continuation, so the
hot path allocates nothing per step. Cancellation of handles is lazy
(the entry stays in place and is skipped when popped), but the engine
counts cancelled entries and compacts the heap once they outnumber the
live ones, so ``pending()`` is O(1) and the heap never holds more than
~half garbage.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple, Union


class SimulationError(RuntimeError):
    """Raised for fatal conditions inside the simulation kernel."""


#: Where a ScheduledAction currently lives (for cancellation accounting).
_GONE, _HEAP, _DUE = 0, 1, 2


class ScheduledAction:
    """Handle for a scheduled action; allows cancellation.

    Cancellation is lazy: the queue entry stays in place but is skipped
    when popped. The owning engine is told so it can keep its live-entry
    count exact and compact the heap when cancelled entries pile up.
    """

    __slots__ = ("action", "cancelled", "time", "_engine", "_where")

    def __init__(self, time: int, action: Callable[[], None]) -> None:
        self.time = time
        self.action = action
        self.cancelled = False
        self._engine: Optional["Engine"] = None
        self._where = _GONE

    def cancel(self) -> None:
        """Prevent the action from running when its time arrives."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None and self._where != _GONE:
            self._engine._note_cancel(self._where)


#: Queue entries: a cancellable handle or a bare continuation callable.
_Entry = Union[ScheduledAction, Callable[[], None]]


class Engine:
    """Deterministic discrete-event engine measured in processor cycles."""

    __slots__ = (
        "_now",
        "_seq",
        "_heap",
        "_due",
        "_running",
        "_stop_requested",
        "_heap_cancelled",
        "_due_cancelled",
        "_executed",
        "_inline",
        "_max_events",
        "_until",
        "events_executed",
        "dispatch_hook",
    )

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: List[Tuple[int, int, _Entry]] = []
        self._due: Deque[_Entry] = deque()
        self._running = False
        self._stop_requested = False
        self._heap_cancelled = 0
        self._due_cancelled = 0
        self._executed = 0
        self._inline = 0
        self._max_events: Optional[int] = None
        self._until: Optional[int] = None
        #: Lifetime count of executed actions across all run() calls
        #: (inline process steps included); benchmarks read this.
        self.events_executed = 0
        #: Observability hook ``hook(now)`` called after every dispatched
        #: action. None (the default) keeps run() on the fast loop; the
        #: tracer sets it, accepting the general loop's bookkeeping cost.
        self.dispatch_hook: Optional[Callable[[int], None]] = None

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def schedule(self, delay: int, action: Callable[[], None]) -> ScheduledAction:
        """Schedule ``action`` to run ``delay`` cycles from now."""
        if delay <= 0:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule into the past (delay={delay})"
                )
            handle = ScheduledAction(self._now, action)
            handle._engine = self
            handle._where = _DUE
            self._due.append(handle)
            return handle
        handle = ScheduledAction(self._now + delay, action)
        handle._engine = self
        handle._where = _HEAP
        heapq.heappush(self._heap, (handle.time, self._seq, handle))
        self._seq += 1
        return handle

    def _schedule_step(self, delay: int, action: Callable[[], None]) -> None:
        """Enqueue a bare continuation — no handle, not cancellable.

        The process layer's resume path: ``delay`` is already validated
        non-negative by the ``Delay`` command.
        """
        if delay == 0:
            self._due.append(action)
        else:
            heapq.heappush(self._heap, (self._now + delay, self._seq, action))
            self._seq += 1

    def schedule_at(self, time: int, action: Callable[[], None]) -> ScheduledAction:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        return self.schedule(time - self._now, action)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current action."""
        self._stop_requested = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: if given, stop once simulation time would pass this value.
            max_events: if given, stop after this many actions (a guard
                against runaway simulations in tests).

        Returns:
            The number of actions executed (inline process steps count).
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        self._executed = 0
        self._inline = 0
        self._max_events = max_events
        self._until = until
        heap = self._heap
        due = self._due
        heappop = heapq.heappop
        handle_cls = ScheduledAction
        now = self._now
        executed = 0
        hook = self.dispatch_hook
        try:
            if until is None and max_events is None and hook is None:
                # Fast loop: the production configuration. Bookkeeping
                # lives in locals; only time advances touch attributes.
                while True:
                    if self._stop_requested:
                        break
                    if due:
                        # Heap entries sharing the current timestamp were
                        # scheduled before anything in the due lane.
                        if heap and heap[0][0] <= now:
                            entry = heappop(heap)[2]
                            if entry.__class__ is handle_cls:
                                entry._where = _GONE
                                if entry.cancelled:
                                    self._heap_cancelled -= 1
                                    continue
                                entry = entry.action
                        else:
                            entry = due.popleft()
                            if entry.__class__ is handle_cls:
                                entry._where = _GONE
                                if entry.cancelled:
                                    self._due_cancelled -= 1
                                    continue
                                entry = entry.action
                    elif heap:
                        item = heappop(heap)
                        entry = item[2]
                        if entry.__class__ is handle_cls:
                            entry._where = _GONE
                            if entry.cancelled:
                                self._heap_cancelled -= 1
                                continue
                            entry = entry.action
                        now = item[0]
                        self._now = now
                    else:
                        break
                    entry()
                    executed += 1
                    # consume_inline_delay() may advance time while the
                    # entry runs; resync the local copy.
                    now = self._now
            else:
                while True:
                    if self._stop_requested:
                        break
                    if (
                        max_events is not None
                        and executed + self._inline >= max_events
                    ):
                        break
                    # consume_inline_step() reads the completed count.
                    self._executed = executed
                    if due:
                        if heap and heap[0][0] <= self._now:
                            entry = heappop(heap)[2]
                            if entry.__class__ is handle_cls:
                                entry._where = _GONE
                                if entry.cancelled:
                                    self._heap_cancelled -= 1
                                    continue
                                entry = entry.action
                        else:
                            if until is not None and until < self._now:
                                self._now = until
                                break
                            entry = due.popleft()
                            if entry.__class__ is handle_cls:
                                entry._where = _GONE
                                if entry.cancelled:
                                    self._due_cancelled -= 1
                                    continue
                                entry = entry.action
                    elif heap:
                        time = heap[0][0]
                        if until is not None and time > until:
                            # Peek, don't pop: the boundary event stays
                            # put and costs nothing when run() resumes.
                            top = heap[0][2]
                            if top.__class__ is handle_cls and top.cancelled:
                                heappop(heap)
                                top._where = _GONE
                                self._heap_cancelled -= 1
                                continue
                            self._now = until
                            break
                        entry = heappop(heap)[2]
                        if entry.__class__ is handle_cls:
                            entry._where = _GONE
                            if entry.cancelled:
                                self._heap_cancelled -= 1
                                continue
                            entry = entry.action
                        self._now = time
                    else:
                        break
                    entry()
                    executed += 1
                    if hook is not None:
                        hook(self._now)
        finally:
            self._running = False
            self._max_events = None
            self._until = None
            executed += self._inline
            self._executed = executed
            self.events_executed += executed
        return executed

    def consume_inline_step(self) -> bool:
        """Grant the currently-running action one inline continuation.

        True only when running a zero-delay continuation immediately is
        indistinguishable from scheduling it: the engine is mid-run,
        nothing else is due at the current time, no stop was requested,
        and the max-events budget has room. On a grant the step is
        counted as an executed action, so run()'s return value and
        max_events semantics match the scheduled path exactly.
        """
        if (
            self._due
            or not self._running
            or self._stop_requested
            or (self._heap and self._heap[0][0] <= self._now)
        ):
            return False
        if (
            self._max_events is not None
            and self._executed + self._inline + 1 >= self._max_events
        ):
            # The scheduled path would have stopped before running this
            # step; declining keeps the accounting exact.
            return False
        self._inline += 1
        return True

    def consume_inline_delay(self, cycles: int) -> bool:
        """Advance time ``cycles`` inline for the currently-running action.

        The batched backend's time-advance fast path: a positive
        ``Delay`` normally suspends the process and re-enters the event
        loop via the heap. When the suspended continuation would be the
        *very next* event anyway — nothing due now, every heap entry
        strictly later than the resume time, no stop requested, and the
        ``until``/``max_events`` budgets have room — the delay is granted
        inline: time jumps forward and the process keeps running without
        touching the heap. Any other state returns False and the caller
        schedules normally, so event interleaving (and therefore every
        cycle count) is bit-identical to the scheduled path.
        """
        if (
            self._due
            or not self._running
            or self._stop_requested
            or cycles <= 0
        ):
            return False
        resume = self._now + cycles
        heap = self._heap
        if heap and heap[0][0] <= resume:
            # A cancelled top entry would be skipped by the loop, but
            # proving that here costs more than declining; fall back.
            return False
        until = self._until
        if until is not None and resume > until:
            return False
        if (
            self._max_events is not None
            and self._executed + self._inline + 1 >= self._max_events
        ):
            return False
        self._now = resume
        self._inline += 1
        return True

    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled actions. O(1)."""
        return (
            len(self._heap)
            - self._heap_cancelled
            + len(self._due)
            - self._due_cancelled
        )

    # -- cancellation accounting -------------------------------------------

    #: Compaction floor: below this many cancelled entries the rebuild
    #: costs more than the garbage.
    _COMPACT_MIN = 64

    def _note_cancel(self, where: int) -> None:
        if where == _HEAP:
            self._heap_cancelled += 1
            if (
                self._heap_cancelled >= self._COMPACT_MIN
                and self._heap_cancelled * 2 > len(self._heap)
            ):
                self._compact()
        else:
            self._due_cancelled += 1

    def _compact(self) -> None:
        """Drop cancelled heap entries and re-heapify.

        Entries keep their original (time, sequence) keys, so the
        execution order of the survivors is untouched.
        """
        handle_cls = ScheduledAction
        # In-place: run() holds a direct reference to the heap list.
        self._heap[:] = [
            entry
            for entry in self._heap
            if entry[2].__class__ is not handle_cls or not entry[2].cancelled
        ]
        heapq.heapify(self._heap)
        self._heap_cancelled = 0
