"""Generator-based simulated processes.

A process body is a Python generator that yields *commands* to the kernel:

* ``Delay(cycles)`` — resume after a fixed number of cycles.
* ``Wait(event)``   — resume when a :class:`~repro.sim.events.SimEvent`
  fires; the yield expression evaluates to the event's value.

Machine operations (memory accesses, message sends, barriers) are written
as generator subroutines that bottom out in these two commands and are
composed with ``yield from``. This mirrors how the Wisconsin Wind Tunnel
interleaves direct execution with simulator callouts, with Python
generators standing in for instrumented binaries.

Stepping is allocation-free on the hot path: each process owns one bound
continuation that is handed to the engine for every resume (no per-yield
lambda), and ``Delay(0)`` / already-fired ``Wait`` commands are stepped
inline — without a trip through the scheduler — whenever the engine can
prove the continuation would have been the very next event anyway
(:meth:`Engine.consume_inline_step`). Event wake-ups always go through
the scheduler so a wake-up stays its own event, preserving deterministic
ordering among processes released by the same firing.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Generator, Optional

from repro.sim.engine import Engine
from repro.sim.events import SimEvent


class Delay:
    """Command: suspend the process for ``cycles`` cycles."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError(f"negative delay: {cycles}")
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Delay({self.cycles})"


#: Interned small delays. A Delay is immutable once built and the kernel
#: only ever reads ``cycles``, so the same instance can be yielded by any
#: number of processes; the hot protocol paths use :func:`delay_of` to
#: skip the per-yield allocation.
_DELAY_CACHE = tuple(Delay(c) for c in range(257))


def delay_of(cycles: int) -> Delay:
    """An interned :class:`Delay` for small cycle counts."""
    if 0 <= cycles < 257:
        return _DELAY_CACHE[cycles]
    return Delay(cycles)


class Wait:
    """Command: suspend the process until ``event`` fires."""

    __slots__ = ("event",)

    def __init__(self, event: SimEvent) -> None:
        self.event = event

    def __repr__(self) -> str:
        return f"Wait({self.event.name!r})"


class ProcessCrash(RuntimeError):
    """An exception escaped a process body; wraps the original error."""

    def __init__(self, process_name: str, original: BaseException) -> None:
        super().__init__(f"process {process_name!r} crashed: {original!r}")
        self.process_name = process_name
        self.original = original


ProcessBody = Generator[Any, Any, Any]


class Process:
    """Drives one generator body through the engine.

    The process starts on the engine's next step after construction (time
    zero if created before ``run()``), so creation order does not skew
    start times. ``done`` fires with the generator's return value when
    the body completes.
    """

    __slots__ = (
        "engine",
        "name",
        "done",
        "_body",
        "_crashed",
        "_cont",
        "_deliver",
        "_on_event",
        "_wake_value",
    )

    def __init__(self, engine: Engine, body: ProcessBody, name: str = "proc") -> None:
        self.engine = engine
        self.name = name
        self.done = SimEvent(name=f"{name}.done")
        self._body = body
        self._crashed: Optional[ProcessCrash] = None
        # Bound once; every resume reuses these instead of building a
        # fresh closure per yield.
        self._cont = self._step
        self._deliver = self._deliver_wake
        self._on_event = self._resume_from_event
        self._wake_value: Any = None
        engine._schedule_step(0, self._cont)

    @property
    def finished(self) -> bool:
        """True once the body has returned (or crashed)."""
        return self.done.fired or self._crashed is not None

    @property
    def crash(self) -> Optional[ProcessCrash]:
        """The wrapped exception if the body crashed, else None."""
        return self._crashed

    def result(self) -> Any:
        """Return value of the body; raises if it crashed or is unfinished."""
        if self._crashed is not None:
            raise self._crashed
        if not self.done.fired:
            raise RuntimeError(f"process {self.name!r} has not finished")
        return self.done.value

    def _step(self, value: Any = None) -> None:
        body_send = self._body.send
        engine = self.engine
        cont = self._cont
        while True:
            try:
                command = body_send(value)
            except StopIteration as stop:
                self.done.fire(stop.value)
                return
            except Exception as exc:  # noqa: BLE001 - deliberate crash wrapping
                self._crashed = ProcessCrash(self.name, exc)
                raise self._crashed from exc
            # Exact-class dispatch: Delay and Wait are final commands (no
            # subclasses anywhere), and this runs once per simulated
            # machine cycle, so even one spared isinstance() call shows up.
            command_cls = command.__class__
            if command_cls is Delay:
                # Enqueue the continuation directly (the open-coded body
                # of Engine._schedule_step).
                cycles = command.cycles
                if cycles:
                    if engine.consume_inline_delay(cycles):
                        value = None
                        continue
                    heappush(
                        engine._heap, (engine._now + cycles, engine._seq, cont)
                    )
                    engine._seq += 1
                    return
                if not engine._due and engine.consume_inline_step():
                    value = None
                    continue
                engine._due.append(cont)
                return
            if command_cls is Wait:
                event = command.event
                if event.fired:
                    if engine.consume_inline_step():
                        value = event.value
                        continue
                    # Open-coded _resume_from_event for the already-fired
                    # case: park the value and wake on the next step.
                    self._wake_value = event.value
                    engine._due.append(self._deliver)
                    return
                event._callbacks.append(self._on_event)
                return
            error = TypeError(
                f"process {self.name!r} yielded {command!r}; "
                "only Delay and Wait commands are understood"
            )
            self._crashed = ProcessCrash(self.name, error)
            raise self._crashed from error

    def _resume_from_event(self, value: Any) -> None:
        # Resume via the engine so the wake-up happens as its own event,
        # preserving deterministic ordering among processes released by
        # the same firing. (A process waits on at most one thing, so one
        # parked wake value suffices.)
        self._wake_value = value
        self.engine._due.append(self._deliver)

    def _deliver_wake(self) -> None:
        value = self._wake_value
        self._wake_value = None
        self._step(value)
