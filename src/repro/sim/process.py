"""Generator-based simulated processes.

A process body is a Python generator that yields *commands* to the kernel:

* ``Delay(cycles)`` — resume after a fixed number of cycles.
* ``Wait(event)``   — resume when a :class:`~repro.sim.events.SimEvent`
  fires; the yield expression evaluates to the event's value.

Machine operations (memory accesses, message sends, barriers) are written
as generator subroutines that bottom out in these two commands and are
composed with ``yield from``. This mirrors how the Wisconsin Wind Tunnel
interleaves direct execution with simulator callouts, with Python
generators standing in for instrumented binaries.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import Engine
from repro.sim.events import SimEvent


class Delay:
    """Command: suspend the process for ``cycles`` cycles."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError(f"negative delay: {cycles}")
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Delay({self.cycles})"


class Wait:
    """Command: suspend the process until ``event`` fires."""

    __slots__ = ("event",)

    def __init__(self, event: SimEvent) -> None:
        self.event = event

    def __repr__(self) -> str:
        return f"Wait({self.event.name!r})"


class ProcessCrash(RuntimeError):
    """An exception escaped a process body; wraps the original error."""

    def __init__(self, process_name: str, original: BaseException) -> None:
        super().__init__(f"process {process_name!r} crashed: {original!r}")
        self.process_name = process_name
        self.original = original


ProcessBody = Generator[Any, Any, Any]


class Process:
    """Drives one generator body through the engine.

    The process starts on the engine's next step after construction (time
    zero if created before ``run()``), so creation order does not skew
    start times. ``done`` fires with the generator's return value when
    the body completes.
    """

    def __init__(self, engine: Engine, body: ProcessBody, name: str = "proc") -> None:
        self.engine = engine
        self.name = name
        self.done = SimEvent(name=f"{name}.done")
        self._body = body
        self._crashed: Optional[ProcessCrash] = None
        engine.schedule(0, lambda: self._step(None))

    @property
    def finished(self) -> bool:
        """True once the body has returned (or crashed)."""
        return self.done.fired or self._crashed is not None

    @property
    def crash(self) -> Optional[ProcessCrash]:
        """The wrapped exception if the body crashed, else None."""
        return self._crashed

    def result(self) -> Any:
        """Return value of the body; raises if it crashed or is unfinished."""
        if self._crashed is not None:
            raise self._crashed
        if not self.done.fired:
            raise RuntimeError(f"process {self.name!r} has not finished")
        return self.done.value

    def _step(self, value: Any) -> None:
        try:
            command = self._body.send(value)
        except StopIteration as stop:
            self.done.fire(stop.value)
            return
        except Exception as exc:  # noqa: BLE001 - deliberate crash wrapping
            self._crashed = ProcessCrash(self.name, exc)
            raise self._crashed from exc
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Delay):
            self.engine.schedule(command.cycles, lambda: self._step(None))
        elif isinstance(command, Wait):
            command.event.add_callback(self._resume_from_event)
        else:
            error = TypeError(
                f"process {self.name!r} yielded {command!r}; "
                "only Delay and Wait commands are understood"
            )
            self._crashed = ProcessCrash(self.name, error)
            raise self._crashed from error

    def _resume_from_event(self, value: Any) -> None:
        # Resume via the engine so the wake-up happens as its own event,
        # preserving deterministic ordering among processes released by
        # the same firing.
        self.engine.schedule(0, lambda: self._step(value))
