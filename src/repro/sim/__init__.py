"""Discrete-event simulation kernel.

This package is the reproduction's substitute for the Wisconsin Wind
Tunnel: a deterministic, process-oriented discrete-event simulator.
Simulated processors are Python generators that yield primitive commands
(:class:`Delay`, :class:`Wait`) to the kernel; everything above that —
memory accesses, network-interface operations, barriers, locks — is built
as generator subroutines in the machine packages.
"""

from repro.sim.engine import Engine
from repro.sim.events import Gate, SimEvent
from repro.sim.process import Delay, Process, ProcessCrash, Wait
from repro.sim.resource import FifoResource
from repro.sim.rng import RngStreams

__all__ = [
    "Delay",
    "Engine",
    "FifoResource",
    "Gate",
    "Process",
    "ProcessCrash",
    "RngStreams",
    "SimEvent",
    "Wait",
]
