"""FIFO server resource with per-request occupancy.

Used to model the shared-memory machine's directory controllers: requests
queue in arrival order and each occupies the controller for a
request-specific number of cycles. Queuing delay at these resources is
how directory contention (reported for Gauss in the paper) emerges.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.sim.engine import Engine
from repro.sim.events import SimEvent


class FifoResource:
    """Single server, FIFO queue, integer-cycle service times."""

    def __init__(self, engine: Engine, name: str = "resource") -> None:
        self.engine = engine
        self.name = name
        self._busy = False
        self._queue: Deque[Tuple[int, SimEvent, int]] = deque()
        # Instrumentation for the paper's contention analysis.
        self.requests_served = 0
        self.total_queue_cycles = 0
        self.total_service_cycles = 0

    def request(self, service_cycles: int) -> SimEvent:
        """Enqueue a request; returns an event fired when service completes.

        The event fires with the queuing delay (cycles spent waiting
        before service began), letting callers attribute contention.
        """
        if service_cycles < 0:
            raise ValueError(f"negative service time: {service_cycles}")
        done = SimEvent(name=f"{self.name}.req")
        self._queue.append((self.engine.now, done, service_cycles))
        if not self._busy:
            self._serve_next()
        return done

    @property
    def queue_length(self) -> int:
        """Requests waiting (including the one in service)."""
        return len(self._queue) + (1 if self._busy else 0)

    def mean_queue_delay(self) -> float:
        """Average cycles a served request spent queued before service."""
        if self.requests_served == 0:
            return 0.0
        return self.total_queue_cycles / self.requests_served

    def _serve_next(self) -> None:
        if not self._queue:
            return
        arrival, done, service_cycles = self._queue.popleft()
        self._busy = True
        queue_delay = self.engine.now - arrival
        self.total_queue_cycles += queue_delay
        self.total_service_cycles += service_cycles

        def _complete() -> None:
            self.requests_served += 1
            self._busy = False
            done.fire(queue_delay)
            self._serve_next()

        self.engine.schedule(service_cycles, _complete)
