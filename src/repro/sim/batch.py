"""Declared bulk runs: the batch script shared by both machine contexts.

A :class:`BatchScript` is a small op table an application inner loop
builds once per logical step and hands to ``ctx.run_batch``. On the
reference backend the script is decomposed into the exact scalar
``read``/``write``/``compute`` calls the program would have made, so a
batch is purely a *declaration* of already-consecutive operations — it
can never reorder them. The batched backend executes the same table as
one step: contiguous cache-block runs are probed in bulk and only the
ops that actually stall fall back to the scalar protocol path, which is
what makes the two backends bit-identical by construction.

Ops are stored as plain tuples keyed by kind; ``values`` for a write or
scatter may be a callable receiving the list of results produced so far
(reads and gathers append to it, in op order). The callable is evaluated
at the op's position, so a read feeding the following write of the same
batch sees exactly the values the scalar program would have computed.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

#: Pre-redesign keyword names, mapped to their unified replacements.
_LEGACY_KWARGS = {"lo": "start", "hi": "stop"}


def reject_unknown_kwargs(method: str, kwargs: dict, allowed: Sequence[str]) -> None:
    """Raise TypeError with a did-you-mean hint for a stray keyword.

    The context ops accept ``**kwargs`` only to produce this error: the
    unified signature is ``(region, start, stop, values=...)`` and the
    old ``lo=``/``hi=`` spellings name their replacements explicitly,
    matching the strict ``with_overrides`` idiom of the runner configs.
    """
    if not kwargs:
        return
    name = next(iter(kwargs))
    hint = _LEGACY_KWARGS.get(name)
    if hint is None:
        close = difflib.get_close_matches(name, allowed, n=1)
        hint = close[0] if close else None
    did_you_mean = f"; did you mean {hint!r}?" if hint else ""
    raise TypeError(
        f"{method}() got an unexpected keyword argument {name!r}{did_you_mean}"
    )


#: values argument: concrete data, or a callable of the results-so-far list.
BatchValues = Union[Sequence, Callable[[List[Any]], Any]]


class BatchScript:
    """Builder for a declared bulk run; every method returns ``self``."""

    __slots__ = ("ops", "memos")

    def __init__(self) -> None:
        self.ops: List[Tuple] = []
        # Per-op verdict memo, lazily allocated by the batched backend on
        # first execution (None until then). Prebuilt scripts carry their
        # memoized probe verdicts — stamped with the TLB/cache versions
        # they were computed at — across iterations; see repro.sm.batched.
        self.memos: Optional[List] = None

    def read(self, region, start: int = 0, stop: Optional[int] = None) -> "BatchScript":
        """Read elements [start, stop); appends the view to the results."""
        self.ops.append(("read", region, start, stop))
        return self

    def write(
        self,
        region,
        start: int = 0,
        stop: Optional[int] = None,
        *,
        values: Optional[BatchValues] = None,
    ) -> "BatchScript":
        """Write elements starting at ``start`` (length from values or stop)."""
        self.ops.append(("write", region, start, stop, values))
        return self

    def read_gather(self, region, indices) -> "BatchScript":
        """Indexed read; appends the gathered values to the results."""
        self.ops.append(("read_gather", region, indices))
        return self

    def write_scatter(self, region, indices, values: BatchValues) -> "BatchScript":
        """Indexed write (``values`` may be a results-so-far callable)."""
        self.ops.append(("write_scatter", region, indices, values))
        return self

    def compute(self, cycles: float) -> "BatchScript":
        """Charge computation cycles."""
        self.ops.append(("compute", cycles))
        return self

    def compute_flops(self, count: float) -> "BatchScript":
        """Charge the cycle cost of ``count`` floating-point operations."""
        self.ops.append(("compute_flops", count))
        return self

    def __len__(self) -> int:
        return len(self.ops)


def run_batch_reference(ctx, script: BatchScript):
    """Decompose a script into the context's (possibly wrapped) scalar ops.

    This is the semantic definition of a batch: op-for-op identical to
    the scalar program. Dispatch goes through ``ctx.read`` etc. via
    attribute lookup, so instance-rebound instrumentation (the checker's
    oracle, tracers) composes exactly as it does for scalar code.
    """
    results: List[Any] = []
    for op in script.ops:
        kind = op[0]
        if kind == "read":
            results.append((yield from ctx.read(op[1], op[2], op[3])))
        elif kind == "write":
            values = op[4]
            if callable(values):
                values = values(results)
            yield from ctx.write(op[1], op[2], op[3], values=values)
        elif kind == "read_gather":
            results.append((yield from ctx.read_gather(op[1], op[2])))
        elif kind == "write_scatter":
            values = op[3]
            if callable(values):
                values = values(results)
            yield from ctx.write_scatter(op[1], op[2], values)
        elif kind == "compute":
            yield from ctx.compute(op[1])
        elif kind == "compute_flops":
            yield from ctx.compute_flops(op[1])
        else:
            raise ValueError(f"unknown batch op {kind!r}")
    return results


#: Context methods the checker/tracer rebind per instance. run_batch must
#: decompose through them when any is present, or shadow state goes stale.
INSTRUMENTED_OPS = (
    "read",
    "write",
    "read_gather",
    "write_scatter",
    "compute",
    "compute_flops",
)


def is_instrumented(ctx) -> bool:
    """True if any context op was rebound on the instance (checker/tracer)."""
    d = ctx.__dict__
    for name in INSTRUMENTED_OPS:
        if name in d:
            return True
    return False
