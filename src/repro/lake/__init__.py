"""The queryable run lake (sqlite, stdlib-only, append-only).

Every :class:`~repro.runner.record.RunRecord` and
:class:`~repro.sweep.result.SweepResult` can land here — opt-in via
``repro run/sweep --lake``, or backfilled from a warm result cache
with ``repro lake ingest``. Rows are keyed by the content-addressed
cache key (re-ingest adds zero rows) and carry full
salt/backend/consistency/preset provenance, so ``repro query`` can
compare cycle breakdowns across presets and code versions without
ever re-simulating — and without ever silently mixing stale-salt
rows into a fresh comparison.

See :mod:`repro.lake.store` for the schema and
:mod:`repro.lake.query` for the query layer.
"""

from repro.lake.query import (
    DEFAULT_METRICS,
    PIVOT_COLUMNS,
    RUN_COLUMNS,
    QueryFilters,
    available_metrics,
    pivot,
    query_runs,
    render_rows,
    rows_to_csv,
)
from repro.lake.store import (
    DEFAULT_LAKE_NAME,
    ENV_LAKE_PATH,
    LAKE_SCHEMA,
    RunLake,
    default_lake_path,
    infer_preset,
    record_metrics,
    sweep_identity_key,
)

__all__ = [
    "DEFAULT_LAKE_NAME",
    "DEFAULT_METRICS",
    "ENV_LAKE_PATH",
    "LAKE_SCHEMA",
    "PIVOT_COLUMNS",
    "RUN_COLUMNS",
    "QueryFilters",
    "RunLake",
    "available_metrics",
    "default_lake_path",
    "infer_preset",
    "pivot",
    "query_runs",
    "record_metrics",
    "render_rows",
    "rows_to_csv",
    "sweep_identity_key",
]
