"""Queries over the run lake (``repro query`` / ``api.query()``).

A query is: equality filters over the provenance columns
(app/backend/consistency/preset/salt), a metric column list, and the
freshness rule — stale-salt rows are **excluded by default** (the
shared :func:`repro.runner.cache.record_is_fresh` decision, recomputed
at query time) and only appear under ``all_salts=True``, tagged with
their salt so cross-version comparison is explicit, never accidental.

:func:`pivot` reshapes filtered rows into the paper's comparison form:
one metric spread across the distinct values of one column, e.g. EM3D
``sm_over_mp`` under the paper vs multicore vs cluster presets — pure
lake arithmetic, zero re-simulation.
"""

from __future__ import annotations

import difflib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.lake.store import RunLake

#: Provenance columns shown before the metric columns.
RUN_COLUMNS = (
    "exp_id",
    "backend",
    "consistency",
    "preset",
    "procs",
    "salt",
    "fresh",
)

#: The default metric columns: the paper's headline comparison.
DEFAULT_METRICS = ("mp_total", "sm_total", "sm_over_mp")

#: Columns a pivot may spread a metric across.
PIVOT_COLUMNS = ("backend", "consistency", "preset", "salt", "procs", "exp_id")


@dataclass(frozen=True)
class QueryFilters:
    """Equality filters for one lake query (None = no constraint)."""

    app: Optional[str] = None  # exp_id
    backend: Optional[str] = None
    consistency: Optional[str] = None
    preset: Optional[str] = None
    salt: Optional[str] = None
    all_salts: bool = False
    metrics: Tuple[str, ...] = field(default=DEFAULT_METRICS)


def _suggest(name: str, known: Sequence[str]) -> str:
    matches = difflib.get_close_matches(str(name), list(known), n=1, cutoff=0.5)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def _open(lake: Union[RunLake, str, os.PathLike, None]) -> Tuple[RunLake, bool]:
    if isinstance(lake, RunLake):
        return lake, False
    return RunLake(lake), True


def available_metrics(lake: Union[RunLake, str, os.PathLike, None] = None) -> List[str]:
    """Every metric name any lake row carries, sorted."""
    opened, owned = _open(lake)
    try:
        rows = opened.connection.execute(
            "SELECT DISTINCT name FROM metrics ORDER BY name"
        ).fetchall()
        return [row["name"] for row in rows]
    finally:
        if owned:
            opened.close()


def query_runs(
    lake: Union[RunLake, str, os.PathLike, None] = None,
    filters: Optional[QueryFilters] = None,
) -> List[Dict[str, Any]]:
    """Filtered run rows: provenance columns + the requested metrics.

    Metric names are validated against the union of the registry and
    what the lake actually holds, with a did-you-mean error on typos.
    Rows missing a requested metric carry ``None`` for it (e.g. a pair
    metric asked of a scalars-only experiment).
    """
    filters = filters or QueryFilters()
    opened, owned = _open(lake)
    try:
        known = _known_metrics(opened)
        for name in filters.metrics:
            if known and name not in known:
                raise ValueError(
                    f"unknown metric {name!r}{_suggest(name, known)}; "
                    f"known: {known}"
                )
        where, params = _where_clause(filters)
        out: List[Dict[str, Any]] = []
        for row in opened.run_rows(where, params):
            if not filters.all_salts and not row["fresh"]:
                continue
            slim: Dict[str, Any] = {c: row.get(c) for c in RUN_COLUMNS}
            for name in filters.metrics:
                slim[name] = row.get(name)
            out.append(slim)
        return out
    finally:
        if owned:
            opened.close()


def _known_metrics(lake: RunLake) -> List[str]:
    from repro.stats.metrics import METRICS

    names = set(METRICS)
    names.update(available_metrics(lake))
    return sorted(names)


def _where_clause(filters: QueryFilters) -> Tuple[str, List[Any]]:
    clauses: List[str] = []
    params: List[Any] = []
    for column, value in (
        ("exp_id", filters.app),
        ("backend", filters.backend),
        ("consistency", filters.consistency),
        ("preset", filters.preset),
        ("salt", filters.salt),
    ):
        if value is not None:
            clauses.append(f"{column} = ?")
            params.append(value)
    return " AND ".join(clauses), params


def pivot(
    rows: Sequence[Dict[str, Any]],
    column: str,
    metric: str,
    index: Sequence[str] = ("exp_id",),
) -> List[Dict[str, Any]]:
    """Spread ``metric`` across the distinct values of ``column``.

    ``pivot(rows, "preset", "sm_over_mp")`` yields one row per
    ``exp_id`` with a column per preset — the cross-preset comparison
    the ISSUE's acceptance criterion names. When several input rows
    land in one cell (e.g. multiple procs), the cell keeps the last
    row's value; filter tighter for a unique cell.
    """
    if column not in PIVOT_COLUMNS:
        raise ValueError(
            f"cannot pivot on {column!r}{_suggest(column, PIVOT_COLUMNS)}; "
            f"pivotable: {sorted(PIVOT_COLUMNS)}"
        )
    spread = sorted(
        {row.get(column) for row in rows if row.get(column) is not None},
        key=str,
    )
    cells: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    for row in rows:
        key = tuple(row.get(c) for c in index)
        cell = cells.setdefault(key, {c: row.get(c) for c in index})
        value = row.get(metric)
        if row.get(column) is not None and value is not None:
            cell[str(row[column])] = value
    out = []
    for key in sorted(cells, key=str):
        cell = cells[key]
        for name in spread:
            cell.setdefault(str(name), None)
        out.append(cell)
    return out


def render_rows(rows: Sequence[Dict[str, Any]]) -> str:
    """Fixed-width table of query rows (the CLI's human output)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    for row in rows[1:]:
        for name in row:
            if name not in columns:
                columns.append(name)
    widths = {
        c: max(len(str(c)), max(len(_fmt(r.get(c))) for r in rows))
        for c in columns
    }
    header = "  ".join(f"{c:>{widths[c]}}" for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(f"{_fmt(row.get(c)):>{widths[c]}}" for c in columns)
        )
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Dict[str, Any]]) -> str:
    """RFC-4180-ish CSV of query rows."""
    import csv
    import io

    if not rows:
        return ""
    columns = list(rows[0])
    for row in rows[1:]:
        for name in row:
            if name not in columns:
                columns.append(name)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def _fmt(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)
