"""The run lake: an append-only sqlite store over RunRecords/SweepResults.

The result cache answers "have I run this exact config under the
current code salt?"; the lake answers the *longitudinal* questions the
paper's tables invite — how a cycle breakdown or an MP/SM ratio moved
across code versions, backends, consistency models, and machine
presets. It is stdlib :mod:`sqlite3` (zero new deps), append-only
(``INSERT OR IGNORE`` keyed on the content-addressed ``cache_key``, so
re-ingesting is idempotent), and salt-aware: every row stores its full
canonical config, and freshness is recomputed at query time through
:func:`repro.runner.cache.record_is_fresh` — the same decision
``repro cache ls`` renders — so stale rows are distinguishable, never
silently mixed into a comparison.

Layout (schema v1):

* ``runs`` — one row per RunRecord, keyed by ``cache_key``; carries
  backend/consistency/preset/procs/salt provenance columns plus the
  canonical config and summary JSON.
* ``metrics`` — the scalar projection of each run: every applicable
  registry metric (:mod:`repro.stats.metrics`) plus the raw per-side
  cycle-breakdown components (``mp_computation``, ``sm_data_access``,
  ...), one row per ``(cache_key, name)``.
* ``sweeps`` / ``sweep_points`` — SweepResults keyed by a digest of
  their identity (spec + grid + point keys; ``meta`` timing excluded).

The default location is ``lake.sqlite`` next to the result cache
(honouring ``REPRO_CACHE_DIR``), overridable with ``REPRO_LAKE_PATH``
or an explicit ``--lake-path``.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.runner.cache import (
    CODE_SALT,
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    ResultCache,
    record_is_fresh,
)
from repro.runner.record import RunRecord
from repro.sweep.result import SweepResult

#: Environment override for the lake file location.
ENV_LAKE_PATH = "REPRO_LAKE_PATH"

#: Default lake filename, created next to the result cache.
DEFAULT_LAKE_NAME = "lake.sqlite"

#: Bump when the lake table layout changes.
LAKE_SCHEMA = 1

_DDL = """
CREATE TABLE IF NOT EXISTS lake_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    cache_key       TEXT PRIMARY KEY,
    exp_id          TEXT NOT NULL,
    backend         TEXT NOT NULL,
    consistency     TEXT NOT NULL,
    preset          TEXT NOT NULL,
    procs           INTEGER,
    seed            INTEGER,
    cache_bytes     INTEGER,
    salt            TEXT NOT NULL,
    version         TEXT NOT NULL,
    record_schema   INTEGER NOT NULL,
    all_ok          INTEGER NOT NULL,
    elapsed_seconds REAL NOT NULL,
    ingested_at     REAL NOT NULL,
    config_json     TEXT NOT NULL,
    summary_json    TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_exp ON runs (exp_id, preset);
CREATE TABLE IF NOT EXISTS metrics (
    cache_key TEXT NOT NULL,
    name      TEXT NOT NULL,
    value     REAL NOT NULL,
    PRIMARY KEY (cache_key, name)
);
CREATE TABLE IF NOT EXISTS sweeps (
    sweep_key   TEXT PRIMARY KEY,
    spec_name   TEXT NOT NULL,
    exp_id      TEXT NOT NULL,
    points      INTEGER NOT NULL,
    all_ok      INTEGER NOT NULL,
    salt        TEXT NOT NULL,
    version     TEXT NOT NULL,
    ingested_at REAL NOT NULL,
    result_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sweep_points (
    sweep_key    TEXT NOT NULL,
    point_index  INTEGER NOT NULL,
    cache_key    TEXT NOT NULL,
    coords_json  TEXT NOT NULL,
    metrics_json TEXT NOT NULL,
    PRIMARY KEY (sweep_key, point_index)
);
"""


def default_lake_path() -> Path:
    """``$REPRO_LAKE_PATH``, else ``lake.sqlite`` beside the cache."""
    env = os.environ.get(ENV_LAKE_PATH)
    if env:
        return Path(env)
    cache_dir = os.environ.get(ENV_CACHE_DIR, DEFAULT_CACHE_DIR)
    return Path(cache_dir) / DEFAULT_LAKE_NAME


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def infer_preset(config: Mapping[str, Any]) -> str:
    """Recover the machine preset from a canonical config dict.

    The canonical config deliberately omits the preset name (its effect
    is folded into the resolved machine parameters), so records written
    before :attr:`RunRecord.preset` existed need it reconstructed: each
    preset table is resolved at the record's processor count and cache
    size and matched against the stored machine dict. Records whose
    machine was further perturbed (sweep axes over ``net_latency`` etc.)
    match no table and report ``"custom"``; unreadable configs report
    ``"unknown"``.
    """
    from repro.arch.params import MACHINE_PRESETS, machine_preset

    try:
        stored = _canonical(config["machine"])
        procs = int(config["procs"])
        cache_bytes = config.get("cache_bytes")
    except (KeyError, TypeError, ValueError):
        return "unknown"
    for preset in sorted(MACHINE_PRESETS):
        try:
            params = machine_preset(preset, num_processors=procs)
            if cache_bytes is not None:
                params = params.with_cache_bytes(int(cache_bytes))
        except (TypeError, ValueError):
            continue
        # json round-trip both sides: asdict() tuples become lists in
        # stored JSON, so compare in JSON space.
        resolved = _canonical(json.loads(json.dumps(asdict(params))))
        if resolved == stored:
            return preset
    return "custom"


def record_metrics(summary: Mapping[str, Any]) -> Dict[str, float]:
    """The scalar projection of one record summary for the lake.

    Every registry metric that applies to this summary kind, plus the
    raw per-side overall cycle-breakdown components under ``mp_``/
    ``sm_`` prefixes (the paper's table rows as columns). Metrics the
    summary cannot answer (pair metrics of a scalars summary, absent
    phases) are simply skipped.
    """
    from repro.stats.metrics import METRICS

    out: Dict[str, float] = {}
    for name, fn in METRICS.items():
        try:
            value = float(fn(summary))
        except (KeyError, TypeError, ValueError):
            continue
        if value == value and abs(value) != float("inf"):
            out[name] = value
    for side in ("mp", "sm"):
        overall = summary.get(side, {})
        overall = overall.get("overall", {}) if isinstance(overall, Mapping) else {}
        for key, value in overall.items():
            if isinstance(value, (int, float)):
                out.setdefault(f"{side}_{key}", float(value))
    return out


def sweep_identity_key(result: SweepResult) -> str:
    """Content address of one sweep result (``meta`` timing excluded)."""
    data = result.to_jsonable()
    data.pop("meta", None)
    return hashlib.sha256(_canonical(data).encode("utf-8")).hexdigest()


class RunLake:
    """Append-only sqlite store of run and sweep facts.

    Usable as a context manager; all ingest methods are idempotent
    (content-addressed primary keys + ``INSERT OR IGNORE``), so
    re-ingesting a warm cache adds zero rows.
    """

    def __init__(self, path: Union[str, os.PathLike, None] = None) -> None:
        self.path = Path(path) if path is not None else default_lake_path()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_DDL)
        self._conn.execute(
            "INSERT OR IGNORE INTO lake_meta (key, value) VALUES (?, ?)",
            ("lake_schema", str(LAKE_SCHEMA)),
        )
        self._conn.commit()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunLake":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        return self._conn

    # -- ingest ------------------------------------------------------------

    def ingest_record(
        self, record: Union[RunRecord, Mapping[str, Any]]
    ) -> bool:
        """Add one run record; returns True when a new row was added."""
        from repro import __version__

        data = (
            record.to_jsonable()
            if isinstance(record, RunRecord)
            else dict(record)
        )
        config = data.get("config") or {}
        fresh = record_is_fresh(data)
        preset = data.get("preset") or infer_preset(config)
        cursor = self._conn.execute(
            "INSERT OR IGNORE INTO runs (cache_key, exp_id, backend,"
            " consistency, preset, procs, seed, cache_bytes, salt, version,"
            " record_schema, all_ok, elapsed_seconds, ingested_at,"
            " config_json, summary_json)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                str(data["cache_key"]),
                str(data["exp_id"]),
                str(config.get("backend", "")),
                str(config.get("consistency", "")),
                str(preset),
                config.get("procs"),
                config.get("seed"),
                config.get("cache_bytes"),
                # The salt provenance column: the salt this row is known
                # to match. Rows already stale at ingest time belonged to
                # some earlier salt we can no longer name.
                CODE_SALT if fresh else "pre-" + CODE_SALT,
                str(__version__),
                int(data.get("schema", 0)),
                int(
                    all(ok for _n, ok, _d in data.get("checks", []))
                ),
                float(data.get("elapsed_seconds", 0.0)),
                time.time(),
                _canonical(config),
                _canonical(data.get("summary", {})),
            ),
        )
        added = cursor.rowcount > 0
        if added:
            self._conn.executemany(
                "INSERT OR IGNORE INTO metrics (cache_key, name, value)"
                " VALUES (?, ?, ?)",
                [
                    (str(data["cache_key"]), name, value)
                    for name, value in sorted(
                        record_metrics(data.get("summary", {})).items()
                    )
                ],
            )
        self._conn.commit()
        return added

    def ingest_sweep(self, result: SweepResult) -> bool:
        """Add one sweep result; returns True when a new row was added."""
        from repro import __version__

        key = sweep_identity_key(result)
        data = result.to_jsonable()
        data.pop("meta", None)
        cursor = self._conn.execute(
            "INSERT OR IGNORE INTO sweeps (sweep_key, spec_name, exp_id,"
            " points, all_ok, salt, version, ingested_at, result_json)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                key,
                result.spec_name,
                result.exp_id,
                len(result.points),
                int(result.all_ok),
                CODE_SALT,
                str(__version__),
                time.time(),
                _canonical(data),
            ),
        )
        added = cursor.rowcount > 0
        if added:
            self._conn.executemany(
                "INSERT OR IGNORE INTO sweep_points (sweep_key, point_index,"
                " cache_key, coords_json, metrics_json) VALUES (?, ?, ?, ?, ?)",
                [
                    (
                        key,
                        i,
                        str(point.get("cache_key", "")),
                        _canonical(point.get("coords", {})),
                        _canonical(point.get("metrics", {})),
                    )
                    for i, point in enumerate(result.points)
                ],
            )
        self._conn.commit()
        return added

    def ingest_cache(
        self, cache: Optional[ResultCache] = None
    ) -> Tuple[int, int]:
        """Backfill every readable cached record; ``(added, seen)``."""
        cache = cache if cache is not None else ResultCache()
        added = seen = 0
        for _path, record in cache.entries():
            seen += 1
            added += bool(self.ingest_record(record))
        return added, seen

    def ingest_sweep_cache_records(
        self, result: SweepResult, cache: Optional[ResultCache] = None
    ) -> int:
        """Ingest the per-point RunRecords behind one sweep result.

        The sweep engine writes every point's record into the result
        cache; this pulls the ones belonging to ``result`` (matched by
        point cache key) into the lake, so ``repro sweep --lake`` lands
        both the sweep-level curve and the row-level breakdowns.
        """
        cache = cache if cache is not None else ResultCache()
        wanted = {
            str(point.get("cache_key", "")) for point in result.points
        }
        wanted.discard("")
        added = 0
        for _path, record in cache.entries():
            if record.cache_key in wanted:
                added += bool(self.ingest_record(record))
        return added

    # -- accounting --------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        out = {}
        for table in ("runs", "metrics", "sweeps", "sweep_points"):
            row = self._conn.execute(
                f"SELECT COUNT(*) AS n FROM {table}"
            ).fetchone()
            out[table] = int(row["n"])
        return out

    def stats(self) -> Dict[str, Any]:
        """Size/shape facts for ``repro lake stats``."""
        counts = self.counts()
        fresh = sum(1 for row in self.run_rows() if row["fresh"])
        return {
            "path": str(self.path),
            "bytes": self.path.stat().st_size if self.path.exists() else 0,
            "lake_schema": LAKE_SCHEMA,
            "salt": CODE_SALT,
            "fresh_runs": fresh,
            "stale_runs": counts["runs"] - fresh,
            **counts,
        }

    # -- raw row access (repro.lake.query builds on this) ------------------

    def run_rows(
        self, where: str = "", params: Iterable[Any] = ()
    ) -> Iterable[Dict[str, Any]]:
        """``runs`` rows as dicts, each annotated with query-time
        ``fresh`` (the shared :func:`record_is_fresh` decision, so the
        lake and ``repro cache ls`` can never disagree about a salt
        bump) and with the row's metric columns merged in."""
        sql = "SELECT * FROM runs"
        if where:
            sql += f" WHERE {where}"
        sql += " ORDER BY exp_id, preset, consistency, backend, procs"
        for raw in self._conn.execute(sql, tuple(params)).fetchall():
            row = dict(raw)
            config = json.loads(row.pop("config_json"))
            row.pop("summary_json")
            row["fresh"] = record_is_fresh(
                {
                    "schema": row["record_schema"],
                    "cache_key": row["cache_key"],
                    "config": config,
                }
            )
            row["config"] = config
            row["all_ok"] = bool(row["all_ok"])
            for metric in self._conn.execute(
                "SELECT name, value FROM metrics WHERE cache_key = ?",
                (row["cache_key"],),
            ).fetchall():
                row.setdefault(metric["name"], metric["value"])
            yield row

    def sweep_rows(self) -> Iterable[Dict[str, Any]]:
        """``sweeps`` rows as dicts (result JSON parsed)."""
        for raw in self._conn.execute(
            "SELECT * FROM sweeps ORDER BY spec_name, ingested_at"
        ).fetchall():
            row = dict(raw)
            row["result"] = json.loads(row.pop("result_json"))
            row["all_ok"] = bool(row["all_ok"])
            yield row
