"""Declarative YAML experiment/sweep specs (``specs/**/*.yaml``).

Scenarios live as data: :mod:`repro.specs.loader` parses and validates
the YAML documents into the same frozen dataclasses the Python
registrations used to construct (bit-identical, parity-tested), and
:mod:`repro.specs.library` holds the named callables (shape checks,
derive passes, extra-metric sets) that YAML references by name.

Entry points::

    from repro import api
    spec = api.load_spec("em3d-latency")       # by id (search path)
    spec = api.load_spec("specs/sweeps/em3d-latency.yaml")  # by path
    api.specs()                                # listing metadata

The search path is ``$REPRO_SPECS_DIR``, then ``./specs``, then the
repository's shipped ``specs/`` directory.
"""

from repro.specs.library import CHECKS, DERIVES, EXTRA_METRICS
from repro.specs.loader import (
    ENV_SPECS_DIR,
    ExperimentSpecDoc,
    SpecError,
    SpecInfo,
    discovered_experiments,
    discovered_sweeps,
    expand_glob,
    get_sweep,
    iter_spec_files,
    list_specs,
    load_spec,
    load_spec_file,
    load_sweep,
    spec_dirs,
    spec_info,
)

__all__ = [
    "CHECKS",
    "DERIVES",
    "EXTRA_METRICS",
    "ENV_SPECS_DIR",
    "ExperimentSpecDoc",
    "SpecError",
    "SpecInfo",
    "discovered_experiments",
    "discovered_sweeps",
    "expand_glob",
    "get_sweep",
    "iter_spec_files",
    "list_specs",
    "load_spec",
    "load_spec_file",
    "load_sweep",
    "spec_dirs",
    "spec_info",
]
