"""YAML experiment/sweep spec loading, validation, and discovery.

Scenarios are *data, not code*: a sweep or experiment variant is a
small YAML document under ``specs/sweeps/`` or ``specs/experiments/``
(the CursorProject experiments-registry idiom), resolved here into the
exact frozen dataclasses the Python registrations used to build —
bit-identical, down to the cache keys of every grid point.

Sweep spec format (``specs/sweeps/<id>.yaml``)::

    kind: sweep
    id: em3d-latency          # the name `repro sweep <id>` resolves
    category: paper           # free-form grouping for listings
    experiment: em3d          # registered experiment id
    description: >-
      One-paragraph claim the sweep pins.
    base_overrides:           # applied to every grid point (optional)
      procs: 4
      app: {nodes_per_proc: 40, degree: 4, iterations: 3}
    axes:                     # one or two
      - axis: net_latency
        values: [0, 25, 50, 100, 200]
    metrics: [mp_total, sm_total, sm_over_mp]
    crossovers:               # optional probes
      - name: sm-catches-mp
        metric: sm_over_mp
        level: 1.0
        description: latency below which SM would match MP
    checks: em3d-latency      # named callable (repro.specs.library)
    derive: speedup-vs-first  # optional named callable
    extra_metrics: my-set     # optional named extra-metric set

Experiment spec format (``specs/experiments/<id>.yaml``)::

    kind: experiment
    id: em3d-small
    category: scaled
    experiment: em3d
    description: ...
    overrides:                # ExperimentConfig.with_overrides mapping
      procs: 4
      app: {nodes_per_proc: 40, degree: 4, iterations: 3}

Validation happens at load time with the CLI's did-you-mean errors:
unknown document keys, unknown experiments, unknown metrics, unknown
named callables, and unknown axis/override names all fail loudly
before any simulation. Search path for named specs:
``$REPRO_SPECS_DIR`` (if set), ``./specs/``, then the repository's
shipped ``specs/`` directory; within one directory a duplicate id is
an error, across directories the first hit wins.
"""

from __future__ import annotations

import difflib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.sweep.spec import CrossoverSpec, SweepSpec

#: Environment override for the spec search path (one directory).
ENV_SPECS_DIR = "REPRO_SPECS_DIR"

#: The repository's shipped spec directory (absent in wheel installs).
SHIPPED_SPECS_DIR = Path(__file__).resolve().parents[3] / "specs"

#: Subdirectory per spec kind.
KIND_DIRS = {"sweep": "sweeps", "experiment": "experiments"}

_SWEEP_KEYS = (
    "kind", "id", "category", "experiment", "description", "base_overrides",
    "axes", "metrics", "crossovers", "checks", "derive", "extra_metrics",
)
_EXPERIMENT_KEYS = (
    "kind", "id", "category", "experiment", "description", "overrides",
)
_AXIS_KEYS = ("axis", "values")
_CROSSOVER_KEYS = ("name", "metric", "level", "description")


class SpecError(ValueError):
    """A malformed or unresolvable YAML spec (message names the file)."""


def _yaml():
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise SpecError(
            "YAML spec support needs the 'pyyaml' package "
            "(pip install pyyaml)"
        ) from exc
    return yaml


def _suggest(name: str, known: Sequence[str]) -> str:
    matches = difflib.get_close_matches(str(name), list(known), n=1, cutoff=0.5)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def _reject_unknown_keys(
    doc: Mapping[str, Any], known: Sequence[str], where: str
) -> None:
    for key in doc:
        if key not in known:
            raise SpecError(
                f"{where}: unknown key {key!r}{_suggest(key, known)}; "
                f"known: {sorted(known)}"
            )


def _require(doc: Mapping[str, Any], key: str, where: str) -> Any:
    if key not in doc:
        raise SpecError(f"{where}: missing required key {key!r}")
    return doc[key]


@dataclass(frozen=True)
class ExperimentSpecDoc:
    """A YAML experiment variant: a registered experiment + overrides.

    :meth:`resolve` produces the frozen
    :class:`~repro.runner.config.ExperimentConfig` — exactly what
    ``api.resolve_config(experiment, overrides)`` returns, so a YAML
    variant and a Python registration share cache keys bit-for-bit.
    """

    id: str
    experiment: str
    overrides: Mapping[str, Any] = field(default_factory=dict)
    category: str = ""
    description: str = ""
    path: str = ""

    def resolve(self):
        from repro.runner.api import resolve_config

        return resolve_config(self.experiment, self.overrides or None)


@dataclass(frozen=True)
class SpecInfo:
    """Listing metadata for one discovered spec (``api.specs()``)."""

    id: str
    kind: str
    experiment: str
    category: str
    description: str
    path: str


# ---------------------------------------------------------------------------
# Parsing one document.
# ---------------------------------------------------------------------------


def _parse_doc(path: Path) -> Dict[str, Any]:
    where = str(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SpecError(f"{where}: cannot read spec: {exc}") from exc
    yaml = _yaml()
    try:
        doc = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise SpecError(f"{where}: invalid YAML: {exc}") from exc
    if not isinstance(doc, Mapping):
        raise SpecError(
            f"{where}: spec must be a YAML mapping, got "
            f"{type(doc).__name__}"
        )
    return dict(doc)


def _doc_kind(doc: Mapping[str, Any], where: str) -> str:
    kind = _require(doc, "kind", where)
    if kind not in KIND_DIRS:
        raise SpecError(
            f"{where}: unknown kind {kind!r}{_suggest(kind, KIND_DIRS)}; "
            f"known: {sorted(KIND_DIRS)}"
        )
    return kind


def _known_experiment(exp_id: Any, where: str) -> str:
    from repro.core.experiments import EXPERIMENTS

    if not isinstance(exp_id, str) or exp_id not in EXPERIMENTS:
        raise SpecError(
            f"{where}: unknown experiment {exp_id!r}"
            f"{_suggest(exp_id, EXPERIMENTS)}; known: {sorted(EXPERIMENTS)}"
        )
    return exp_id


def _build_sweep(doc: Mapping[str, Any], where: str) -> SweepSpec:
    from repro.core.experiments import get_experiment
    from repro.specs import library
    from repro.stats.metrics import METRICS
    from repro.sweep.axes import axis_overrides

    _reject_unknown_keys(doc, _SWEEP_KEYS, where)
    spec_id = _require(doc, "id", where)
    if not isinstance(spec_id, str) or not spec_id:
        raise SpecError(f"{where}: 'id' must be a non-empty string")
    exp_id = _known_experiment(_require(doc, "experiment", where), where)

    raw_axes = _require(doc, "axes", where)
    if not isinstance(raw_axes, list) or not raw_axes:
        raise SpecError(f"{where}: 'axes' must be a non-empty list")
    axes: List[Tuple[str, Tuple[Any, ...]]] = []
    for i, entry in enumerate(raw_axes):
        axis_where = f"{where}: axes[{i}]"
        if not isinstance(entry, Mapping):
            raise SpecError(f"{axis_where} must be a mapping with axis/values")
        _reject_unknown_keys(entry, _AXIS_KEYS, axis_where)
        axis = _require(entry, "axis", axis_where)
        values = _require(entry, "values", axis_where)
        if not isinstance(values, list) or not values:
            raise SpecError(
                f"{axis_where}: 'values' must be a non-empty list"
            )
        axes.append((str(axis), tuple(values)))

    raw_metrics = _require(doc, "metrics", where)
    if not isinstance(raw_metrics, list) or not raw_metrics:
        raise SpecError(f"{where}: 'metrics' must be a non-empty list")

    extra_metrics = None
    if "extra_metrics" in doc:
        extra_metrics = library.resolve_extra_metrics(
            str(doc["extra_metrics"]), where
        )
    extra_names = set(extra_metrics or ())
    derived_names = set()
    if "derive" in doc:
        # Derived metrics appear after the post-pass; metric validation
        # cannot see them, so only registry/extra names are checked.
        derived_names = {f"{side}_speedup" for side in ("mp", "sm")}
    for name in raw_metrics:
        if name in METRICS or name in extra_names or name in derived_names:
            continue
        known = sorted(set(METRICS) | extra_names)
        raise SpecError(
            f"{where}: unknown metric {name!r}{_suggest(name, known)}; "
            f"known: {known}"
        )

    crossovers: List[CrossoverSpec] = []
    for i, entry in enumerate(doc.get("crossovers") or []):
        probe_where = f"{where}: crossovers[{i}]"
        if not isinstance(entry, Mapping):
            raise SpecError(f"{probe_where} must be a mapping")
        _reject_unknown_keys(entry, _CROSSOVER_KEYS, probe_where)
        crossovers.append(
            CrossoverSpec(
                name=str(_require(entry, "name", probe_where)),
                metric=str(_require(entry, "metric", probe_where)),
                level=float(_require(entry, "level", probe_where)),
                description=str(entry.get("description", "")),
            )
        )

    base_overrides = doc.get("base_overrides") or {}
    if not isinstance(base_overrides, Mapping):
        raise SpecError(f"{where}: 'base_overrides' must be a mapping")

    try:
        spec = SweepSpec(
            name=spec_id,
            exp_id=exp_id,
            description=str(doc.get("description", "")),
            axes=tuple(axes),
            metrics=tuple(str(m) for m in raw_metrics),
            base_overrides=dict(base_overrides),
            crossovers=tuple(crossovers),
            checks=(
                library.resolve_checks(str(doc["checks"]), where)
                if "checks" in doc
                else None
            ),
            derive=(
                library.resolve_derive(str(doc["derive"]), where)
                if "derive" in doc
                else None
            ),
            extra_metrics=extra_metrics,
        )
    except ValueError as exc:
        raise SpecError(f"{where}: {exc}") from exc

    # Resolve every axis name and the base overrides against the real
    # experiment config, so a typo fails at load, not mid-sweep.
    base_config = get_experiment(exp_id).config
    try:
        base_config.with_overrides(spec.base_overrides)
        for axis, values in spec.axes:
            axis_overrides(base_config, axis, values[0])
    except ValueError as exc:
        raise SpecError(f"{where}: {exc}") from exc
    return spec


def _build_experiment(doc: Mapping[str, Any], where: str) -> ExperimentSpecDoc:
    _reject_unknown_keys(doc, _EXPERIMENT_KEYS, where)
    spec_id = _require(doc, "id", where)
    if not isinstance(spec_id, str) or not spec_id:
        raise SpecError(f"{where}: 'id' must be a non-empty string")
    exp_id = _known_experiment(_require(doc, "experiment", where), where)
    overrides = doc.get("overrides") or {}
    if not isinstance(overrides, Mapping):
        raise SpecError(f"{where}: 'overrides' must be a mapping")
    spec = ExperimentSpecDoc(
        id=spec_id,
        experiment=exp_id,
        overrides=dict(overrides),
        category=str(doc.get("category", "")),
        description=str(doc.get("description", "")),
        path=where,
    )
    try:
        spec.resolve()  # validates override keys with did-you-mean
    except ValueError as exc:
        raise SpecError(f"{where}: {exc}") from exc
    return spec


def load_spec_file(path: Union[str, os.PathLike]) -> Union[SweepSpec, ExperimentSpecDoc]:
    """Load and validate one YAML spec file (either kind)."""
    path = Path(path)
    doc = _parse_doc(path)
    kind = _doc_kind(doc, str(path))
    if kind == "sweep":
        return _build_sweep(doc, str(path))
    return _build_experiment(doc, str(path))


def spec_info(path: Union[str, os.PathLike]) -> SpecInfo:
    """Listing metadata for one spec file (validates it fully)."""
    path = Path(path)
    spec = load_spec_file(path)
    doc = _parse_doc(path)
    if isinstance(spec, SweepSpec):
        return SpecInfo(
            id=spec.name,
            kind="sweep",
            experiment=spec.exp_id,
            category=str(doc.get("category", "")),
            description=spec.description,
            path=str(path),
        )
    return SpecInfo(
        id=spec.id,
        kind="experiment",
        experiment=spec.experiment,
        category=spec.category,
        description=spec.description,
        path=str(path),
    )


# ---------------------------------------------------------------------------
# Discovery.
# ---------------------------------------------------------------------------


def spec_dirs() -> List[Path]:
    """The spec search path, most-specific first, deduplicated."""
    candidates: List[Path] = []
    env = os.environ.get(ENV_SPECS_DIR)
    if env:
        candidates.append(Path(env))
    candidates.append(Path.cwd() / "specs")
    candidates.append(SHIPPED_SPECS_DIR)
    seen = set()
    out: List[Path] = []
    for path in candidates:
        try:
            resolved = path.resolve()
        except OSError:  # pragma: no cover - unresolvable path
            continue
        if resolved in seen or not path.is_dir():
            continue
        seen.add(resolved)
        out.append(path)
    return out


def iter_spec_files(kind: Optional[str] = None) -> List[Path]:
    """Every discoverable spec file, search-path order then name order."""
    kinds = [kind] if kind else list(KIND_DIRS)
    out: List[Path] = []
    for directory in spec_dirs():
        for k in kinds:
            sub = directory / KIND_DIRS[k]
            if not sub.is_dir():
                continue
            out.extend(sorted(
                p for ext in ("*.yaml", "*.yml") for p in sub.glob(ext)
            ))
    return out


def _discover(kind: str) -> Dict[str, Union[SweepSpec, ExperimentSpecDoc]]:
    """id -> spec for one kind; duplicate ids in one directory error."""
    out: Dict[str, Union[SweepSpec, ExperimentSpecDoc]] = {}
    for directory in spec_dirs():
        sub = directory / KIND_DIRS[kind]
        if not sub.is_dir():
            continue
        local: Dict[str, Path] = {}
        for path in sorted(
            p for ext in ("*.yaml", "*.yml") for p in sub.glob(ext)
        ):
            spec = load_spec_file(path)
            spec_id = spec.name if isinstance(spec, SweepSpec) else spec.id
            if spec_id in local:
                raise SpecError(
                    f"duplicate spec id {spec_id!r} in {sub}: "
                    f"{local[spec_id].name} and {path.name}"
                )
            local[spec_id] = path
            # Across directories the first (most specific) hit wins.
            out.setdefault(spec_id, spec)
    return out


def discovered_sweeps() -> Dict[str, SweepSpec]:
    """Every discoverable YAML sweep spec, by id."""
    return {k: v for k, v in _discover("sweep").items()}  # type: ignore[misc]


def discovered_experiments() -> Dict[str, ExperimentSpecDoc]:
    """Every discoverable YAML experiment spec, by id."""
    return {k: v for k, v in _discover("experiment").items()}  # type: ignore[misc]


def list_specs(kind: Optional[str] = None) -> List[SpecInfo]:
    """Listing metadata for every discoverable spec (``api.specs()``)."""
    out: List[SpecInfo] = []
    seen = set()
    for path in iter_spec_files(kind):
        info = spec_info(path)
        if (info.kind, info.id) in seen:
            continue  # shadowed by an earlier search-path directory
        seen.add((info.kind, info.id))
        out.append(info)
    return out


# ---------------------------------------------------------------------------
# Resolution: ids, paths, globs.
# ---------------------------------------------------------------------------


def _looks_like_path(ref: str) -> bool:
    return (
        ref.endswith((".yaml", ".yml"))
        or os.sep in ref
        or ("/" in ref)
    )


def load_spec(ref: str) -> Union[SweepSpec, ExperimentSpecDoc]:
    """Load a spec by filesystem path or discoverable id.

    A ``ref`` containing a path separator or a ``.yaml``/``.yml``
    suffix is read as a file; anything else is looked up by id across
    the spec search path (sweeps first, then experiments), with a
    did-you-mean error when nothing matches.
    """
    if _looks_like_path(ref):
        path = Path(ref)
        if not path.is_file():
            raise SpecError(f"no spec file at {ref!r}")
        return load_spec_file(path)
    sweeps = discovered_sweeps()
    if ref in sweeps:
        return sweeps[ref]
    experiments = discovered_experiments()
    if ref in experiments:
        return experiments[ref]
    known = sorted(set(sweeps) | set(experiments))
    raise SpecError(
        f"unknown spec {ref!r}{_suggest(ref, known)}; available: {known}"
    )


def load_sweep(ref: str) -> SweepSpec:
    """Load one sweep spec by path or id; experiment specs are an error."""
    spec = load_spec(ref)
    if not isinstance(spec, SweepSpec):
        raise SpecError(
            f"spec {ref!r} is an experiment spec, not a sweep "
            "(run it via api.record_for with its overrides)"
        )
    return spec


def get_sweep(name: str) -> SweepSpec:
    """The canonical sweep-name resolver: YAML first, registry shim second.

    ``repro sweep <name>``, ``api.sweep(name)``, and the serve endpoint
    all come through here. YAML specs (shipped or user-dir) win; names
    registered in the deprecated ``repro.sweep.specs.SWEEP_SPECS`` dict
    still resolve afterwards, so legacy Python registrations keep
    working through the migration.
    """
    if _looks_like_path(name):
        return load_sweep(name)
    sweeps = discovered_sweeps()
    if name in sweeps:
        return sweeps[name]
    from repro.sweep import specs as _legacy

    legacy = _legacy._registry()
    if name in legacy:
        return legacy[name]
    known = sorted(set(sweeps) | set(legacy))
    raise ValueError(
        f"unknown sweep {name!r}{_suggest(name, known)}; available: "
        + ", ".join(known)
    )


def expand_glob(pattern: str) -> List[Path]:
    """Expand a ``--glob`` pattern into spec file paths, sorted.

    Relative patterns resolve against the working directory (the
    documented invocation is ``repro sweep --glob
    "specs/sweeps/em3d-*.yaml"`` from the repository root); when a
    relative pattern matches nothing there, the shipped spec directory
    is tried as a fallback anchor.
    """
    import glob as _glob

    matches = sorted(_glob.glob(pattern, recursive=True))
    if not matches and not os.path.isabs(pattern):
        rooted = str(SHIPPED_SPECS_DIR.parent / pattern)
        matches = sorted(_glob.glob(rooted, recursive=True))
    return [Path(m) for m in matches]
