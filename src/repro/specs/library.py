"""Named callables YAML specs reference: checks, derives, extra metrics.

A sweep's *data* (axes, metrics, overrides, crossovers) serializes
cleanly to YAML, but its machine-checked claim is a callable — and a
callable cannot live in a data file. The bridge is this library: every
shape-check, derive post-pass, and extra-metric set has a stable name,
and a YAML spec references it by that name (``checks: em3d-latency``,
``derive: speedup-vs-first``). The loader resolves names through these
registries with the CLI's did-you-mean errors, so a YAML-loaded spec
carries the *same function objects* a Python registration would — which
is what makes the YAML↔Python parity bit-identical (dataclass equality
included).

The functions themselves are the former ``repro.sweep.specs``
registrations, moved here verbatim when the shipped specs migrated to
``specs/sweeps/*.yaml``.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.sweep.analysis import fmt_series, monotone
from repro.sweep.spec import SweepCheck, SweepPoint

#: Named extra-metric sets (sweep-local metric functions shadowing or
#: extending :mod:`repro.stats.metrics`). Empty by default; projects
#: and tests register entries to make scalar-summary experiments
#: sweepable from YAML.
EXTRA_METRICS: Dict[str, Mapping[str, Callable[[Mapping], float]]] = {}


# ---------------------------------------------------------------------------
# Shape checks (the machine-checked claims the shipped sweeps pin).
# ---------------------------------------------------------------------------


def check_em3d_latency(result: Any) -> List[SweepCheck]:
    _xs, ratio = result.series("sm_over_mp")
    return [
        (
            "sm/mp cycle ratio grows with network latency",
            monotone(ratio, increasing=True, strict=True),
            f"sm_over_mp: {fmt_series(ratio)}",
        ),
        (
            "mp wins at every swept latency (ratio stays above 1)",
            min(ratio) > 1.0,
            f"min sm_over_mp = {min(ratio):.3f}",
        ),
    ]


def check_em3d_modern(result: Any) -> List[SweepCheck]:
    xs, ratio = result.series("sm_over_mp")
    by_preset = dict(zip(xs, ratio))
    return [
        (
            "mp wins em3d on every machine table (ratio stays above 1)",
            min(ratio) > 1.0,
            f"min sm_over_mp = {min(ratio):.3f}",
        ),
        (
            "the memory wall widens mp's win on the multicore table",
            by_preset["multicore"] > by_preset["paper"],
            f"paper {by_preset['paper']:.2f} -> "
            f"multicore {by_preset['multicore']:.2f}",
        ),
        (
            "cross-node latency widens it further on the cluster table",
            by_preset["cluster"] > by_preset["multicore"],
            f"multicore {by_preset['multicore']:.2f} -> "
            f"cluster {by_preset['cluster']:.2f}",
        ),
    ]


def check_em3d_cache(result: Any) -> List[SweepCheck]:
    _xs, share = result.series("sm_data_access_share")
    return [
        (
            "sm data-access share falls as the cache grows",
            monotone(share, increasing=False, strict=True),
            f"sm_data_access_share: {fmt_series(share)}",
        ),
    ]


def check_gauss_speedup(result: Any) -> List[SweepCheck]:
    checks: List[SweepCheck] = []
    for key in ("mp", "sm"):
        _xs, speedup = result.series(f"{key}_speedup")
        checks.append(
            (
                f"{key} speedup is monotone through the swept procs",
                monotone(speedup, increasing=True, strict=True),
                f"{key}_speedup: {fmt_series(speedup)}",
            )
        )
    return checks


# ---------------------------------------------------------------------------
# Derive post-passes (per-point metrics computed over the whole grid).
# ---------------------------------------------------------------------------


def derive_speedups(points: List[SweepPoint]) -> None:
    """Per-version parallel speedup against the sweep's first point."""
    for key in ("mp", "sm"):
        base = points[0].metrics[f"{key}_total"]
        for point in points:
            total = point.metrics[f"{key}_total"]
            point.metrics[f"{key}_speedup"] = base / total if total else 0.0


# ---------------------------------------------------------------------------
# The registries YAML names resolve through.
# ---------------------------------------------------------------------------

CHECKS: Dict[str, Callable[[Any], List[SweepCheck]]] = {
    "em3d-latency": check_em3d_latency,
    "em3d-cache": check_em3d_cache,
    "em3d-modern": check_em3d_modern,
    "gauss-speedup": check_gauss_speedup,
}

DERIVES: Dict[str, Callable[[List[SweepPoint]], None]] = {
    "speedup-vs-first": derive_speedups,
}


def resolve_named(
    kind: str,
    name: str,
    registry: Mapping[str, Any],
    where: str = "",
) -> Any:
    """Look one named callable up, with a did-you-mean on typos."""
    try:
        return registry[name]
    except KeyError:
        known = sorted(registry)
        matches = difflib.get_close_matches(name, known, n=1, cutoff=0.4)
        hint = f" (did you mean {matches[0]!r}?)" if matches else ""
        suffix = f" in {where}" if where else ""
        raise ValueError(
            f"unknown {kind} {name!r}{suffix}{hint}; known: {known}"
        ) from None


def resolve_checks(name: str, where: str = "") -> Callable[[Any], List[SweepCheck]]:
    return resolve_named("checks callable", name, CHECKS, where)


def resolve_derive(name: str, where: str = "") -> Callable[[List[SweepPoint]], None]:
    return resolve_named("derive callable", name, DERIVES, where)


def resolve_extra_metrics(
    name: str, where: str = ""
) -> Optional[Mapping[str, Callable[[Mapping], float]]]:
    return resolve_named("extra-metrics set", name, EXTRA_METRICS, where)
