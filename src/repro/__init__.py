"""repro — reproduction of "Where is Time Spent in Message-Passing and
Shared-Memory Programs?" (Chandra, Larus, Rogers; ASPLOS 1994).

Public surface:

* machines: :class:`repro.mp.MpMachine` (CM-5-like message passing) and
  :class:`repro.sm.SmMachine` (Dir_nNB cache-coherent shared memory);
* hardware configuration: :class:`repro.arch.MachineParams` (the
  paper's Tables 1-3);
* applications: :mod:`repro.apps` (MSE, Gauss, EM3D, LCP — each as an
  MP/SM pair);
* the comparative study harness: :mod:`repro.core` (breakdowns, pair
  studies, and the experiment registry covering every table and figure
  of the paper's evaluation);
* the run harness: :mod:`repro.runner` (parameterized configs, a
  content-addressed on-disk result cache, and a multiprocessing
  executor behind ``python -m repro run --jobs N``);
* sensitivity sweeps: :mod:`repro.sweep` (declarative grids over
  latency/cache/procs axes with machine-checked curve shapes);
* the stable programmatic facade: :mod:`repro.api` — import from
  there, not from the implementing modules.

Quick taste::

    from repro import api
    pair = api.run_raw("gauss")
    print(f"Gauss-MP runs at {100 * pair.mp_relative_to_sm:.0f}% of Gauss-SM")
    result = api.sweep("em3d-latency")

or, from a shell::

    python -m repro list
    python -m repro run em3d --jobs 4
    python -m repro sweep em3d-latency
    python -m repro cache ls
"""

from repro.arch.params import MachineParams
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine

__version__ = "1.0.0"

__all__ = ["MachineParams", "MpMachine", "SmMachine", "__version__"]
