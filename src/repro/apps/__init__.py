"""The paper's four application pairs.

Each application has a machine-independent numeric core (``common``)
plus a message-passing and a shared-memory program built on the same
algorithm — the paper's methodology for comparable measurements:

* :mod:`repro.apps.mse` — microstructure electrostatics (boundary
  integral, asynchronous Jacobi with an interaction schedule);
* :mod:`repro.apps.gauss` — Gaussian elimination with partial pivoting
  (software reductions and broadcasts);
* :mod:`repro.apps.em3d` — electromagnetic wave propagation on a
  bipartite E/H graph (producer-consumer communication);
* :mod:`repro.apps.lcp` — linear complementarity by multi-sweep SOR
  (synchronous and asynchronous variants).
"""
