"""EM3D-SM: the shared-memory EM3D (paper Section 5.3).

No ghost nodes: caching is expected to exploit temporal locality, and
node *value* fields live in their own shared vectors for spatial
locality (as the paper's version does). Everything — values, adjacency
structure, weights — is allocated from the shared segment with the
machine's placement policy: round-robin by default (the paper's
gmalloc), or local placement for the Table 17 ablation.

Initialization builds the reverse-edge structure with locks and remote
writes: each processor updates in-degree counts and then records
refs/weights into the *sink* processor's arrays, lock-protected per
target processor. The main loop separates half-steps with barriers and
pays the full invalidation-protocol cost of producer-consumer reuse:
four messages per updated remote value.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.apps.em3d.common import E, H, Em3dConfig, Em3dGraph, build_graph
from repro.sm.machine import SmMachine, SmRunResult


#: Main-loop variants. "base" is the paper's EM3D-SM; "flush" applies
#: the Section 5.3.4 consumer-flush suggestion (2-message invalidations
#: become 1-message replacements); "prefetch" issues cooperative
#: prefetches for the half-step's remote sources right after the
#: barrier ("a consumer need not worry about issuing a prefetch too
#: early"); "update" replaces invalidation with the bulk-update
#: protocol (Falsafi et al.), which made EM3D-SM perform equivalently
#: to EM3D-MP.
VARIANTS = ("base", "flush", "prefetch", "update")


def em3d_sm_program(
    ctx, config: Em3dConfig, graph: Em3dGraph, shared: Dict, variant: str = "base"
):
    """Per-processor EM3D-SM program. Returns (e_values, h_values)."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    n = config.nodes_per_proc
    me, nprocs = ctx.pid, ctx.nprocs
    # Striped locks protecting each target processor's node metadata:
    # finer than one lock per processor (the paper's updates are
    # per-node), coarse enough to keep lock state compact.
    stripes = 8
    locks = [
        [ctx.machine.make_lock(f"em3d.node{p}.s{s}") for s in range(stripes)]
        for p in range(nprocs)
    ]

    def lock_for(dest_pid: int, dest: int):
        return locks[dest_pid][dest % stripes]

    value_protocol = "update" if variant == "update" else "dir"

    with ctx.stats.phase("init"):
        if me == 0:
            for pid in range(nprocs):
                for kind in (E, H):
                    shared[("vals", kind, pid)] = ctx.gmalloc(
                        f"vals{kind}.{pid}", n, protocol=value_protocol
                    )
                    shared[("indeg", kind, pid)] = ctx.gmalloc(
                        f"indeg{kind}.{pid}", n, dtype=np.int64
                    )
                    shared[("cursor", kind, pid)] = ctx.gmalloc(
                        f"cursor{kind}.{pid}", n, dtype=np.int64
                    )
            ctx.create()
        else:
            yield from ctx.wait_create()

        # Graph generation: random edges, node allocation, pointer setup
        # (the same construction work as EM3D-MP).
        from repro.apps.em3d.common import BUILD_OPS_PER_EDGE, BUILD_OPS_PER_NODE

        total_out = sum(len(graph.out_edges[k][me]) for k in (E, H))
        yield from ctx.compute(
            ctx.costs.int_ops(
                BUILD_OPS_PER_EDGE * total_out + BUILD_OPS_PER_NODE * 2 * n
            )
        )
        for kind in (E, H):
            yield from ctx.write(
                shared[("vals", kind, me)], 0, values=graph.initial_values(kind, me)
            )
        yield from ctx.barrier()

        # Pass 1: in-degree counts. Local edges are tallied in a private
        # array (the owner merges them after the barrier); only updates
        # to *remote* sinks take the sink processor's lock — the lock
        # and remote-write costs the paper attributes to initialization.
        local_indeg = {kind: np.zeros(n, dtype=np.int64) for kind in (E, H)}
        for src_kind in (E, H):
            dest_kind = H if src_kind == E else E
            my_out = graph.out_edges[src_kind][me]
            for src, dest_pid, dest, _weight in my_out:
                if dest_pid == me:
                    local_indeg[dest_kind][dest] += 1
                    continue
                indeg = shared[("indeg", dest_kind, dest_pid)]
                lock = lock_for(dest_pid, dest)
                yield from lock.acquire(ctx)
                counts = yield from ctx.read(indeg, dest, dest + 1)
                yield from ctx.write(indeg, dest, values=[int(counts[0]) + 1])
                yield from lock.release(ctx)
            yield from ctx.compute(ctx.costs.int_ops(4 * len(my_out)))
        yield from ctx.barrier()

        # Owners merge local counts and build CSR skeletons. The shared
        # cursor starts past the owner's reserved local slots.
        for dest_kind in (E, H):
            indeg_region = shared[("indeg", dest_kind, me)]
            remote_indeg = np.array(
                (yield from ctx.read(indeg_region))
            ).astype(np.int64)
            indeg = remote_indeg + local_indeg[dest_kind]
            indptr = np.zeros(n + 1, dtype=np.int64)
            indptr[1:] = np.cumsum(indeg)
            total = int(indptr[-1])
            yield from ctx.compute(ctx.costs.int_ops(3 * n))
            indptr_region = ctx.gmalloc(f"indptr{dest_kind}.{me}", n + 1, dtype=np.int64)
            refs_region = ctx.gmalloc(
                f"refs{dest_kind}.{me}", max(total, 1), dtype=np.int64
            )
            w_region = ctx.gmalloc(f"w{dest_kind}.{me}", max(total, 1))
            yield from ctx.write(indptr_region, 0, values=indptr)
            yield from ctx.write(
                shared[("cursor", dest_kind, me)],
                0,
                values=indptr[:-1] + local_indeg[dest_kind],
            )
            shared[("indptr", dest_kind, me)] = indptr_region
            shared[("refs", dest_kind, me)] = refs_region
            shared[("w", dest_kind, me)] = w_region
        # Record this processor's local edges into its reserved slots
        # (no locks: nobody else touches them).
        local_cursor = {
            kind: np.zeros(n, dtype=np.int64) for kind in (E, H)
        }
        for dest_kind in (E, H):
            indptr = shared[("indptr", dest_kind, me)].np
            src_kind = H if dest_kind == E else E
            refs = shared[("refs", dest_kind, me)]
            weights = shared[("w", dest_kind, me)]
            for src, dest_pid, dest, weight in graph.out_edges[src_kind][me]:
                if dest_pid != me:
                    continue
                slot = int(indptr[dest] + local_cursor[dest_kind][dest])
                local_cursor[dest_kind][dest] += 1
                yield from ctx.write(refs, slot, values=[me * n + src])
                yield from ctx.write(weights, slot, values=[weight])
                yield from ctx.compute(ctx.costs.int_ops(6))
        yield from ctx.barrier()

        # Pass 2: record *remote* refs/weights into the sink's arrays,
        # lock-protected (remote writes miss nearly every time — another
        # processor invalidates the block before it can be reused).
        for src_kind in (E, H):
            dest_kind = H if src_kind == E else E
            for src, dest_pid, dest, weight in graph.out_edges[src_kind][me]:
                if dest_pid == me:
                    continue
                cursor = shared[("cursor", dest_kind, dest_pid)]
                refs = shared[("refs", dest_kind, dest_pid)]
                weights = shared[("w", dest_kind, dest_pid)]
                lock = lock_for(dest_pid, dest)
                yield from lock.acquire(ctx)
                slot_vals = yield from ctx.read(cursor, dest, dest + 1)
                slot = int(slot_vals[0])
                yield from ctx.write(refs, slot, values=[me * n + src])
                yield from ctx.write(weights, slot, values=[weight])
                yield from ctx.write(cursor, dest, values=[slot + 1])
                yield from lock.release(ctx)
                yield from ctx.compute(ctx.costs.int_ops(6))
        yield from ctx.barrier()

    # Consumers of each kind of my values, and which of my node indices
    # they read (used by the "update" variant's pushes).
    push_lists: Dict[int, Dict[int, List[int]]] = {E: {}, H: {}}
    if variant == "update":
        for kind in (E, H):
            by_dest: Dict[int, set] = {}
            for src, dest_pid, _dest, _w in graph.out_edges[kind][me]:
                if dest_pid != me:
                    by_dest.setdefault(dest_pid, set()).add(src)
            push_lists[kind] = {
                dest: sorted(srcs) for dest, srcs in by_dest.items()
            }
    # Remote sources this node gathers per half-step (used by the
    # "prefetch" variant). Derived from the same edge knowledge the
    # initialization phase built into the CSR structure.
    prefetch_lists: Dict[int, Dict[int, List[int]]] = {E: {}, H: {}}
    if variant == "prefetch":
        for dest_kind in (E, H):
            by_src: Dict[int, set] = {}
            for deps in graph.in_edges(dest_kind, me):
                for sp, si, _w in deps:
                    if sp != me:
                        by_src.setdefault(sp, set()).add(si)
            prefetch_lists[dest_kind] = {
                sp: sorted(indices) for sp, indices in by_src.items()
            }

    with ctx.stats.phase("main"):
        indptr_cache = {
            kind: np.array(shared[("indptr", kind, me)].np) for kind in (E, H)
        }
        # The CSR structure is final after the init barrier, so each
        # node's half-step work — read refs, read weights, one gather
        # per source processor (sorted), then the per-edge compute — can
        # be declared once as a bulk run and replayed every iteration.
        node_plans: Dict[int, List[Tuple[int, int, List[int], object]]] = {}
        for dest_kind in (E, H):
            src_kind = H if dest_kind == E else E
            indptr = indptr_cache[dest_kind]
            refs_region = shared[("refs", dest_kind, me)]
            w_region = shared[("w", dest_kind, me)]
            refs_np = refs_region.np
            rows = []
            for i in range(n):
                start, end = int(indptr[i]), int(indptr[i + 1])
                if start == end:
                    continue
                by_proc: Dict[int, List[int]] = {}
                for ref in refs_np[start:end]:
                    sp, si = divmod(int(ref), n)
                    by_proc.setdefault(sp, []).append(si)
                group_procs = sorted(by_proc)
                degree = end - start
                script = (
                    ctx.batch()
                    .read(refs_region, start, end)
                    .read(w_region, start, end)
                )
                for sp in group_procs:
                    script.read_gather(
                        shared[("vals", src_kind, sp)], by_proc[sp]
                    )
                script.compute_flops(2 * degree)
                script.compute(ctx.costs.int_ops(8 * degree))
                rows.append((i, start, group_procs, script))
            node_plans[dest_kind] = rows
        for _iteration in range(config.iterations):
            for dest_kind in (E, H):
                src_kind = H if dest_kind == E else E
                my_vals = shared[("vals", dest_kind, me)]
                new_vals = np.zeros(n)
                remote_reads: Dict[int, set] = {}
                # Touch the indptr once per half-step (it is read-shared).
                yield from ctx.read(shared[("indptr", dest_kind, me)])
                if variant == "prefetch":
                    # Cooperative prefetch of this half-step's remote
                    # sources; replies overlap with the local compute.
                    for sp in sorted(prefetch_lists[dest_kind]):
                        yield from ctx.prefetch_gather(
                            shared[("vals", src_kind, sp)],
                            prefetch_lists[dest_kind][sp],
                        )
                for i, _start, group_procs, script in node_plans[dest_kind]:
                    got = yield from ctx.run_batch(script)
                    refs, ws = got[0], got[1]
                    acc = 0.0
                    by_proc: Dict[int, Tuple[List[int], List[float]]] = {}
                    for ref, weight in zip(refs, ws):
                        sp, si = divmod(int(ref), n)
                        entry = by_proc.setdefault(sp, ([], []))
                        entry[0].append(si)
                        entry[1].append(float(weight))
                    for gi, sp in enumerate(group_procs):
                        indices, wlist = by_proc[sp]
                        vals = got[2 + gi]
                        acc += float(np.dot(np.asarray(wlist), vals))
                        if variant == "flush" and sp != me:
                            remote_reads.setdefault(sp, set()).update(indices)
                    new_vals[i] = acc
                yield from ctx.compute(ctx.costs.loop(n))
                if variant == "flush":
                    # Consumer flush: release remote source copies so the
                    # producers' next writes need no invalidation round.
                    for sp in sorted(remote_reads):
                        yield from ctx.flush_gather(
                            shared[("vals", src_kind, sp)],
                            sorted(remote_reads[sp]),
                        )
                yield from ctx.write(my_vals, 0, values=new_vals)
                if variant == "update":
                    # Bulk-update push: one message per consumer carries
                    # the blocks it reads (instead of invalidations now
                    # and misses later).
                    for dest in sorted(push_lists[dest_kind]):
                        yield from ctx.push_update(
                            my_vals, push_lists[dest_kind][dest], [dest]
                        )
                # Barrier between half-steps: no one may read a value
                # before it is computed.
                yield from ctx.barrier()
    return (
        shared[("vals", E, me)].np.copy(),
        shared[("vals", H, me)].np.copy(),
    )


def run_em3d_sm(
    machine: SmMachine, config: Em3dConfig, variant: str = "base"
) -> Tuple[SmRunResult, np.ndarray, np.ndarray]:
    """Run EM3D-SM; returns (result, e_values, h_values) stacked by proc.

    ``variant``: "base" (the paper's program), "flush" (consumer
    flushes, Section 5.3.4), or "update" (bulk-update protocol).
    """
    graph = build_graph(config, machine.nprocs)
    shared: Dict = {}
    result = machine.run(em3d_sm_program, config, graph, shared, variant)
    e_vals = np.stack([out[0] for out in result.outputs])
    h_vals = np.stack([out[1] for out in result.outputs])
    return result, e_vals, h_vals
