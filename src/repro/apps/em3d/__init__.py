"""EM3D: electromagnetic-wave propagation on a bipartite graph
(paper Section 5.3)."""

from repro.apps.em3d.common import Em3dConfig, Em3dGraph, build_graph, reference_values
from repro.apps.em3d.mp import run_em3d_mp
from repro.apps.em3d.sm import run_em3d_sm

__all__ = [
    "Em3dConfig",
    "Em3dGraph",
    "build_graph",
    "reference_values",
    "run_em3d_mp",
    "run_em3d_sm",
]
