"""EM3D-MP: the message-passing EM3D (paper Section 5.3).

Structure follows the Split-C original: one *ghost node per remote
edge* shadows each remote source value. Initialization exchanges edge
information between each pair of processors in a single bulk message
and sets up a CMMD channel per communicating pair, directed straight at
the receiver's ghost array. In the main loop the only communication is
a bulk channel write per neighbor per half-step ("sender initiates,
bulk transfer, static channels" — the three efficiencies the paper
credits). Flow control is a one-round credit: a small acknowledgement
message per neighbor per half-step, standing in for CMMD's channel
handshake.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.em3d.common import E, H, Em3dConfig, Em3dGraph, build_graph
from repro.mp.machine import MpMachine

#: Handler names.
_COUNT_HANDLER = "_em3d_edge_count"
_CREDIT_HANDLER = "_em3d_credit"


class _NodeState:
    """Mutable per-processor state shared with AM handlers."""

    def __init__(self) -> None:
        # (kind, src_pid) -> announced edge count.
        self.edge_counts: Dict[Tuple[int, int], int] = {}
        # (kind, peer) -> rounds of credit granted to us as a sender.
        self.credits: Dict[Tuple[int, int], int] = defaultdict(lambda: 1)


def _on_edge_count(state: _NodeState):
    def handler(ctx, packet):
        kind, count = packet.payload
        state.edge_counts[(kind, packet.src)] = count
        return
        yield  # pragma: no cover

    return handler


def _on_credit(state: _NodeState):
    def handler(ctx, packet):
        (kind,) = packet.payload
        state.credits[(kind, packet.src)] += 1
        return
        yield  # pragma: no cover

    return handler


def em3d_mp_program(ctx, config: Em3dConfig, graph: Em3dGraph):
    """Per-processor EM3D-MP program. Returns (e_values, h_values)."""
    n = config.nodes_per_proc
    me, nprocs = ctx.pid, ctx.nprocs
    state = _NodeState()
    ctx.am.register(_COUNT_HANDLER, _on_edge_count(state))
    ctx.am.register(_CREDIT_HANDLER, _on_credit(state))

    values = {}  # kind -> Region of this node's values
    ghosts = {}  # src_kind -> Region of ghost slots for remote sources
    csr = {}  # kind -> (indptr Region, refs Region, weights Region)
    send_lists = {}  # src_kind -> {dest: [local src indices]}
    send_channels = {}  # (src_kind, dest) -> SendChannel
    recv_channels = {}  # (src_kind, src) -> RecvChannel
    recv_bytes = {}  # (src_kind, src) -> bytes per round

    with ctx.stats.phase("init"):
        # Graph generation: random edges, node allocation, pointer setup.
        from repro.apps.em3d.common import BUILD_OPS_PER_EDGE, BUILD_OPS_PER_NODE

        total_out = sum(len(graph.out_edges[k][me]) for k in (E, H))
        yield from ctx.compute(
            ctx.costs.int_ops(
                BUILD_OPS_PER_EDGE * total_out + BUILD_OPS_PER_NODE * 2 * n
            )
        )
        for kind in (E, H):
            values[kind] = ctx.alloc(f"vals{kind}", n)
            yield from ctx.write(values[kind], 0, values=graph.initial_values(kind, me))

        # --- exchange edge information, one bulk message per pair -------
        for src_kind in (E, H):
            my_out = graph.out_edges[src_kind][me]
            by_dest: Dict[int, List[Tuple[int, int, float]]] = defaultdict(list)
            local_triples: List[Tuple[int, int, float]] = []
            for src, dest_pid, dest, weight in my_out:
                if dest_pid == me:
                    local_triples.append((src, dest, weight))
                else:
                    by_dest[dest_pid].append((src, dest, weight))
            # The grouping pass reads the out-edge list once.
            yield from ctx.compute(ctx.costs.int_ops(4 * len(my_out)))
            # Announce counts.
            for peer in range(nprocs):
                if peer == me:
                    continue
                yield from ctx.am.send(
                    peer, _COUNT_HANDLER, src_kind, len(by_dest.get(peer, ()))
                )
        # Wait for all announcements.
        expected = {(k, p) for k in (E, H) for p in range(nprocs) if p != me}
        yield from ctx.poll_wait(lambda: expected <= set(state.edge_counts))

        edge_buffers = {}
        incoming_offsets = {}
        for src_kind in (E, H):
            total_in = sum(
                state.edge_counts[(src_kind, p)] for p in range(nprocs) if p != me
            )
            edge_buffers[src_kind] = ctx.alloc(
                f"edgebuf{src_kind}", max(3 * total_in, 1)
            )
            offsets = {}
            cursor = 0
            for peer in range(nprocs):
                if peer == me:
                    continue
                count = state.edge_counts[(src_kind, peer)]
                offsets[peer] = (cursor, count)
                cursor += 3 * count
            incoming_offsets[src_kind] = offsets
            # Offer receive channels first (deadlock-free rendezvous).
            for peer in range(nprocs):
                if peer == me:
                    continue
                offset, count = offsets[peer]
                if count == 0:
                    continue
                channel = yield from ctx.cmmd.offer_channel(
                    peer,
                    edge_buffers[src_kind],
                    offset,
                    offset + 3 * count,
                    key=f"edges{src_kind}",
                )
                recv_channels[("edges", src_kind, peer)] = channel
        # Send our edge triples in bulk.
        for src_kind in (E, H):
            my_out = graph.out_edges[src_kind][me]
            by_dest = defaultdict(list)
            for src, dest_pid, dest, weight in my_out:
                if dest_pid != me:
                    by_dest[dest_pid].append((src, dest, weight))
            send_lists[src_kind] = {
                dest: [t[0] for t in triples] for dest, triples in by_dest.items()
            }
            for dest in sorted(by_dest):
                triples = by_dest[dest]
                flat = np.array(
                    [v for t in triples for v in (float(t[0]), float(t[1]), t[2])]
                )
                channel = yield from ctx.cmmd.accept_channel(
                    dest, key=f"edges{src_kind}"
                )
                yield from ctx.cmmd.write_channel(channel, flat)
        # Await all incoming edge bulk messages.
        for src_kind in (E, H):
            for peer in range(nprocs):
                key = ("edges", src_kind, peer)
                if key in recv_channels:
                    yield from ctx.cmmd.wait_channel(recv_channels[key])

        # --- build ghost slots and the in-edge (CSR) structure -----------
        for dest_kind in (E, H):
            src_kind = H if dest_kind == E else E
            # Pass 1 over edge info: in-degrees.
            indeg = np.zeros(n, dtype=np.int64)
            my_out = graph.out_edges[src_kind][me]
            local_triples = [
                (s, d, w) for (s, dp, d, w) in my_out if dp == me
            ]
            arrivals: List[Tuple[int, List[Tuple[int, int, float]]]] = []
            offsets = incoming_offsets[src_kind]
            for peer in sorted(offsets):
                offset, count = offsets[peer]
                if count == 0:
                    continue
                flat = yield from ctx.read(
                    edge_buffers[src_kind], offset, offset + 3 * count
                )
                triples = [
                    (int(flat[3 * j]), int(flat[3 * j + 1]), float(flat[3 * j + 2]))
                    for j in range(count)
                ]
                arrivals.append((peer, triples))
            for _src, dest, _w in local_triples:
                indeg[dest] += 1
            for _peer, triples in arrivals:
                for _src, dest, _w in triples:
                    indeg[dest] += 1
            total_edges = int(indeg.sum())
            yield from ctx.compute(ctx.costs.int_ops(2 * total_edges))

            # Pass 2: record refs. Ghost slots are assigned in arrival
            # order (one per remote edge), matching the sender's list.
            indptr = np.zeros(n + 1, dtype=np.int64)
            indptr[1:] = np.cumsum(indeg)
            refs = np.zeros(max(total_edges, 1), dtype=np.int64)
            weights = np.zeros(max(total_edges, 1), dtype=np.float64)
            cursor = indptr[:-1].copy()
            n_ghosts = sum(len(t) for _p, t in arrivals)
            ghost_region = ctx.alloc(f"ghost{src_kind}", max(n_ghosts, 1))
            ghost_offset_of_peer = {}
            ghost_slot = 0
            for _src, dest, weight in local_triples:
                refs[cursor[dest]] = _src  # local H/E index
                weights[cursor[dest]] = weight
                cursor[dest] += 1
            for peer, triples in arrivals:
                ghost_offset_of_peer[peer] = ghost_slot
                for _src, dest, weight in triples:
                    refs[cursor[dest]] = n + ghost_slot  # ghost reference
                    weights[cursor[dest]] = weight
                    cursor[dest] += 1
                    ghost_slot += 1
            yield from ctx.compute(ctx.costs.int_ops(6 * total_edges))

            indptr_region = ctx.alloc(f"indptr{dest_kind}", n + 1, dtype=np.int64)
            refs_region = ctx.alloc(
                f"refs{dest_kind}", max(total_edges, 1), dtype=np.int64
            )
            w_region = ctx.alloc(f"w{dest_kind}", max(total_edges, 1))
            yield from ctx.write(indptr_region, 0, values=indptr)
            if total_edges:
                yield from ctx.write(refs_region, 0, values=refs)
                yield from ctx.write(w_region, 0, values=weights)
            csr[dest_kind] = (indptr_region, refs_region, w_region)
            ghosts[src_kind] = ghost_region

            # Offer the per-source main-loop channels over ghost slices.
            for peer, triples in arrivals:
                offset = ghost_offset_of_peer[peer]
                channel = yield from ctx.cmmd.offer_channel(
                    peer,
                    ghost_region,
                    offset,
                    offset + len(triples),
                    key=f"ghost{src_kind}",
                )
                recv_channels[("ghost", src_kind, peer)] = channel
                recv_bytes[(src_kind, peer)] = len(triples) * 8
        # Claim send channels toward every dependent processor.
        for src_kind in (E, H):
            for dest in sorted(send_lists[src_kind]):
                channel = yield from ctx.cmmd.accept_channel(
                    dest, key=f"ghost{src_kind}"
                )
                send_channels[(src_kind, dest)] = channel
        yield from ctx.barrier()

    with ctx.stats.phase("main"):
        # The CSR structure is final after the init barrier, so each
        # node's half-step work — read refs, read weights, gather local
        # sources, gather ghosts, per-edge compute — is declared once as
        # a bulk run and replayed every iteration.
        node_plans: Dict[int, List] = {}
        for dest_kind in (E, H):
            src_kind = H if dest_kind == E else E
            indptr_region, refs_region, w_region = csr[dest_kind]
            indptr_np = indptr_region.np
            refs_np = refs_region.np
            rows = []
            for i in range(n):
                start, end = int(indptr_np[i]), int(indptr_np[i + 1])
                if start == end:
                    continue
                local_mask = refs_np[start:end] < n
                has_local = bool(local_mask.any())
                has_ghost = bool((~local_mask).any())
                degree = end - start
                script = (
                    ctx.batch()
                    .read(refs_region, start, end)
                    .read(w_region, start, end)
                )
                if has_local:
                    script.read_gather(
                        values[src_kind], refs_np[start:end][local_mask]
                    )
                if has_ghost:
                    script.read_gather(
                        ghosts[src_kind], refs_np[start:end][~local_mask] - n
                    )
                script.compute_flops(2 * degree)
                script.compute(ctx.costs.int_ops(8 * degree))
                rows.append((i, has_local, has_ghost, script))
            node_plans[dest_kind] = rows
        for iteration in range(config.iterations):
            for dest_kind in (E, H):
                src_kind = H if dest_kind == E else E
                # Each src_kind is transferred once per iteration; the
                # credit counter for (src_kind, peer) tracks that series.
                round_number = iteration + 1
                # Send my source values to every dependent processor.
                for dest in sorted(send_lists[src_kind]):
                    src_list = send_lists[src_kind][dest]
                    yield from ctx.poll_wait(
                        lambda d=dest: state.credits[(src_kind, d)] >= round_number
                    )
                    outgoing = yield from ctx.read_gather(
                        values[src_kind], src_list
                    )
                    yield from ctx.cmmd.write_channel(
                        send_channels[(src_kind, dest)], outgoing
                    )
                # Await this round's ghosts.
                for peer in range(nprocs):
                    key = ("ghost", src_kind, peer)
                    if key in recv_channels:
                        yield from ctx.cmmd.wait_channel(
                            recv_channels[key], recv_bytes[(src_kind, peer)]
                        )
                        yield from ctx.am.send(peer, _CREDIT_HANDLER, src_kind)
                # Compute the half-step from local values and ghosts.
                new_vals = np.zeros(n)
                for i, has_local, has_ghost, script in node_plans[dest_kind]:
                    got = yield from ctx.run_batch(script)
                    refs, ws = got[0], got[1]
                    local_mask = refs < n
                    acc = 0.0
                    slot = 2
                    if has_local:
                        acc += float(np.dot(ws[local_mask], got[slot]))
                        slot += 1
                    if has_ghost:
                        acc += float(np.dot(ws[~local_mask], got[slot]))
                    new_vals[i] = acc
                yield from ctx.compute(ctx.costs.loop(n))
                yield from ctx.write(values[dest_kind], 0, values=new_vals)
        yield from ctx.barrier()
    return values[E].np.copy(), values[H].np.copy()


def run_em3d_mp(machine: MpMachine, config: Em3dConfig):
    """Run EM3D-MP; returns (result, e_values, h_values) stacked by proc."""
    graph = build_graph(config, machine.nprocs)
    result = machine.run(em3d_mp_program, config, graph)
    e_vals = np.stack([out[0] for out in result.outputs])
    h_vals = np.stack([out[1] for out in result.outputs])
    return result, e_vals, h_vals
