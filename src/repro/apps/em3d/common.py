"""Machine-independent core of EM3D.

The problem is a computation on a bipartite graph: directed edges from
E nodes (electric field) to H nodes (magnetic field) and vice versa. At
each half-step, new E values are computed from the weighted sum of
neighboring H nodes, then new H values from neighboring E nodes. Each
processor allocates an equal set of E and H nodes; a user-specified
percentage of edges point to nodes on remote processors (paper: 1000 E
+ 1000 H nodes per processor, out-degree 10, 20% remote, 50 iterations).

The generator produces *out*-edges (source-side adjacency); the two
machine programs build the in-edge (dependency) structures through
simulated communication, because that construction — bulk messages in
MP, locks and remote writes in SM — is exactly the initialization cost
the paper analyzes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.sim.rng import RngStreams

#: Kinds of graph node. E nodes read from H nodes and vice versa.
E, H = 0, 1
KIND_NAMES = {E: "E", H: "H"}

#: Computation charged for building one edge / one node of the graph
#: (random generation, allocation, pointer initialization). Derived
#: from the paper's EM3D-MP initialization, which is 91% computation:
#: 18.2M cycles over ~40K edges per processor.
BUILD_OPS_PER_EDGE = 150
BUILD_OPS_PER_NODE = 200


@dataclass(frozen=True)
class Em3dConfig:
    """Workload parameters for one EM3D run."""

    nodes_per_proc: int = 1000  # E nodes (and H nodes) per processor
    degree: int = 10  # out-degree of every node
    remote_frac: float = 0.20  # fraction of edges pointing off-processor
    iterations: int = 50
    seed: int = 1994

    @classmethod
    def paper(cls) -> "Em3dConfig":
        return cls()

    @classmethod
    def small(
        cls,
        nodes_per_proc: int = 30,
        degree: int = 4,
        remote_frac: float = 0.20,
        iterations: int = 4,
        seed: int = 1994,
    ) -> "Em3dConfig":
        return cls(nodes_per_proc, degree, remote_frac, iterations, seed)


@dataclass
class Em3dGraph:
    """Out-edge representation, per source processor.

    ``out_edges[kind][pid]`` is a list of ``(src_index, dest_pid,
    dest_index, weight)`` tuples: an edge from node ``src_index`` of
    ``kind`` on ``pid`` to the opposite-kind node ``dest_index`` on
    ``dest_pid``. Initial node values are deterministic functions of
    identity so both machine versions start identically.
    """

    config: Em3dConfig
    nprocs: int
    out_edges: Dict[int, List[List[Tuple[int, int, int, float]]]]

    def initial_value(self, kind: int, pid: int, index: int) -> float:
        base = 1.0 if kind == E else -1.0
        return base * (1.0 + 0.01 * pid + 0.001 * index)

    def initial_values(self, kind: int, pid: int) -> np.ndarray:
        n = self.config.nodes_per_proc
        return np.array(
            [self.initial_value(kind, pid, i) for i in range(n)], dtype=np.float64
        )

    def in_edges(self, kind: int, pid: int) -> List[List[Tuple[int, int, float]]]:
        """Dependency lists: for each ``kind`` node on ``pid``, the
        ``(src_pid, src_index, weight)`` of its opposite-kind sources.

        This is the *reference* construction (no simulated cost); the
        machine programs must arrive at the same structure through
        communication.
        """
        n = self.config.nodes_per_proc
        src_kind = H if kind == E else E
        result: List[List[Tuple[int, int, float]]] = [[] for _ in range(n)]
        for src_pid in range(self.nprocs):
            for src, dest_pid, dest, weight in self.out_edges[src_kind][src_pid]:
                if dest_pid == pid:
                    result[dest].append((src_pid, src, weight))
        return result

    def remote_edge_count(self, pid: int) -> int:
        """Out-edges from ``pid`` whose sink is on another processor."""
        return sum(
            1
            for kind in (E, H)
            for (_s, dest_pid, _d, _w) in self.out_edges[kind][pid]
            if dest_pid != pid
        )


def build_graph(config: Em3dConfig, nprocs: int) -> Em3dGraph:
    """Randomly generate the bipartite graph (deterministic in the seed)."""
    if not 0.0 <= config.remote_frac <= 1.0:
        raise ValueError("remote_frac must be in [0, 1]")
    if nprocs == 1 and config.remote_frac > 0.0:
        raise ValueError("remote edges require at least two processors")
    rng = RngStreams(config.seed).stream("em3d.graph")
    n = config.nodes_per_proc
    out_edges: Dict[int, List[List[Tuple[int, int, int, float]]]] = {E: [], H: []}
    for kind in (E, H):
        for pid in range(nprocs):
            edges: List[Tuple[int, int, int, float]] = []
            for src in range(n):
                for _ in range(config.degree):
                    if nprocs > 1 and rng.uniform() < config.remote_frac:
                        dest_pid = int(rng.integers(nprocs - 1))
                        if dest_pid >= pid:
                            dest_pid += 1
                    else:
                        dest_pid = pid
                    dest = int(rng.integers(n))
                    weight = float(rng.uniform(0.01, 1.0)) / config.degree
                    edges.append((src, dest_pid, dest, weight))
            out_edges[kind].append(edges)
    return Em3dGraph(config=config, nprocs=nprocs, out_edges=out_edges)


def reference_values(
    graph: Em3dGraph, iterations: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the computation directly in numpy (the oracle for both programs).

    Returns final (e_values, h_values) of shape (nprocs, nodes_per_proc).
    """
    config = graph.config
    nprocs = graph.nprocs
    n = config.nodes_per_proc
    e_vals = np.stack([graph.initial_values(E, p) for p in range(nprocs)])
    h_vals = np.stack([graph.initial_values(H, p) for p in range(nprocs)])
    e_in = [graph.in_edges(E, p) for p in range(nprocs)]
    h_in = [graph.in_edges(H, p) for p in range(nprocs)]
    for _ in range(iterations):
        new_e = np.zeros_like(e_vals)
        for pid in range(nprocs):
            for i, deps in enumerate(e_in[pid]):
                new_e[pid, i] = sum(w * h_vals[sp, si] for sp, si, w in deps)
        e_vals = new_e
        new_h = np.zeros_like(h_vals)
        for pid in range(nprocs):
            for i, deps in enumerate(h_in[pid]):
                new_h[pid, i] = sum(w * e_vals[sp, si] for sp, si, w in deps)
        h_vals = new_h
    return e_vals, h_vals
