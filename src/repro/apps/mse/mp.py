"""MSE-MP: message-passing microstructure electrostatics.

Each processor keeps a local copy of the solution vector. When its
schedule calls for updates to a body's values, it sends an asynchronous
request to the owner and awaits the reply; processors service such
requests asynchronously at poll points inside their compute loop
(paper Section 5.1). There are no barriers in the main loop: the
communication cost and load-imbalance waiting both surface as library
time, as the paper observes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.apps.mse.common import (
    MseConfig,
    MseProblem,
    body_block,
    generate_problem,
    owner_of_body,
    refresh_period,
)
from repro.mp.machine import MpMachine, MpRunResult

_REQ_HANDLER = "_mse_req"
_VAL_HANDLER = "_mse_val"

#: Extra start-up work processor 0 performs (problem setup the original
#: code runs sequentially before the parallel phase).
_SETUP_OPS_PER_PAIR = 150


class _NodeState:
    def __init__(self) -> None:
        self.replies = 0


def mse_mp_program(ctx, config: MseConfig, problem: MseProblem):
    """Per-processor MSE-MP program. Returns the local solution vector."""
    n = config.total_elements
    m = config.elements_per_body
    me, nprocs = ctx.pid, ctx.nprocs
    body_lo, body_hi = body_block(me, config.bodies, nprocs)
    row_lo, row_hi = body_lo * m, body_hi * m
    state = _NodeState()

    with ctx.stats.phase("init"):
        positions = ctx.alloc("positions", 3 * n)
        solution = ctx.alloc("solution", n, fill=0.0)
        rhs = ctx.alloc("rhs", n)

        def on_request(handler_ctx, packet):
            body = packet.payload[0]
            lo = body * m
            values = yield from handler_ctx.read(solution, lo, lo + m)
            yield from handler_ctx.am.send_train(
                packet.src, _VAL_HANDLER, (body, np.array(values)), nbytes=8 * m
            )

        def on_values(handler_ctx, packet):
            body, values = packet.payload
            yield from handler_ctx.write(solution, body * m, values=values)
            state.replies += 1

        ctx.am.register(_REQ_HANDLER, on_request)
        ctx.am.register(_VAL_HANDLER, on_values)

        # Geometry generation (every processor builds the full geometry,
        # as the matrix-free formulation requires).
        yield from ctx.compute(ctx.costs.int_ops(12 * n))
        yield from ctx.write(positions, 0, values=problem.positions.reshape(-1))
        yield from ctx.write(rhs, 0, values=problem.rhs)
        # Every processor participates in initialization (unlike MSE-SM,
        # where processor 0 works alone for part of it).
        yield from ctx.compute(
            ctx.costs.int_ops(
                _SETUP_OPS_PER_PAIR * config.bodies * config.bodies // max(nprocs, 1)
            )
        )
        yield from ctx.barrier()

    with ctx.stats.phase("main"):
        solution_np = solution.np
        for iteration in range(config.iterations):
            # Scheduled refreshes of non-owned bodies.
            requested = 0
            for body in range(config.bodies):
                if body_lo <= body < body_hi:
                    continue
                if iteration % refresh_period(problem, me, body, nprocs) != 0:
                    continue
                owner = owner_of_body(body, config.bodies, nprocs)
                yield from ctx.am.send(owner, _REQ_HANDLER, body)
                requested += 1
            target = state.replies + requested
            yield from ctx.poll_wait(lambda: state.replies >= target)

            # Jacobi updates of owned rows; the kernel row is recomputed,
            # so the only memory traffic is positions + solution scans.
            # Each row is one declared bulk run; the Jacobi update is
            # untimed Python against the views.
            row_script = (
                ctx.batch()
                .read(positions)
                .read(solution)
                .compute_flops(problem.kernel_flops())
            )
            new_values = np.empty(row_hi - row_lo)
            for i in range(row_lo, row_hi):
                yield from ctx.run_batch(row_script)
                new_values[i - row_lo] = problem.jacobi_row_update(
                    solution_np, i, config.omega
                )
                # Service incoming requests between rows (the paper's
                # asynchronous request servicing).
                yield from ctx.drain_polls()
            yield from ctx.write(solution, row_lo, values=new_values)
        yield from ctx.barrier()
        yield from ctx.drain_polls()
    return np.array(solution.np)


def run_mse_mp(
    machine: MpMachine, config: MseConfig
) -> Tuple[MpRunResult, np.ndarray]:
    """Run MSE-MP; returns (result, solution from processor 0)."""
    if config.bodies < machine.nprocs:
        raise ValueError("need at least one body per processor")
    problem = generate_problem(config)
    result = machine.run(mse_mp_program, config, problem)
    return result, result.outputs[0]
