"""MSE: microstructure electrostatics (paper Section 5.1)."""

from repro.apps.mse.common import MseConfig, MseProblem, generate_problem
from repro.apps.mse.mp import run_mse_mp
from repro.apps.mse.sm import run_mse_sm

__all__ = [
    "MseConfig",
    "MseProblem",
    "generate_problem",
    "run_mse_mp",
    "run_mse_sm",
]
