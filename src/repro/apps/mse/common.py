"""Machine-independent core of MSE (microstructure electrostatics).

The paper's program computes boundary-integral solutions of the Laplace
equation for an N-body system, each body discretized into M boundary
elements. The (NM)^2 system matrix cannot be stored and is *recomputed
as needed*; the system is solved by parallel asynchronous Jacobi
iterations. Updates to the solution vector follow a precomputed
*schedule* exploiting physical structure: distant bodies interact
weakly, so their solutions are exchanged less frequently, drastically
reducing communication at a small cost in iterations.

The original is production chemical-engineering code (Traenkle); this
is a synthetic boundary-element kernel with the same structure — dense
recomputed interactions, scheduled exchange, computation-bound profile
(see DESIGN.md section 2.8 on the substitution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class MseConfig:
    """Workload parameters for one MSE run."""

    bodies: int = 256  # the paper's run
    elements_per_body: int = 20
    iterations: int = 20
    near_distance: float = 0.35  # bodies closer than this exchange every step
    max_period: int = 4  # farthest bodies exchange every max_period steps
    omega: float = 0.9  # Jacobi damping
    seed: int = 1994

    @classmethod
    def paper(cls) -> "MseConfig":
        return cls()

    @classmethod
    def small(
        cls,
        bodies: int = 12,
        elements_per_body: int = 4,
        iterations: int = 6,
        seed: int = 1994,
    ) -> "MseConfig":
        return cls(
            bodies=bodies,
            elements_per_body=elements_per_body,
            iterations=iterations,
            seed=seed,
        )

    @property
    def total_elements(self) -> int:
        return self.bodies * self.elements_per_body


@dataclass
class MseProblem:
    """Geometry, right-hand side, and the exchange schedule."""

    config: MseConfig
    centers: np.ndarray  # (bodies, 3)
    positions: np.ndarray  # (bodies * elements, 3)
    rhs: np.ndarray  # (bodies * elements,)
    periods: np.ndarray  # (bodies, bodies) exchange periods

    def kernel_row(self, i: int) -> np.ndarray:
        """Row i of the interaction matrix, recomputed on the fly."""
        diffs = self.positions - self.positions[i]
        distances = np.sqrt((diffs * diffs).sum(axis=1))
        row = 1.0 / (4.0 * np.pi * (distances + 0.05))
        # Strong self-interaction keeps the Jacobi iteration convergent.
        row[i] = 2.0 * row.sum()
        return row

    def jacobi_row_update(self, solution: np.ndarray, i: int, omega: float) -> float:
        row = self.kernel_row(i)
        diagonal = row[i]
        off = float(np.dot(row, solution)) - diagonal * solution[i]
        return (1.0 - omega) * solution[i] + omega * (self.rhs[i] - off) / diagonal

    def residual(self, solution: np.ndarray) -> float:
        """Relative residual of K s = rhs."""
        n = self.config.total_elements
        result = np.empty(n)
        for i in range(n):
            result[i] = float(np.dot(self.kernel_row(i), solution))
        return float(
            np.linalg.norm(result - self.rhs) / np.linalg.norm(self.rhs)
        )

    def kernel_flops(self) -> int:
        """FLOPs to recompute one kernel row (distance + kernel eval)."""
        return 10 * self.config.total_elements


def generate_problem(config: MseConfig) -> MseProblem:
    """Deterministic geometry: body centers in the unit cube, elements on
    small spheres around them; schedule periods from center distances."""
    rng = RngStreams(config.seed).stream("mse.geometry")
    centers = rng.uniform(0.0, 1.0, size=(config.bodies, 3))
    offsets = rng.normal(0.0, 0.03, size=(config.total_elements, 3))
    positions = np.repeat(centers, config.elements_per_body, axis=0) + offsets
    rhs = rng.uniform(0.5, 1.5, size=config.total_elements)
    diffs = centers[:, None, :] - centers[None, :, :]
    distances = np.sqrt((diffs * diffs).sum(axis=2))
    ratio = np.maximum(distances / config.near_distance, 1.0)
    periods = np.minimum(np.ceil(ratio**2), config.max_period).astype(np.int64)
    np.fill_diagonal(periods, 1)
    return MseProblem(
        config=config,
        centers=centers,
        positions=positions,
        rhs=rhs,
        periods=periods,
    )


def body_block(pid: int, bodies: int, nprocs: int) -> Tuple[int, int]:
    """Blockwise distribution of bodies to processors."""
    lo = pid * bodies // nprocs
    hi = (pid + 1) * bodies // nprocs
    return lo, hi


def owner_of_body(body: int, bodies: int, nprocs: int) -> int:
    for pid in range(nprocs):
        lo, hi = body_block(pid, bodies, nprocs)
        if lo <= body < hi:
            return pid
    raise ValueError(f"body {body} out of range")


def refresh_period(problem: MseProblem, pid: int, body: int, nprocs: int) -> int:
    """How often processor ``pid`` refreshes ``body``'s values: the
    tightest period over the bodies ``pid`` owns."""
    lo, hi = body_block(pid, problem.config.bodies, nprocs)
    if lo >= hi:
        return int(problem.config.max_period)
    return int(problem.periods[lo:hi, body].min())
