"""MSE-SM: shared-memory microstructure electrostatics.

The solution vector lives in the shared address space; each processor
still computes against a private copy, refreshed from the shared vector
according to the schedule and republished each iteration. Because the
schedule is sparse, shared misses are a small fraction of all misses —
and a processor's published values usually stay exclusive in its cache,
so write faults are rare (paper Tables 5/7).

Initialization includes a sequential portion on processor 0 while the
other processors sit idle; the single barrier between initialization
and the main loop turns that imbalance into barrier/start-up time, as
the paper reports.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.apps.mse.common import (
    MseConfig,
    MseProblem,
    body_block,
    generate_problem,
    refresh_period,
)
from repro.sm.machine import SmMachine, SmRunResult

#: Extra start-up work processor 0 performs alone (sequential setup).
_SETUP_OPS_PER_PAIR = 150


def mse_sm_program(ctx, config: MseConfig, problem: MseProblem, shared: Dict):
    """Per-processor MSE-SM program. Returns the local solution vector."""
    n = config.total_elements
    m = config.elements_per_body
    me, nprocs = ctx.pid, ctx.nprocs
    body_lo, body_hi = body_block(me, config.bodies, nprocs)
    row_lo, row_hi = body_lo * m, body_hi * m

    with ctx.stats.phase("init"):
        if me == 0:
            shared["solution"] = ctx.gmalloc("solution", n)
            # The sequential portion of initialization: only processor 0
            # works while the others wait (the paper's 80M-cycle skew).
            yield from ctx.compute(
                ctx.costs.int_ops(
                    _SETUP_OPS_PER_PAIR * config.bodies * config.bodies
                )
            )
            ctx.create()
        else:
            yield from ctx.wait_create()
        solution_global = shared["solution"]
        positions = ctx.alloc_private("positions", 3 * n)
        solution = ctx.alloc_private("solution_local", n, fill=0.0)
        rhs = ctx.alloc_private("rhs", n)
        yield from ctx.compute(ctx.costs.int_ops(12 * n))
        yield from ctx.write(positions, 0, values=problem.positions.reshape(-1))
        yield from ctx.write(rhs, 0, values=problem.rhs)
        yield from ctx.write(solution_global, row_lo, values=np.zeros(row_hi - row_lo))
        # The single barrier between initialization and the main loop.
        yield from ctx.barrier()

    with ctx.stats.phase("main"):
        solution_np = solution.np
        # The row kernel is the same declared bulk run every time: scan
        # positions and the local solution, then the kernel flops. The
        # Jacobi update itself is untimed Python against the views.
        row_script = (
            ctx.batch()
            .read(positions)
            .read(solution)
            .compute_flops(problem.kernel_flops())
        )
        for iteration in range(config.iterations):
            # Scheduled refreshes from the shared solution vector.
            for body in range(config.bodies):
                if body_lo <= body < body_hi:
                    continue
                if iteration % refresh_period(problem, me, body, nprocs) != 0:
                    continue
                yield from ctx.run_batch(
                    ctx.batch()
                    .read(solution_global, body * m, (body + 1) * m)
                    .write(
                        solution,
                        body * m,
                        values=lambda got: np.array(got[0]),
                    )
                )

            new_values = np.empty(row_hi - row_lo)
            for i in range(row_lo, row_hi):
                yield from ctx.run_batch(row_script)
                new_values[i - row_lo] = problem.jacobi_row_update(
                    solution_np, i, config.omega
                )
            yield from ctx.write(solution, row_lo, values=new_values)
            # Publish to the shared vector (usually cache hits: the
            # blocks stay exclusive unless a reader pulled them).
            yield from ctx.write(solution_global, row_lo, values=new_values)
        yield from ctx.barrier()
    return np.array(solution.np)


def run_mse_sm(
    machine: SmMachine, config: MseConfig
) -> Tuple[SmRunResult, np.ndarray]:
    """Run MSE-SM; returns (result, solution from processor 0)."""
    if config.bodies < machine.nprocs:
        raise ValueError("need at least one body per processor")
    problem = generate_problem(config)
    shared: Dict = {}
    result = machine.run(mse_sm_program, config, problem, shared)
    return result, result.outputs[0]
