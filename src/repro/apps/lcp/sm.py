"""LCP-SM and ALCP-SM: shared-memory multi-sweep SOR (paper Section 5.4).

LCP-SM (synchronous): sweeps run against a *private* copy of the
solution vector; at the end of each step a processor copies its portion
into the global shared vector, waits at a barrier, refreshes its private
copy from the other portions (the remote misses the paper attributes to
the ill-suited invalidation protocol), and joins an MCS-style reduction
for the convergence test.

ALCP-SM (asynchronous): sweeps read and write the global vector
directly, so updates become visible as soon as they are computed
(De Leone et al.'s recommendation). Each write to a line other
processors cached triggers the invalidate/re-miss cycle, multiplying
traffic — paper Tables 21/23.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.apps.lcp.common import (
    SWEEP_INT_OPS_PER_NNZ,
    LcpConfig,
    LcpProblem,
    generate_problem,
    row_block,
)
from repro.sm.machine import SmMachine, SmRunResult

_BUILD_OPS_PER_NNZ = 20


def _row_plans(ctx, problem, regions, z_region, lo, hi, omega):
    """Prebuild each row's sweep and residual bulk runs.

    The CSR structure is static, so the per-row op sequence — read
    columns, read data, gather z at the columns, read z_i, (sweep only)
    write the clamped update, then the per-row compute — never changes.
    The SOR update itself runs inside the write's values-callable: the
    gathered z values it needs are the batch results read just before.
    """
    indptr = problem.indptr
    base = int(indptr[lo])
    sweep_scripts = []
    resid_rows = []
    for i in range(lo, hi):
        start, end = int(indptr[i]), int(indptr[i + 1])
        local = start - base
        nnz = end - start
        cols = problem.indices[start:end]
        q_i, d_i = float(problem.q[i]), float(problem.diag[i])

        def sor_update(got, _q=q_i, _d=d_i):
            z_i = float(got[3][0])
            residual_i = _q + float(np.dot(got[1], got[2])) + _d * z_i
            return [max(0.0, z_i - omega * residual_i / _d)]

        sweep_scripts.append(
            ctx.batch()
            .read(regions["indices"], local, local + nnz)
            .read(regions["data"], local, local + nnz)
            .read_gather(z_region, cols)
            .read(z_region, i, i + 1)
            .write(z_region, i, values=sor_update)
            .compute_flops(2 * nnz + 4)
            .compute(
                ctx.costs.divs(1)
                + ctx.costs.int_ops(4 + SWEEP_INT_OPS_PER_NNZ * nnz)
            )
        )
        resid_rows.append(
            (
                i,
                ctx.batch()
                .read(regions["indices"], local, local + nnz)
                .read(regions["data"], local, local + nnz)
                .read_gather(z_region, cols)
                .read(z_region, i, i + 1)
                .compute_flops(2 * nnz + 4)
                .compute(ctx.costs.int_ops(SWEEP_INT_OPS_PER_NNZ * nnz)),
            )
        )
    return sweep_scripts, resid_rows


def _sweep(ctx, sweep_scripts):
    """One Gauss-Seidel sweep over the local rows (prebuilt bulk runs)."""
    for script in sweep_scripts:
        yield from ctx.run_batch(script)


def _local_residual(ctx, problem, resid_rows):
    """Complementarity residual over the local rows."""
    worst = 0.0
    for i, script in resid_rows:
        got = yield from ctx.run_batch(script)
        z_i = float(got[3][0])
        w_i = problem.q[i] + float(np.dot(got[1], got[2])) + problem.diag[i] * z_i
        worst = max(worst, abs(min(z_i, w_i)))
    return worst


def lcp_sm_program(
    ctx, config: LcpConfig, problem: LcpProblem, asynchronous: bool, shared: Dict
):
    """Per-processor LCP-SM/ALCP-SM program. Returns (z, steps)."""
    n = config.n
    me, nprocs = ctx.pid, ctx.nprocs
    lo, hi = row_block(me, n, nprocs)
    my_nnz = int(problem.indptr[hi] - problem.indptr[lo])
    reduction = ctx.machine.make_reduction("lcp.conv", context="sync")

    with ctx.stats.phase("init"):
        if me == 0:
            shared["z"] = ctx.gmalloc("z_global", n)
            ctx.create()
        else:
            yield from ctx.wait_create()
        z_global = shared["z"]
        regions = {
            "indices": ctx.alloc_private("M.indices", max(my_nnz, 1), dtype=np.int64),
            "data": ctx.alloc_private("M.data", max(my_nnz, 1)),
        }
        row_slice = slice(int(problem.indptr[lo]), int(problem.indptr[hi]))
        if my_nnz:
            yield from ctx.write(
                regions["indices"], 0, values=problem.indices[row_slice]
            )
            yield from ctx.write(regions["data"], 0, values=problem.data[row_slice])
        yield from ctx.compute(ctx.costs.int_ops(_BUILD_OPS_PER_NNZ * my_nnz))
        z_local = None
        if not asynchronous:
            z_local = ctx.alloc_private("z_local", n)
        yield from ctx.barrier()

    steps = 0
    with ctx.stats.phase("main"):
        sweep_target = z_global if asynchronous else z_local
        sweep_scripts, resid_rows = _row_plans(
            ctx, problem, regions, sweep_target, lo, hi, config.omega
        )
        while steps < config.max_steps:
            for _sweep_index in range(config.sweeps_per_step):
                yield from _sweep(ctx, sweep_scripts)
            if not asynchronous:
                # Publish my portion, then refresh the rest of my copy.
                mine = yield from ctx.read(z_local, lo, hi)
                yield from ctx.write(z_global, lo, values=np.array(mine))
                yield from ctx.barrier()
                fresh = yield from ctx.read(z_global, 0, n)
                fresh = np.array(fresh)
                if lo:
                    yield from ctx.write(z_local, 0, values=fresh[:lo])
                if hi < n:
                    yield from ctx.write(z_local, hi, values=fresh[hi:])
                yield from ctx.compute(ctx.costs.copy(8 * (n - (hi - lo))))
            steps += 1
            worst = yield from _local_residual(ctx, problem, resid_rows)
            total, _aux = yield from reduction.allreduce(ctx, worst, max)
            if total < config.tolerance:
                break
            if asynchronous:
                # The paper's ALCP-SM synchronizes every five iterations.
                yield from ctx.barrier()
    yield from ctx.barrier()
    if asynchronous:
        z_final = yield from ctx.read(z_global, 0, n)
    else:
        z_final = yield from ctx.read(z_local, 0, n)
    return np.array(z_final), steps


def run_lcp_sm(
    machine: SmMachine, config: LcpConfig, asynchronous: bool = False
) -> Tuple[SmRunResult, np.ndarray, int]:
    """Run LCP-SM (or ALCP-SM); returns (result, z, steps)."""
    problem = generate_problem(config)
    shared: Dict = {}
    result = machine.run(lcp_sm_program, config, problem, asynchronous, shared)
    z, steps = result.outputs[0]
    return result, z, steps
