"""LCP: linear complementarity by multi-sweep SOR (paper Section 5.4)."""

from repro.apps.lcp.common import LcpConfig, LcpProblem, generate_problem
from repro.apps.lcp.mp import run_lcp_mp
from repro.apps.lcp.sm import run_lcp_sm

__all__ = [
    "LcpConfig",
    "LcpProblem",
    "generate_problem",
    "run_lcp_mp",
    "run_lcp_sm",
]
