"""LCP-MP and ALCP-MP: message-passing multi-sweep SOR (paper Section 5.4).

LCP-MP (synchronous): each processor sweeps its rows against a private
copy of the solution vector; at the end of each step the copies are
reconciled with an all-to-all exchange in log2(P) point-to-point stages
across CMMD channels (recursive doubling), and a software reduction
tests convergence.

ALCP-MP (asynchronous): bulk updates are pushed to *all* other
processors after every sweep (a star communication); receivers fold
them in whenever they poll. Fewer steps to converge, far more
communication — the tradeoff of paper Tables 20/22.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.apps.lcp.common import (
    SWEEP_INT_OPS_PER_NNZ,
    LcpConfig,
    LcpProblem,
    generate_problem,
    row_block,
)
from repro.mp.machine import MpMachine, MpRunResult

#: Initialization cost per CSR entry (allocation + fill).
_BUILD_OPS_PER_NNZ = 20


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def _row_plans(ctx, problem, regions, z_region, lo, hi, omega):
    """Prebuild each row's sweep and residual bulk runs.

    The CSR structure is static, so the per-row op sequence — read
    columns, read data, gather z at the columns, read z_i, (sweep only)
    write the clamped update, then the per-row compute — never changes.
    The SOR update itself runs inside the write's values-callable: the
    gathered z values it needs are the batch results read just before.
    """
    indptr = problem.indptr
    base = int(indptr[lo])
    sweep_scripts = []
    resid_rows = []
    for i in range(lo, hi):
        start, end = int(indptr[i]), int(indptr[i + 1])
        local = start - base
        nnz = end - start
        cols = problem.indices[start:end]
        q_i, d_i = float(problem.q[i]), float(problem.diag[i])

        def sor_update(got, _q=q_i, _d=d_i):
            z_i = float(got[3][0])
            residual_i = _q + float(np.dot(got[1], got[2])) + _d * z_i
            return [max(0.0, z_i - omega * residual_i / _d)]

        sweep_scripts.append(
            ctx.batch()
            .read(regions["indices"], local, local + nnz)
            .read(regions["data"], local, local + nnz)
            .read_gather(z_region, cols)
            .read(z_region, i, i + 1)
            .write(z_region, i, values=sor_update)
            .compute_flops(2 * nnz + 4)
            .compute(
                ctx.costs.divs(1)
                + ctx.costs.int_ops(4 + SWEEP_INT_OPS_PER_NNZ * nnz)
            )
        )
        resid_rows.append(
            (
                i,
                ctx.batch()
                .read(regions["indices"], local, local + nnz)
                .read(regions["data"], local, local + nnz)
                .read_gather(z_region, cols)
                .read(z_region, i, i + 1)
                .compute_flops(2 * nnz + 4)
                .compute(ctx.costs.int_ops(SWEEP_INT_OPS_PER_NNZ * nnz)),
            )
        )
    return sweep_scripts, resid_rows


def _sweep(ctx, sweep_scripts):
    """One Gauss-Seidel sweep over the local rows (prebuilt bulk runs)."""
    for script in sweep_scripts:
        yield from ctx.run_batch(script)


def _local_residual(ctx, problem, resid_rows):
    """Complementarity residual over the local rows (one full pass)."""
    worst = 0.0
    for i, script in resid_rows:
        got = yield from ctx.run_batch(script)
        z_i = float(got[3][0])
        w_i = problem.q[i] + float(np.dot(got[1], got[2])) + problem.diag[i] * z_i
        worst = max(worst, abs(min(z_i, w_i)))
    return worst


def lcp_mp_program(ctx, config: LcpConfig, problem: LcpProblem, asynchronous: bool):
    """Per-processor LCP-MP/ALCP-MP program. Returns (z, steps)."""
    n = config.n
    me, nprocs = ctx.pid, ctx.nprocs
    lo, hi = row_block(me, n, nprocs)
    myrows = hi - lo
    my_nnz = int(problem.indptr[hi] - problem.indptr[lo])
    stages = max(nprocs - 1, 1).bit_length() if nprocs > 1 else 0

    with ctx.stats.phase("init"):
        z_region = ctx.alloc("z", n)
        regions = {
            "indices": ctx.alloc("M.indices", max(my_nnz, 1), dtype=np.int64),
            "data": ctx.alloc("M.data", max(my_nnz, 1)),
        }
        row_slice = slice(int(problem.indptr[lo]), int(problem.indptr[hi]))
        if my_nnz:
            yield from ctx.write(
                regions["indices"], 0, values=problem.indices[row_slice]
            )
            yield from ctx.write(regions["data"], 0, values=problem.data[row_slice])
        yield from ctx.compute(ctx.costs.int_ops(_BUILD_OPS_PER_NNZ * my_nnz))
        # Channels: the full z vector is every channel's window, so a
        # sender can deposit any contiguous range at its home offset.
        partners = (
            [p for p in range(nprocs) if p != me]
            if asynchronous
            else [me ^ (1 << k) for k in range(stages)]
        )
        recv_channels = {}
        send_channels = {}
        for partner in sorted(partners):
            recv_channels[partner] = yield from ctx.cmmd.offer_channel(
                partner, z_region, key="z"
            )
        for partner in sorted(partners):
            send_channels[partner] = yield from ctx.cmmd.accept_channel(
                partner, key="z"
            )
        yield from ctx.barrier()

    steps = 0
    with ctx.stats.phase("main"):
        sweep_scripts, resid_rows = _row_plans(
            ctx, problem, regions, z_region, lo, hi, config.omega
        )
        while steps < config.max_steps:
            for _sweep_index in range(config.sweeps_per_step):
                yield from _sweep(ctx, sweep_scripts)
                if asynchronous and nprocs > 1:
                    # Star communication: push my portion everywhere.
                    mine = yield from ctx.read(z_region, lo, hi)
                    mine = np.array(mine)
                    for partner in sorted(send_channels):
                        yield from ctx.cmmd.write_channel(
                            send_channels[partner], mine, el_offset=lo
                        )
                    yield from ctx.drain_polls()
            if not asynchronous and nprocs > 1:
                # Recursive-doubling all-gather of the solution vector.
                for k in range(stages):
                    partner = me ^ (1 << k)
                    group = (me >> k) << k
                    glo, _ = row_block(group, n, nprocs)
                    _, ghi = row_block(group + (1 << k) - 1, n, nprocs)
                    outgoing = yield from ctx.read(z_region, glo, ghi)
                    yield from ctx.cmmd.write_channel(
                        send_channels[partner], np.array(outgoing), el_offset=glo
                    )
                    pgroup = (partner >> k) << k
                    plo, _ = row_block(pgroup, n, nprocs)
                    _, phi = row_block(pgroup + (1 << k) - 1, n, nprocs)
                    yield from ctx.cmmd.wait_channel(
                        recv_channels[partner], (phi - plo) * 8
                    )
            steps += 1
            worst = yield from _local_residual(ctx, problem, resid_rows)
            total = yield from ctx.coll.allreduce(worst, max)
            if total < config.tolerance:
                break
    yield from ctx.barrier()
    return np.array(z_region.np), steps


def run_lcp_mp(
    machine: MpMachine, config: LcpConfig, asynchronous: bool = False
) -> Tuple[MpRunResult, np.ndarray, int]:
    """Run LCP-MP (or ALCP-MP); returns (result, z, steps)."""
    if not asynchronous and not _is_power_of_two(machine.nprocs):
        raise ValueError("synchronous LCP-MP uses recursive doubling: "
                         "the processor count must be a power of two")
    problem = generate_problem(config)
    result = machine.run(lcp_mp_program, config, problem, asynchronous)
    z, steps = result.outputs[0]
    return result, z, steps
