"""LCP-MP and ALCP-MP: message-passing multi-sweep SOR (paper Section 5.4).

LCP-MP (synchronous): each processor sweeps its rows against a private
copy of the solution vector; at the end of each step the copies are
reconciled with an all-to-all exchange in log2(P) point-to-point stages
across CMMD channels (recursive doubling), and a software reduction
tests convergence.

ALCP-MP (asynchronous): bulk updates are pushed to *all* other
processors after every sweep (a star communication); receivers fold
them in whenever they poll. Fewer steps to converge, far more
communication — the tradeoff of paper Tables 20/22.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.apps.lcp.common import (
    SWEEP_INT_OPS_PER_NNZ,
    LcpConfig,
    LcpProblem,
    generate_problem,
    row_block,
)
from repro.mp.machine import MpMachine, MpRunResult

#: Initialization cost per CSR entry (allocation + fill).
_BUILD_OPS_PER_NNZ = 20


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def _sweep(ctx, problem, regions, z_region, lo, hi, omega):
    """One Gauss-Seidel sweep over the local rows against ``z_region``."""
    indptr = problem.indptr
    for i in range(lo, hi):
        start, end = int(indptr[i]), int(indptr[i + 1])
        local = start - int(indptr[lo])
        cols = yield from ctx.read(
            regions["indices"], local, local + (end - start)
        )
        vals = yield from ctx.read(regions["data"], local, local + (end - start))
        z_cols = yield from ctx.read_gather(z_region, cols)
        z_i = yield from ctx.read(z_region, i, i + 1)
        residual_i = (
            problem.q[i] + float(np.dot(vals, z_cols)) + problem.diag[i] * float(z_i[0])
        )
        new_value = max(0.0, float(z_i[0]) - omega * residual_i / problem.diag[i])
        yield from ctx.write(z_region, i, values=[new_value])
        yield from ctx.compute_flops(2 * (end - start) + 4)
        yield from ctx.compute(
            ctx.costs.divs(1)
            + ctx.costs.int_ops(4 + SWEEP_INT_OPS_PER_NNZ * (end - start))
        )


def _local_residual(ctx, problem, regions, z_region, lo, hi):
    """Complementarity residual over the local rows (one full pass)."""
    indptr = problem.indptr
    worst = 0.0
    for i in range(lo, hi):
        start, end = int(indptr[i]), int(indptr[i + 1])
        local = start - int(indptr[lo])
        cols = yield from ctx.read(regions["indices"], local, local + (end - start))
        vals = yield from ctx.read(regions["data"], local, local + (end - start))
        z_cols = yield from ctx.read_gather(z_region, cols)
        z_i = yield from ctx.read(z_region, i, i + 1)
        w_i = problem.q[i] + float(np.dot(vals, z_cols)) + problem.diag[i] * float(z_i[0])
        worst = max(worst, abs(min(float(z_i[0]), w_i)))
        yield from ctx.compute_flops(2 * (end - start) + 4)
        yield from ctx.compute(
            ctx.costs.int_ops(SWEEP_INT_OPS_PER_NNZ * (end - start))
        )
    return worst


def lcp_mp_program(ctx, config: LcpConfig, problem: LcpProblem, asynchronous: bool):
    """Per-processor LCP-MP/ALCP-MP program. Returns (z, steps)."""
    n = config.n
    me, nprocs = ctx.pid, ctx.nprocs
    lo, hi = row_block(me, n, nprocs)
    myrows = hi - lo
    my_nnz = int(problem.indptr[hi] - problem.indptr[lo])
    stages = max(nprocs - 1, 1).bit_length() if nprocs > 1 else 0

    with ctx.stats.phase("init"):
        z_region = ctx.alloc("z", n)
        regions = {
            "indices": ctx.alloc("M.indices", max(my_nnz, 1), dtype=np.int64),
            "data": ctx.alloc("M.data", max(my_nnz, 1)),
        }
        row_slice = slice(int(problem.indptr[lo]), int(problem.indptr[hi]))
        if my_nnz:
            yield from ctx.write(
                regions["indices"], 0, values=problem.indices[row_slice]
            )
            yield from ctx.write(regions["data"], 0, values=problem.data[row_slice])
        yield from ctx.compute(ctx.costs.int_ops(_BUILD_OPS_PER_NNZ * my_nnz))
        # Channels: the full z vector is every channel's window, so a
        # sender can deposit any contiguous range at its home offset.
        partners = (
            [p for p in range(nprocs) if p != me]
            if asynchronous
            else [me ^ (1 << k) for k in range(stages)]
        )
        recv_channels = {}
        send_channels = {}
        for partner in sorted(partners):
            recv_channels[partner] = yield from ctx.cmmd.offer_channel(
                partner, z_region, key="z"
            )
        for partner in sorted(partners):
            send_channels[partner] = yield from ctx.cmmd.accept_channel(
                partner, key="z"
            )
        yield from ctx.barrier()

    steps = 0
    with ctx.stats.phase("main"):
        while steps < config.max_steps:
            for _sweep_index in range(config.sweeps_per_step):
                yield from _sweep(
                    ctx, problem, regions, z_region, lo, hi, config.omega
                )
                if asynchronous and nprocs > 1:
                    # Star communication: push my portion everywhere.
                    mine = yield from ctx.read(z_region, lo, hi)
                    mine = np.array(mine)
                    for partner in sorted(send_channels):
                        yield from ctx.cmmd.write_channel(
                            send_channels[partner], mine, el_offset=lo
                        )
                    yield from ctx.drain_polls()
            if not asynchronous and nprocs > 1:
                # Recursive-doubling all-gather of the solution vector.
                for k in range(stages):
                    partner = me ^ (1 << k)
                    group = (me >> k) << k
                    glo, _ = row_block(group, n, nprocs)
                    _, ghi = row_block(group + (1 << k) - 1, n, nprocs)
                    outgoing = yield from ctx.read(z_region, glo, ghi)
                    yield from ctx.cmmd.write_channel(
                        send_channels[partner], np.array(outgoing), el_offset=glo
                    )
                    pgroup = (partner >> k) << k
                    plo, _ = row_block(pgroup, n, nprocs)
                    _, phi = row_block(pgroup + (1 << k) - 1, n, nprocs)
                    yield from ctx.cmmd.wait_channel(
                        recv_channels[partner], (phi - plo) * 8
                    )
            steps += 1
            worst = yield from _local_residual(
                ctx, problem, regions, z_region, lo, hi
            )
            total = yield from ctx.coll.allreduce(worst, max)
            if total < config.tolerance:
                break
    yield from ctx.barrier()
    return np.array(z_region.np), steps


def run_lcp_mp(
    machine: MpMachine, config: LcpConfig, asynchronous: bool = False
) -> Tuple[MpRunResult, np.ndarray, int]:
    """Run LCP-MP (or ALCP-MP); returns (result, z, steps)."""
    if not asynchronous and not _is_power_of_two(machine.nprocs):
        raise ValueError("synchronous LCP-MP uses recursive doubling: "
                         "the processor count must be a power of two")
    problem = generate_problem(config)
    result = machine.run(lcp_mp_program, config, problem, asynchronous)
    z, steps = result.outputs[0]
    return result, z, steps
