"""Machine-independent core of the LCP application.

The linear complementarity problem: find z with ``M z + q >= 0``,
``z >= 0`` and ``z' (M z + q) = 0``. M is symmetric sparse (the paper's
run has 4096 variables) with uniform non-zeros per row, so the static
blockwise row distribution balances load (the paper's footnote).

The solver is multi-sweep synchronous projected SOR (De Leone et al.):
each step runs a fixed number (5) of Gauss-Seidel sweeps over the local
rows against a local copy of the solution vector, then updates the
global solution vector and tests convergence. The asynchronous variants
(ALCP) publish updates after every sweep, converging in fewer steps but
communicating much more — the computation/communication tradeoff the
paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class LcpConfig:
    """Workload parameters for one LCP run."""

    n: int = 4096  # variables (the paper's run)
    band: int = 4  # off-diagonal non-zeros per side (uniform rows)
    stride_couples: int = 1  # circulant long-range couplings per side
    sweeps_per_step: int = 5
    omega: float = 1.0  # SOR relaxation factor
    tolerance: float = 1e-6
    max_steps: int = 200
    seed: int = 1994

    @classmethod
    def paper(cls) -> "LcpConfig":
        return cls()

    @classmethod
    def small(cls, n: int = 64, seed: int = 1994, **kwargs) -> "LcpConfig":
        return cls(n=n, seed=seed, **kwargs)


@dataclass
class LcpProblem:
    """CSR representation of the symmetric sparse M plus dense q."""

    n: int
    indptr: np.ndarray  # (n + 1,)
    indices: np.ndarray  # column indices
    data: np.ndarray  # values
    diag: np.ndarray  # M[i, i]
    q: np.ndarray

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        start, end = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[start:end], self.data[start:end]

    def mz_plus_q(self, z: np.ndarray) -> np.ndarray:
        result = self.q + self.diag * z
        for i in range(self.n):
            cols, vals = self.row(i)
            result[i] += float(np.dot(vals, z[cols]))
        return result

    def complementarity_residual(self, z: np.ndarray) -> float:
        """||min(z, Mz + q)||_inf — zero exactly at a solution."""
        w = self.mz_plus_q(z)
        return float(np.max(np.abs(np.minimum(z, w))))


def generate_problem(config: LcpConfig) -> LcpProblem:
    """A symmetric, strictly diagonally dominant M (PSOR converges).

    Structure: a band of near-diagonal couplings plus circulant
    long-range couplings at stride ``n // 8`` (reaching neighboring row
    blocks, so processors genuinely exchange values). Every row has the
    same number of non-zeros, matching the paper's footnote that its
    matrices had uniform non-zeros per row.
    """
    rng = RngStreams(config.seed).stream("lcp.problem")
    n, band, stride_couples = config.n, config.band, config.stride_couples
    if band >= n:
        raise ValueError("band must be smaller than n")
    stride = max(n // 8, band + 1)
    offsets = sorted(
        set(range(-band, 0))
        | set(range(1, band + 1))
        | {s * stride for s in range(1, stride_couples + 1)}
        | {-s * stride for s in range(1, stride_couples + 1)}
    )
    # Symmetric values: depend on the unordered pair via a hash of the
    # smaller index and the absolute offset (circulant couplings wrap).
    off_values = {
        k: -np.abs(rng.uniform(0.1, 1.0, size=n)) for k in {abs(o) for o in offsets}
    }
    indptr = [0]
    indices = []
    data = []
    for i in range(n):
        for k in offsets:
            j = (i + k) % n if abs(k) >= stride else i + k
            if abs(k) < stride and not 0 <= j < n:
                continue
            indices.append(j)
            # min(i, j) keys the unordered pair, so M stays symmetric.
            data.append(float(off_values[abs(k)][min(i, j)]))
        indptr.append(len(indices))
    max_row_sum = max(
        sum(abs(data[indptr[i] + j]) for j in range(indptr[i + 1] - indptr[i]))
        for i in range(n)
    )
    diag = np.full(n, max_row_sum + 1.0)  # strict diagonal dominance
    q = rng.uniform(-1.0, 1.0, size=n)
    return LcpProblem(
        n=n,
        indptr=np.array(indptr, dtype=np.int64),
        indices=np.array(indices, dtype=np.int64),
        data=np.array(data, dtype=np.float64),
        diag=diag,
        q=q,
    )


def psor_row_update(
    problem: LcpProblem, z: np.ndarray, i: int, omega: float
) -> float:
    """One projected-SOR update of variable ``i`` against vector ``z``.

    ``z_i <- max(0, z_i - omega * (M z + q)_i / M_ii)`` — the diagonal
    is stored separately from the off-diagonal CSR entries.
    """
    cols, vals = problem.row(i)
    residual_i = problem.q[i] + float(np.dot(vals, z[cols])) + problem.diag[i] * z[i]
    return max(0.0, z[i] - omega * residual_i / problem.diag[i])


#: Non-FP work per CSR entry in a sweep (index loads, pointer chasing,
#: projection branch on a single-issue SPARC). Calibrated so that, like
#: the paper's LCP, computation dominates LCP-MP at roughly 73%.
SWEEP_INT_OPS_PER_NNZ = 18


def row_block(pid: int, n: int, nprocs: int) -> Tuple[int, int]:
    """Blockwise distribution of rows (and of z entries)."""
    lo = pid * n // nprocs
    hi = (pid + 1) * n // nprocs
    return lo, hi
