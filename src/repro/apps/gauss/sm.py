"""Gauss-SM: the shared-memory Gaussian elimination.

Communication (paper Section 5.2): pivot selection by an MCS-style
combining reduction; broadcasts by letting every processor read shared
data after a barrier ("they occur at hardware, not software speed");
the read requests then contend at the directories — the contention the
paper measures. The coefficient matrix lives in shared memory
(round-robin placement), but each processor's rows stay in its cache, so
misses concentrate on pivot rows and reduction flags.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.apps.gauss.common import (
    GaussConfig,
    generate_system,
    owner_of_row,
    pivot_search_flops,
    row_block,
    update_flops,
    update_int_ops,
)
from repro.sm.machine import SmMachine, SmRunResult


def gauss_sm_program(ctx, config: GaussConfig, a_full, b_full, shared: Dict):
    """Per-processor Gauss-SM program."""
    n = config.n
    me, nprocs = ctx.pid, ctx.nprocs
    lo, hi = row_block(me, n, nprocs)
    myrows = hi - lo
    reduction = ctx.machine.make_reduction("gauss.pivot", context="reduction")

    with ctx.stats.phase("init"):
        if me == 0:
            shared["A"] = ctx.gmalloc("A", (n, n))
            shared["b"] = ctx.gmalloc("b", n)
            shared["pivotbuf"] = ctx.gmalloc("pivotbuf", n + 1)
            shared["x"] = ctx.gmalloc("x", n)
            ctx.create()
        else:
            yield from ctx.wait_create()
        a_region, b_region = shared["A"], shared["b"]
        pivotbuf, x_region = shared["pivotbuf"], shared["x"]
        if myrows:
            yield from ctx.compute(ctx.costs.int_ops(2 * myrows * n))
            yield from ctx.write(a_region, lo * n, values=a_full[lo:hi].reshape(-1))
            yield from ctx.write(b_region, lo, values=b_full[lo:hi])
        yield from ctx.barrier()

    mask = np.zeros(max(myrows, 1), dtype=bool)
    pivot_row_of_step = np.full(n, -1, dtype=np.int64)
    x = np.zeros(n)

    with ctx.stats.phase("main"):
        # Forward elimination.
        for k in range(n):
            best = (-1.0, -1.0)
            active = [r for r in range(myrows) if not mask[r]]
            if active:
                got = yield from ctx.run_batch(
                    ctx.batch()
                    .read_gather(a_region, [(lo + r) * n + k for r in active])
                    .compute_flops(pivot_search_flops(len(active)))
                )
                column = got[0]
                j = int(np.argmax(np.abs(column)))
                best = (abs(float(column[j])), float(lo + active[j]))
            pivot_val, pivot_row = yield from reduction.allreduce(
                ctx, best[0], max, aux=best[1]
            )
            if pivot_val <= 0.0:
                raise ArithmeticError(f"singular system at column {k}")
            prow = int(pivot_row)
            powner = owner_of_row(prow, n, nprocs)
            pivot_row_of_step[k] = prow

            if me == powner:
                mask[prow - lo] = True
                yield from ctx.run_batch(
                    ctx.batch()
                    .read(a_region, prow * n + k, prow * n + n)
                    .read(b_region, prow, prow + 1)
                    .write(
                        pivotbuf,
                        0,
                        values=lambda got: np.concatenate([got[0], got[1]]),
                    )
                )
            # All processors wait until the write completes, then read:
            # the shared-memory broadcast.
            yield from ctx.barrier()
            pivot = np.array((yield from ctx.read(pivotbuf, 0, n - k + 1)))
            pivot_vals, pivot_b = pivot[:-1], float(pivot[-1])

            active = [r for r in range(myrows) if not mask[r]]
            for r in active:
                grow = lo + r
                # One declared bulk run per row: read the row, write the
                # eliminated row, then read-modify-write b. The factor
                # must be captured when the A-row write is evaluated —
                # the read result is a view the write overwrites.
                cell = []

                def updated_row(got, _cell=cell):
                    row = got[0]
                    factor = float(row[0]) / float(pivot_vals[0])
                    _cell.append(factor)
                    updated = row - factor * pivot_vals
                    updated[0] = 0.0
                    return updated

                def updated_b(got, _cell=cell):
                    return [float(got[1][0]) - _cell[0] * pivot_b]

                yield from ctx.run_batch(
                    ctx.batch()
                    .read(a_region, grow * n + k, grow * n + n)
                    .write(a_region, grow * n + k, values=updated_row)
                    .read(b_region, grow, grow + 1)
                    .write(b_region, grow, values=updated_b)
                )
            if active:
                yield from ctx.run_batch(
                    ctx.batch()
                    .compute_flops(update_flops(len(active), n - k))
                    .compute(ctx.costs.int_ops(update_int_ops(len(active), n - k)))
                    .compute(ctx.costs.loop(len(active)))
                )

        # Backward substitution: shared-cell broadcast per unknown.
        unresolved = set(range(myrows))
        for k in range(n - 1, -1, -1):
            prow = int(pivot_row_of_step[k])
            powner = owner_of_row(prow, n, nprocs)
            if me == powner:
                unresolved.discard(prow - lo)
                diag = yield from ctx.read(a_region, prow * n + k, prow * n + k + 1)
                b_val = yield from ctx.read(b_region, prow, prow + 1)
                x_k = float(b_val[0]) / float(diag[0])
                yield from ctx.compute(ctx.costs.divs(1))
                yield from ctx.write(x_region, k, values=[x_k])
            yield from ctx.barrier()
            x_vals = yield from ctx.read(x_region, k, k + 1)
            x_k = float(x_vals[0])
            x[k] = x_k
            if unresolved:
                coeffs = yield from ctx.read_gather(
                    a_region, [(lo + r) * n + k for r in sorted(unresolved)]
                )
                for j, r in enumerate(sorted(unresolved)):
                    grow = lo + r
                    coeff = float(coeffs[j])
                    yield from ctx.run_batch(
                        ctx.batch()
                        .read(b_region, grow, grow + 1)
                        .write(
                            b_region,
                            grow,
                            values=lambda got, c=coeff: [float(got[0][0]) - c * x_k],
                        )
                    )
                yield from ctx.compute_flops(2 * len(unresolved))
    return x


def run_gauss_sm(
    machine: SmMachine, config: GaussConfig
) -> Tuple[SmRunResult, np.ndarray]:
    """Run Gauss-SM; returns the machine result and the solution vector."""
    if config.n < machine.nprocs:
        raise ValueError("need at least one row per processor")
    a_full, b_full, _x_true = generate_system(config)
    shared: Dict = {}
    result = machine.run(gauss_sm_program, config, a_full, b_full, shared)
    return result, result.outputs[0]
