"""Gauss-MP: the message-passing Gaussian elimination.

Communication (paper Section 5.2): pivot selection by software
reduction, pivot-row distribution by bulk broadcast over CMMD channels
along the collective tree, and one value broadcast per unknown during
backward substitution. Rows live in node-local memory.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.apps.gauss.common import (
    GaussConfig,
    generate_system,
    owner_of_row,
    pivot_search_flops,
    row_block,
    update_flops,
    update_int_ops,
)
from repro.mp.machine import MpMachine, MpRunResult


def gauss_mp_program(ctx, config: GaussConfig, a_full, b_full):
    """Per-processor Gauss-MP program."""
    n = config.n
    me, nprocs = ctx.pid, ctx.nprocs
    lo, hi = row_block(me, n, nprocs)
    myrows = hi - lo

    with ctx.stats.phase("init"):
        a_region = ctx.alloc("A", (max(myrows, 1), n))
        b_region = ctx.alloc("b", max(myrows, 1))
        if myrows:
            # Fill my rows with the (deterministically) random system.
            yield from ctx.compute(ctx.costs.int_ops(2 * myrows * n))
            yield from ctx.write(a_region, 0, values=a_full[lo:hi].reshape(-1))
            yield from ctx.write(b_region, 0, values=b_full[lo:hi])
        ctx.coll.setup_bulk(max_elems=n + 1)
        yield from ctx.barrier()

    mask = np.zeros(max(myrows, 1), dtype=bool)
    pivot_row_of_step = np.full(n, -1, dtype=np.int64)
    x = np.zeros(n)

    with ctx.stats.phase("main"):
        # Forward elimination.
        for k in range(n):
            best = (-1.0, -1)
            active = [r for r in range(myrows) if not mask[r]]
            if active:
                got = yield from ctx.run_batch(
                    ctx.batch()
                    .read_gather(a_region, [r * n + k for r in active])
                    .compute_flops(pivot_search_flops(len(active)))
                )
                column = got[0]
                j = int(np.argmax(np.abs(column)))
                best = (abs(float(column[j])), lo + active[j])
            pivot_val, pivot_row = yield from ctx.coll.allreduce(best, max)
            if pivot_val <= 0.0:
                raise ArithmeticError(f"singular system at column {k}")
            prow = int(pivot_row)
            powner = owner_of_row(prow, n, nprocs)
            pivot_row_of_step[k] = prow

            if me == powner:
                local = prow - lo
                mask[local] = True
                got = yield from ctx.run_batch(
                    ctx.batch()
                    .read(a_region, local * n + k, local * n + n)
                    .read(b_region, local, local + 1)
                )
                payload = np.concatenate([got[0], got[1]])
            else:
                payload = None
            pivot = np.array(
                (yield from ctx.coll.bulk_broadcast(payload, root=powner))
            )
            pivot_vals, pivot_b = pivot[:-1], float(pivot[-1])

            active = [r for r in range(myrows) if not mask[r]]
            for r in active:
                # One declared bulk run per row (see gauss/sm.py for the
                # factor-capture subtlety: the read result is a view the
                # A-row write overwrites).
                cell = []

                def updated_row(got, _cell=cell):
                    row = got[0]
                    factor = float(row[0]) / float(pivot_vals[0])
                    _cell.append(factor)
                    updated = row - factor * pivot_vals
                    updated[0] = 0.0
                    return updated

                def updated_b(got, _cell=cell):
                    return [float(got[1][0]) - _cell[0] * pivot_b]

                yield from ctx.run_batch(
                    ctx.batch()
                    .read(a_region, r * n + k, r * n + n)
                    .write(a_region, r * n + k, values=updated_row)
                    .read(b_region, r, r + 1)
                    .write(b_region, r, values=updated_b)
                )
            if active:
                yield from ctx.run_batch(
                    ctx.batch()
                    .compute_flops(update_flops(len(active), n - k))
                    .compute(ctx.costs.int_ops(update_int_ops(len(active), n - k)))
                    .compute(ctx.costs.loop(len(active)))
                )

        # Backward substitution: one value broadcast per unknown.
        unresolved = set(range(myrows))
        for k in range(n - 1, -1, -1):
            prow = int(pivot_row_of_step[k])
            powner = owner_of_row(prow, n, nprocs)
            x_k = None
            if me == powner:
                local = prow - lo
                unresolved.discard(local)
                diag = yield from ctx.read(a_region, local * n + k, local * n + k + 1)
                b_val = yield from ctx.read(b_region, local, local + 1)
                x_k = float(b_val[0]) / float(diag[0])
                yield from ctx.compute(ctx.costs.divs(1))
            x_k = yield from ctx.coll.broadcast(x_k, root=powner)
            x[k] = x_k
            if unresolved:
                coeffs = yield from ctx.read_gather(
                    a_region, [r * n + k for r in sorted(unresolved)]
                )
                for j, r in enumerate(sorted(unresolved)):
                    coeff = float(coeffs[j])
                    yield from ctx.run_batch(
                        ctx.batch()
                        .read(b_region, r, r + 1)
                        .write(
                            b_region,
                            r,
                            values=lambda got, c=coeff: [float(got[0][0]) - c * x_k],
                        )
                    )
                yield from ctx.compute_flops(2 * len(unresolved))
    return x


def run_gauss_mp(
    machine: MpMachine, config: GaussConfig
) -> Tuple[MpRunResult, np.ndarray]:
    """Run Gauss-MP; returns the machine result and the solution vector."""
    if config.n < machine.nprocs:
        raise ValueError("need at least one row per processor")
    a_full, b_full, _x_true = generate_system(config)
    result = machine.run(gauss_mp_program, config, a_full, b_full)
    return result, result.outputs[0]
