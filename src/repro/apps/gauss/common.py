"""Machine-independent core of the Gauss application.

The program solves ``A x = b`` by Gaussian elimination with partial
pivoting: a forward-elimination phase (pivot selection by reduction,
pivot-row broadcast, row updates) and a backward-substitution phase
(one value broadcast per unknown). Rows are distributed blockwise and
never redistributed; a mask array tracks which global row was chosen as
the pivot of each elimination step (paper Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class GaussConfig:
    """Workload parameters for one Gauss run."""

    n: int = 512  # number of variables (the paper's run)
    seed: int = 1994

    @classmethod
    def paper(cls) -> "GaussConfig":
        return cls(n=512)

    @classmethod
    def small(cls, n: int = 32, seed: int = 1994) -> "GaussConfig":
        """A scaled-down configuration for tests."""
        return cls(n=n, seed=seed)


def generate_system(config: GaussConfig) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build the full system ``(A, b, x_true)``.

    Each processor "fills its rows with random numbers and solves the
    equations using a known vector": entries are uniform random, the
    known solution is deterministic, and ``b = A @ x_true``.
    """
    rng = RngStreams(config.seed).stream("gauss.system")
    n = config.n
    a_matrix = rng.uniform(-1.0, 1.0, size=(n, n))
    # Mild diagonal boost keeps random systems comfortably non-singular.
    a_matrix[np.arange(n), np.arange(n)] += 2.0 * np.sign(
        a_matrix[np.arange(n), np.arange(n)]
    )
    x_true = np.cos(np.arange(n, dtype=np.float64))
    b = a_matrix @ x_true
    return a_matrix, b, x_true


def row_block(pid: int, n: int, nprocs: int) -> Tuple[int, int]:
    """Blockwise row distribution: processor ``pid`` owns [lo, hi)."""
    lo = pid * n // nprocs
    hi = (pid + 1) * n // nprocs
    return lo, hi


def owner_of_row(row: int, n: int, nprocs: int) -> int:
    """Which processor owns a global row under blockwise distribution."""
    for pid in range(nprocs):
        lo, hi = row_block(pid, n, nprocs)
        if lo <= row < hi:
            return pid
    raise ValueError(f"row {row} out of range for n={n}")


def residual(a_matrix: np.ndarray, b: np.ndarray, x: np.ndarray) -> float:
    """Relative residual ``||A x - b|| / ||b||``."""
    return float(np.linalg.norm(a_matrix @ x - b) / np.linalg.norm(b))


def update_flops(active_rows: int, row_len: int) -> int:
    """FLOPs of one elimination update: factor + scale + subtract."""
    return active_rows * (1 + 2 * row_len)


#: Non-FP work per updated element (loads, stores, index arithmetic on a
#: single-issue SPARC). Calibrated against the paper's Gauss computation
#: time: 40.8M cycles over ~1.4M updated elements per processor is ~29
#: cycles per element; 2 FLOPs cover 6 of those.
UPDATE_INT_OPS_PER_ELEMENT = 18


def update_int_ops(active_rows: int, row_len: int) -> int:
    """Integer/memory-op cycles of one elimination update."""
    return active_rows * row_len * UPDATE_INT_OPS_PER_ELEMENT


def pivot_search_flops(active_rows: int) -> int:
    """FLOPs of a local pivot search (abs + compare per row)."""
    return 2 * active_rows
