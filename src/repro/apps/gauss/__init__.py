"""Gaussian elimination with partial pivoting (paper Section 5.2)."""

from repro.apps.gauss.common import GaussConfig, generate_system, residual
from repro.apps.gauss.mp import run_gauss_mp
from repro.apps.gauss.sm import run_gauss_sm

__all__ = [
    "GaussConfig",
    "generate_system",
    "residual",
    "run_gauss_mp",
    "run_gauss_sm",
]
