"""Declarative sensitivity sweeps over the experiment harness.

The paper's strongest conclusions are *sensitivity* statements — how
the MP/SM balance moves with network latency, cache size, and
processor count. :mod:`repro.sweep` turns each such statement into a
declarative :class:`SweepSpec` (experiment + axes + derived metrics +
machine-checked curve shape), an engine that shards the grid over the
parallel executor and serves warm points from the result cache, and
serializable :class:`SweepResult` artifacts (JSON, CSV, ASCII plots).

>>> from repro.sweep import get_sweep, run_sweep
>>> result = run_sweep(get_sweep("em3d-latency"))
>>> result.all_ok
True
"""

from repro.sweep.analysis import find_crossover, monotone, speedup_vs_first
from repro.sweep.axes import (
    axis_overrides,
    known_axes,
    merge_overrides,
    parse_axis_flag,
    parse_axis_value,
)
from repro.sweep.engine import latest_manifest, result_path, run_sweep
from repro.sweep.plot import render_plot, render_plots
from repro.sweep.result import SWEEP_SCHEMA, SweepResult, load_result
from repro.sweep.spec import CrossoverSpec, SweepPoint, SweepSpec


def __getattr__(name: str):
    # Lazy, to avoid a circular import with repro.specs (which builds
    # SweepSpec objects from YAML and therefore imports this package's
    # submodules): the canonical YAML-first resolver, plus the
    # deprecated registry dict round-tripped through the YAML loader.
    if name == "get_sweep":
        from repro.specs import get_sweep

        return get_sweep
    if name == "SWEEP_SPECS":
        from repro.sweep import specs as _legacy

        return _legacy.SWEEP_SPECS  # emits the shim's DeprecationWarning
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "SWEEP_SCHEMA",
    "SWEEP_SPECS",
    "CrossoverSpec",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "axis_overrides",
    "find_crossover",
    "get_sweep",
    "known_axes",
    "latest_manifest",
    "load_result",
    "merge_overrides",
    "monotone",
    "parse_axis_flag",
    "parse_axis_value",
    "render_plot",
    "render_plots",
    "result_path",
    "run_sweep",
    "speedup_vs_first",
]
