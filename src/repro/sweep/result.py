"""Serializable sweep results (JSON + CSV artifacts).

A :class:`SweepResult` is the durable outcome of one sweep: the grid's
axis coordinates, each point's derived metrics and cache key, the
crossover verdicts, and the sweep-level shape checks. Everything is
plain JSON-safe data — re-printable, exportable, and comparable
without touching a simulator. Timing and cache-hit accounting live
under ``meta``: two runs of the same grid (interrupted-and-resumed or
not) produce identical results outside ``meta``.
"""

from __future__ import annotations

import io
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Bump when the result layout changes.
SWEEP_SCHEMA = 1


@dataclass
class SweepResult:
    """One finished sweep, reduced to serializable facts."""

    spec_name: str
    exp_id: str
    description: str
    #: Ordered [axis, [values...]] pairs, as swept.
    axes: List[List[Any]]
    metrics: List[str]
    #: Grid-ordered points: {"coords", "cache_key", "metrics"}.
    points: List[Dict[str, Any]]
    crossovers: List[Dict[str, Any]] = field(default_factory=list)
    checks: List[List[Any]] = field(default_factory=list)  # [name, ok, detail]
    #: Timing/accounting only — excluded from result identity.
    meta: Dict[str, Any] = field(default_factory=dict, compare=False)
    schema: int = SWEEP_SCHEMA

    @property
    def all_ok(self) -> bool:
        return all(ok for _name, ok, _detail in self.checks)

    @property
    def axis_names(self) -> List[str]:
        return [axis for axis, _values in self.axes]

    # -- series extraction -------------------------------------------------

    def series(
        self, metric: str, where: Optional[Dict[str, Any]] = None
    ) -> Tuple[List[Any], List[float]]:
        """``(xs, ys)`` of one metric along the first axis.

        For two-axis sweeps pass ``where={second_axis: value}`` to pick
        a row; with no filter the whole grid must be one-dimensional.
        """
        primary = self.axis_names[0]
        xs: List[Any] = []
        ys: List[float] = []
        for point in self.points:
            coords = point["coords"]
            if where and any(coords.get(k) != v for k, v in where.items()):
                continue
            if len(coords) > 1 and not where:
                raise ValueError(
                    f"sweep {self.spec_name!r} has axes {self.axis_names}; "
                    "pass where={axis: value} to select a row"
                )
            xs.append(coords[primary])
            ys.append(point["metrics"][metric])
        return xs, ys

    def rows(self) -> List[Dict[str, Any]]:
        """Flat rows (axis columns + metric columns), grid order."""
        out = []
        for point in self.points:
            row: Dict[str, Any] = dict(point["coords"])
            row.update(point["metrics"])
            out.append(row)
        return out

    # -- serialization -----------------------------------------------------

    def to_jsonable(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "SweepResult":
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_csv(self) -> str:
        """RFC-4180-ish CSV: axis columns then metric columns."""
        import csv

        columns = self.axis_names + list(self.metrics)
        extra = [
            key
            for row in self.rows()
            for key in row
            if key not in columns
        ]
        for key in extra:  # derived metrics not in the declared list
            if key not in columns:
                columns.append(key)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
        writer.writeheader()
        for row in self.rows():
            writer.writerow(row)
        return buffer.getvalue()

    # -- rendering ---------------------------------------------------------

    def render_table(self) -> str:
        """Fixed-width point table (the CLI's summary block)."""
        columns = self.axis_names + _metric_columns(self)
        widths = {
            c: max(len(c), max((len(_fmt(r.get(c))) for r in self.rows()),
                               default=0))
            for c in columns
        }
        header = "  ".join(f"{c:>{widths[c]}}" for c in columns)
        lines = [header, "-" * len(header)]
        for row in self.rows():
            lines.append(
                "  ".join(f"{_fmt(row.get(c)):>{widths[c]}}" for c in columns)
            )
        return "\n".join(lines)


def _metric_columns(result: SweepResult) -> List[str]:
    columns = list(result.metrics)
    for row in result.rows():
        for key in row:
            if key not in columns and key not in result.axis_names:
                columns.append(key)
    return columns


def _fmt(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def load_result(path: Any) -> SweepResult:
    """Read a stored sweep result back (tools and tests)."""
    import json
    from pathlib import Path

    return SweepResult.from_jsonable(json.loads(Path(path).read_text()))
