"""Curve analysis over sweep series: crossovers and shape helpers.

The paper's sensitivity conclusions are statements about curve
*shapes* — a ratio shrinking monotonically toward a crossover, a share
falling off a cliff below a cache size, a speedup curve staying
monotone. These helpers turn those statements into machine-checked
assertions over ``(x, y)`` series extracted from a finished sweep.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def find_crossover(
    xs: Sequence[float], ys: Sequence[float], level: float
) -> Optional[float]:
    """The first x at which ``ys`` crosses ``level``, interpolated.

    Scans the series in order; an exact touch counts as a crossing.
    Returns ``None`` when the series stays on one side of the level.
    """
    if len(xs) != len(ys) or not xs:
        raise ValueError("crossover needs two equal-length non-empty series")
    prev_x, prev_y = xs[0], ys[0]
    if prev_y == level:
        return float(prev_x)
    for x, y in zip(xs[1:], ys[1:]):
        if y == level:
            return float(x)
        if (prev_y - level) * (y - level) < 0:
            # Linear interpolation inside the bracketing segment.
            frac = (level - prev_y) / (y - prev_y)
            return float(prev_x + frac * (x - prev_x))
        prev_x, prev_y = x, y
    return None


def crossover_report(
    name: str,
    axis: str,
    xs: Sequence[float],
    ys: Sequence[float],
    metric: str,
    level: float,
    description: str = "",
) -> Dict[str, Any]:
    """A serializable crossover verdict for one probe."""
    at = find_crossover(xs, ys, level)
    if at is not None:
        detail = f"{metric} crosses {level:g} at {axis} ~ {at:g}"
    else:
        lo, hi = min(ys), max(ys)
        side = "above" if lo > level else "below"
        detail = (
            f"{metric} stays {side} {level:g} over {axis} in "
            f"[{min(xs):g}, {max(xs):g}] (range {lo:.3g}..{hi:.3g})"
        )
    return {
        "name": name,
        "metric": metric,
        "level": level,
        "axis": axis,
        "crossed": at is not None,
        "at": at,
        "detail": description + (": " if description else "") + detail,
    }


def monotone(
    ys: Sequence[float], increasing: bool, strict: bool = False,
    tolerance: float = 0.0,
) -> bool:
    """Is the series monotone in the given direction?

    ``tolerance`` forgives counter-direction steps up to that size
    (absolute), for shares that flatten into noise past a knee.
    """
    for prev, cur in zip(ys, ys[1:]):
        step = cur - prev if increasing else prev - cur
        if strict and step <= 0:
            return False
        if not strict and step < -tolerance:
            return False
    return True


def fmt_series(ys: Sequence[float]) -> str:
    """Compact series rendering for check detail strings."""
    return " -> ".join(f"{y:.3g}" for y in ys)


def speedup_vs_first(ys: Sequence[float]) -> List[float]:
    """Parallel speedup of a totals series against its first point."""
    if not ys or ys[0] == 0:
        raise ValueError("speedup needs a non-empty series with ys[0] != 0")
    return [ys[0] / y if y else float("inf") for y in ys]
