"""The sweep engine: expand, shard, cache, resume, analyze.

:func:`run_sweep` drives one :class:`~repro.sweep.spec.SweepSpec`
through the runner harness:

1. **Expand** the grid against the experiment's default config (axis
   typos fail here, before any simulation).
2. **Serve warm points** from the on-disk
   :class:`~repro.runner.cache.ResultCache` — re-running an enlarged
   sweep only simulates the new points, and an immediate rerun
   simulates nothing.
3. **Shard cold points** into batches over the executor's spawned
   workers (``--jobs``); every finished record is written back to the
   cache *as it arrives*, so an interrupted sweep keeps its finished
   points.
4. **Manifest** the grid under ``<cache>/sweeps/`` as points complete;
   ``resume=True`` picks the most recent manifest for the spec back up
   (including its axis replacements) where it stopped.
5. **Analyze**: extract the spec's metrics from each record summary,
   run the derive post-pass (e.g. speedup vs the 1-proc point), probe
   crossovers, and evaluate the sweep-level shape checks.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runner.cache import ResultCache, cache_key
from repro.runner.executor import default_jobs, plan_batches, run_parallel
from repro.runner.record import RunRecord
from repro.stats.metrics import derive_metrics
from repro.sweep.analysis import crossover_report
from repro.sweep.result import SWEEP_SCHEMA, SweepResult
from repro.sweep.spec import SweepPoint, SweepSpec

#: progress(done, total, point, record, simulated)
ProgressFn = Callable[[int, int, SweepPoint, RunRecord, bool], None]

#: Manifest layout version.
MANIFEST_SCHEMA = 1


def _manifest_path(cache: ResultCache, spec: SweepSpec) -> Path:
    return cache.directory / "sweeps" / (
        f"{spec.name}-{spec.grid_key()[:16]}.manifest.json"
    )


def result_path(cache: ResultCache, spec: SweepSpec) -> Path:
    """Where the finished sweep's result JSON lands."""
    return cache.directory / "sweeps" / (
        f"{spec.name}-{spec.grid_key()[:16]}.result.json"
    )


def _write_manifest(
    path: Path, spec: SweepSpec, points: Sequence[SweepPoint],
    done: Mapping[str, Any],
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": MANIFEST_SCHEMA,
        "spec": spec.name,
        "exp_id": spec.exp_id,
        "grid_key": spec.grid_key(),
        "axes": [[axis, list(values)] for axis, values in spec.axes],
        "points": [
            {
                "coords": point.coords,
                "cache_key": point.cache_key,
                "status": "done" if point.cache_key in done else "pending",
            }
            for point in points
        ],
    }
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
    tmp.replace(path)


def latest_manifest(
    cache: ResultCache, spec_name: str
) -> Optional[Dict[str, Any]]:
    """The most recently written manifest for one spec name, if any."""
    directory = cache.directory / "sweeps"
    if not directory.is_dir():
        return None
    candidates = sorted(
        directory.glob(f"{spec_name}-*.manifest.json"),
        key=lambda p: p.stat().st_mtime,
    )
    for path in reversed(candidates):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if data.get("spec") == spec_name and data.get("schema") == MANIFEST_SCHEMA:
            return data
    return None


def run_sweep(
    spec: SweepSpec,
    axes: Optional[Mapping[str, Sequence[Any]]] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    force: bool = False,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
) -> SweepResult:
    """Run one sweep end to end; see the module docstring for phases."""
    from repro.core.experiments import get_experiment

    jobs = default_jobs() if jobs is None else max(1, jobs)
    cache = cache if cache is not None else ResultCache()

    if resume:
        manifest = latest_manifest(cache, spec.name)
        if manifest is None:
            raise FileNotFoundError(
                f"nothing to resume: no manifest for sweep {spec.name!r} "
                f"under {cache.directory / 'sweeps'}"
            )
        axes = {axis: tuple(values) for axis, values in manifest["axes"]}
    spec = spec.with_axes(axes)

    base_config = get_experiment(spec.exp_id).config
    points = spec.grid(base_config)
    configs = {}
    for point in points:
        config = base_config.with_overrides(point.overrides)
        point.cache_key = cache_key(config)
        configs[point.cache_key] = config

    started = time.perf_counter()
    records: Dict[str, RunRecord] = {}
    done_count = 0
    total = len(points)

    def note(point: SweepPoint, record: RunRecord, simulated: bool) -> None:
        nonlocal done_count
        done_count += 1
        if progress is not None:
            progress(done_count, total, point, record, simulated)

    # Warm points straight from the on-disk cache.
    to_run: List[Tuple[str, Dict[str, Any]]] = []
    queued = set()
    for point in points:
        if point.cache_key in records or point.cache_key in queued:
            note(point, records.get(point.cache_key), False)  # duplicate coords
            continue
        hit = (
            cache.load(configs[point.cache_key])
            if use_cache and not force
            else None
        )
        if hit is not None:
            records[point.cache_key] = hit
            note(point, hit, False)
        else:
            queued.add(point.cache_key)
            to_run.append((spec.exp_id, point.overrides))

    manifest_file = _manifest_path(cache, spec)
    _write_manifest(manifest_file, spec, points, records)

    if to_run:
        by_key = {point.cache_key: point for point in points}

        def collect(record: RunRecord) -> None:
            # Write back as each record arrives: an interrupted sweep
            # keeps its finished points, and a rerun picks up here.
            records[record.cache_key] = record
            if use_cache:
                cache.store(record)
            _write_manifest(manifest_file, spec, points, records)
            point = by_key.get(record.cache_key)
            if point is not None:
                note(point, record, True)

        run_parallel(
            plan_batches(to_run, jobs=jobs), jobs=jobs, progress=collect
        )
        if jobs <= 1:
            # In-process batches memoize raw results (live machine
            # objects); a sweep has no baseline comparisons to serve,
            # so drop them rather than hold every point's machines.
            from repro.runner.api import clear_memory_cache

            clear_memory_cache()

    simulated = len(to_run)

    # -- metric extraction and analysis ------------------------------------
    for point in points:
        record = records[point.cache_key]
        point.metrics = derive_metrics(
            record.summary, spec.metrics, spec.extra_metrics
        )
    if spec.derive is not None:
        spec.derive(points)

    result = SweepResult(
        spec_name=spec.name,
        exp_id=spec.exp_id,
        description=spec.description,
        axes=[[axis, list(values)] for axis, values in spec.axes],
        metrics=list(spec.metrics),
        points=[
            {
                "coords": dict(point.coords),
                "cache_key": point.cache_key,
                "metrics": dict(point.metrics),
            }
            for point in points
        ],
        schema=SWEEP_SCHEMA,
    )
    result.crossovers = _probe_crossovers(spec, result)
    if spec.checks is not None:
        result.checks = [
            [name, bool(ok), detail] for name, ok, detail in spec.checks(result)
        ]
    result.meta = {
        "points": total,
        "simulated": simulated,
        "cached": total - simulated,
        "jobs": jobs,
        "elapsed_seconds": round(time.perf_counter() - started, 3),
        "manifest": str(manifest_file),
    }

    out_path = result_path(cache, spec)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(result.to_jsonable(), indent=1, sort_keys=True))
    return result


def _probe_crossovers(
    spec: SweepSpec, result: SweepResult
) -> List[Dict[str, Any]]:
    """Evaluate the spec's crossover probes (one-dimensional sweeps)."""
    reports: List[Dict[str, Any]] = []
    for probe in spec.crossovers:
        if len(spec.axes) != 1:
            reports.append(
                {
                    "name": probe.name,
                    "metric": probe.metric,
                    "level": probe.level,
                    "axis": None,
                    "crossed": False,
                    "at": None,
                    "detail": "crossover probes need a one-axis sweep",
                }
            )
            continue
        axis = spec.axes[0][0]
        xs, ys = result.series(probe.metric)
        if not all(isinstance(x, (int, float)) for x in xs):
            reports.append(
                {
                    "name": probe.name,
                    "metric": probe.metric,
                    "level": probe.level,
                    "axis": axis,
                    "crossed": False,
                    "at": None,
                    "detail": f"axis {axis!r} is not numeric",
                }
            )
            continue
        reports.append(
            crossover_report(
                probe.name, axis, xs, ys, probe.metric, probe.level,
                probe.description,
            )
        )
    return reports
