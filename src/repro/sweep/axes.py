"""Sweep axes: names users sweep over, resolved to config overrides.

An *axis* is anything :meth:`ExperimentConfig.with_overrides` accepts,
addressed by a flat name:

* top-level config fields — ``procs``, ``seed``, ``cache_bytes`` (and
  the convenience alias ``cache_kb``), plus the categorical channels
  ``consistency`` (sc/tso/pc) and ``preset`` (paper/multicore/cluster);
* machine knobs — any overridable
  :class:`~repro.arch.params.CommonParams` field (``network_latency``,
  ``block_bytes``, ``tlb_entries``, ``page_bytes``, ...), with
  ``net_latency`` as the paper-speak alias;
* application workload fields — bare (``n``, ``nodes_per_proc``,
  ``iterations``) or qualified (``app.n``);
* experiment options — qualified only (``options.asynchronous``).

:func:`axis_overrides` turns one ``(axis, value)`` pair into an
overrides fragment; :func:`merge_overrides` composes fragments (and a
spec's base overrides) into the single mapping a grid point hands to
``with_overrides``. Unknown axis names fail loudly with a
did-you-mean suggestion — a typo must not silently sweep nothing.
"""

from __future__ import annotations

import difflib
from dataclasses import fields
from typing import Any, Dict, List, Mapping, Tuple

from repro.runner.config import MACHINE_FIELDS, ExperimentConfig

#: Alias -> canonical axis spelling.
ALIASES = {
    "net_latency": "network_latency",
    "nprocs": "procs",
}

#: Top-level ExperimentConfig fields addressable as axes.
#: ``consistency`` (sc/tso/pc) and ``preset`` (paper/multicore/cluster)
#: are categorical: sweeping them re-asks a spec's question across
#: memory models or machine tables.
_TOP_LEVEL = ("procs", "seed", "cache_bytes", "consistency", "preset")

#: Mapping-valued override channels, deep-merged by merge_overrides.
_MERGED_CHANNELS = ("app", "options", "machine")


def known_axes(config: ExperimentConfig) -> List[str]:
    """Every valid axis name for this experiment's configuration."""
    names = list(_TOP_LEVEL) + ["cache_kb"]
    names += [n for n in MACHINE_FIELDS]
    names += [a for a, c in ALIASES.items() if c in names]
    if config.app is not None:
        app_fields = [f.name for f in fields(config.app)]
        names += [f"app.{name}" for name in app_fields]
        taken = set(names)
        names += [name for name in app_fields if name not in taken]
    names += [f"options.{key}" for key, _v in config.options]
    return names


def axis_overrides(
    config: ExperimentConfig, axis: str, value: Any
) -> Dict[str, Any]:
    """One axis point as a ``with_overrides`` fragment.

    ``axis_overrides(cfg, "net_latency", 50)`` ->
    ``{"machine": {"network_latency": 50}}``.
    """
    name = ALIASES.get(axis, axis)
    if name == "cache_kb":
        return {"cache_bytes": int(value * 1024)}
    if name in _TOP_LEVEL:
        return {name: value}
    if name in MACHINE_FIELDS:
        return {"machine": {name: value}}
    if name.startswith("app."):
        field = name[len("app."):]
        if config.app is not None and field in {
            f.name for f in fields(config.app)
        }:
            return {"app": {field: value}}
    elif name.startswith("options."):
        return {"options": {name[len("options."):]: value}}
    elif config.app is not None and name in {f.name for f in fields(config.app)}:
        return {"app": {name: value}}
    known = known_axes(config)
    matches = difflib.get_close_matches(axis, known, n=1, cutoff=0.5)
    hint = f" (did you mean {matches[0]!r}?)" if matches else ""
    raise ValueError(
        f"unknown sweep axis {axis!r} for {config.exp_id}{hint}; "
        f"known axes: {known}"
    )


def merge_overrides(*fragments: Mapping[str, Any]) -> Dict[str, Any]:
    """Compose override fragments; later fragments win per key.

    The mapping-valued channels (``app``, ``options``, ``machine``)
    are merged key-by-key so two axes can both target app fields.
    """
    merged: Dict[str, Any] = {}
    for fragment in fragments:
        for key, value in fragment.items():
            if key in _MERGED_CHANNELS and isinstance(value, Mapping):
                channel = dict(merged.get(key) or {})
                channel.update(value)
                merged[key] = channel
            else:
                merged[key] = value
    return merged


def parse_axis_value(text: str) -> Any:
    """One CLI axis value: int when possible, then float, bool, string."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            continue
    return text.strip()


def parse_axis_flag(text: str) -> Tuple[str, Tuple[Any, ...]]:
    """Parse one ``--axis name=v1,v2,...`` argument."""
    if "=" not in text:
        raise ValueError(
            f"bad --axis {text!r}: expected name=v1,v2,... "
            "(e.g. net_latency=0,50,100)"
        )
    name, _eq, values_text = text.partition("=")
    name = name.strip()
    values = tuple(
        parse_axis_value(part)
        for part in values_text.split(",")
        if part.strip() != ""
    )
    if not name or not values:
        raise ValueError(f"bad --axis {text!r}: empty axis name or value list")
    return name, values
