"""ASCII curve plots for sweep results.

One chart per metric, in the same terminal-first style as
:mod:`repro.trace.timeline`: a titled box, a single-character legend,
and ``.``-padded plot rows. Series glyphs mark the measured points;
when a crossover probe fired, its level is drawn as a rule and the
interpolated crossing is annotated beneath the axis.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.stats.report import human_quantity

#: Glyphs cycled across series (rows of a two-axis sweep).
_GLYPHS = "o*x+#@%&"


def render_plot(
    result: Any, metric: str, width: int = 60, height: int = 12
) -> str:
    """One metric's curve(s) over the first axis, as ASCII art."""
    axis = result.axis_names[0]
    series = _series_for(result, metric)
    if not series:
        return f"(no points for metric {metric!r})"
    xs = series[0][1]
    level = _crossover_level(result, metric)

    all_ys = [y for _label, _xs, ys in series for y in ys]
    lo, hi = min(all_ys), max(all_ys)
    if level is not None:
        lo, hi = min(lo, level), max(hi, level)
    if hi == lo:  # flat series still gets a visible band
        pad = abs(hi) * 0.05 or 1.0
        lo, hi = lo - pad, hi + pad
    span = hi - lo

    columns = _x_columns(xs, width)
    grid = [[" "] * width for _ in range(height)]

    if level is not None:
        row = _y_row(level, lo, span, height)
        for col in range(width):
            grid[row][col] = "-"

    for index, (_label, _sxs, ys) in enumerate(series):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        prev: Optional[Tuple[int, int]] = None
        for col, y in zip(columns, ys):
            row = _y_row(y, lo, span, height)
            if prev is not None:
                _connect(grid, prev, (col, row))
            grid[row][col] = glyph
            prev = (col, row)

    title = f"{result.spec_name}: {metric} vs {axis}"
    lines = [title, "-" * max(44, len(title))]
    if len(series) > 1 or series[0][0]:
        legend = "  ".join(
            f"{_GLYPHS[i % len(_GLYPHS)]}={label or metric}"
            for i, (label, _xs, _ys) in enumerate(series)
        )
        lines.append(f"legend: {legend}")
    label_width = max(len(_fmt_y(lo)), len(_fmt_y(hi))) + 1
    for row in range(height):
        value = hi - span * (row + 0.5) / height
        tick = _fmt_y(value) if row in (0, height - 1) else (
            _fmt_y(level) if level is not None
            and row == _y_row(level, lo, span, height) else ""
        )
        lines.append(f"{tick:>{label_width}} |{''.join(grid[row])}|")
    lines.append(f"{'':>{label_width}} +{'-' * width}+")
    lines.append(f"{'':>{label_width}}  {_x_axis_labels(xs, columns, width)}")
    lines.append(f"{'':>{label_width}}  {axis}")
    lines.extend(_crossover_notes(result, metric, label_width))
    return "\n".join(lines).rstrip()


def render_plots(result: Any, width: int = 60, height: int = 12) -> str:
    """All declared metrics, one chart each, blank-line separated."""
    return "\n\n".join(
        render_plot(result, metric, width=width, height=height)
        for metric in result.metrics
    )


# -- layout helpers --------------------------------------------------------


def _series_for(
    result: Any, metric: str
) -> List[Tuple[str, List[Any], List[float]]]:
    """``[(label, xs, ys)]`` — one series per second-axis row."""
    if len(result.axis_names) == 1:
        xs, ys = result.series(metric)
        return [("", xs, ys)] if xs else []
    second, values = result.axes[1]
    out = []
    for value in values:
        xs, ys = result.series(metric, where={second: value})
        if xs:
            out.append((f"{second}={value}", xs, ys))
    return out


def _x_columns(xs: Sequence[Any], width: int) -> List[int]:
    """Column index of each x point, spaced by value when numeric."""
    if len(xs) == 1:
        return [width // 2]
    numeric = all(isinstance(x, (int, float)) for x in xs)
    if numeric and max(xs) > min(xs):
        span = max(xs) - min(xs)
        return [
            min(width - 1, int((x - min(xs)) / span * (width - 1)))
            for x in xs
        ]
    return [
        int(i * (width - 1) / (len(xs) - 1)) for i in range(len(xs))
    ]


def _y_row(y: float, lo: float, span: float, height: int) -> int:
    frac = (y - lo) / span
    return max(0, min(height - 1, int(round((1.0 - frac) * (height - 1)))))


def _connect(
    grid: List[List[str]], a: Tuple[int, int], b: Tuple[int, int]
) -> None:
    """Faint interpolation dots between consecutive points."""
    (c0, r0), (c1, r1) = a, b
    steps = max(abs(c1 - c0), abs(r1 - r0))
    for step in range(1, steps):
        col = c0 + round((c1 - c0) * step / steps)
        row = r0 + round((r1 - r0) * step / steps)
        if grid[row][col] in (" ", "-"):
            grid[row][col] = "."


def _x_axis_labels(
    xs: Sequence[Any], columns: Sequence[int], width: int
) -> str:
    line = [" "] * (width + 8)
    for x, col in zip(xs, columns):
        text = _fmt_x(x)
        start = max(0, min(col - len(text) // 2, width + 8 - len(text)))
        if all(line[i] == " " for i in range(start, start + len(text))):
            line[start:start + len(text)] = text
    return "".join(line).rstrip()


def _fmt_x(value: Any) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def _fmt_y(value: float) -> str:
    if abs(value) >= 10000:
        return human_quantity(value)
    if value == int(value):
        return str(int(value))
    return f"{value:.3g}"


def _crossover_level(result: Any, metric: str) -> Optional[float]:
    for probe in result.crossovers:
        if probe.get("metric") == metric:
            return float(probe["level"])
    return None


def _crossover_notes(
    result: Any, metric: str, label_width: int
) -> List[str]:
    notes = []
    for probe in result.crossovers:
        if probe.get("metric") != metric:
            continue
        marker = "x" if probe.get("crossed") else "-"
        notes.append(f"{'':>{label_width}}  [{marker}] {probe['detail']}")
    return notes
