"""Declarative sweep specifications and grid expansion.

A :class:`SweepSpec` names an experiment, one or two axes (anything
:mod:`repro.sweep.axes` resolves), the derived metrics to extract from
each point's run record (:mod:`repro.stats.metrics`), optional
crossover probes, and a shape-check callable pinning the qualitative
claim the sweep reproduces. :meth:`SweepSpec.grid` expands the axes
into ordered :class:`SweepPoint`\\ s, each carrying the exact
``with_overrides`` mapping the harness will run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.sweep.axes import axis_overrides, merge_overrides

#: A sweep-level shape check: (description, passed, detail).
SweepCheck = Tuple[str, bool, str]


@dataclass(frozen=True)
class CrossoverSpec:
    """One crossover probe: where ``metric`` crosses ``level``.

    e.g. the network latency below which EM3D-SM catches EM3D-MP is
    ``CrossoverSpec("sm-catches-mp", metric="sm_over_mp", level=1.0)``.
    """

    name: str
    metric: str
    level: float
    description: str = ""


@dataclass
class SweepPoint:
    """One grid point: axis coordinates plus the resolved overrides."""

    coords: Dict[str, Any]
    overrides: Dict[str, Any]
    cache_key: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)

    def label(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in self.coords.items())


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sensitivity sweep over one experiment."""

    name: str
    exp_id: str
    #: Ordered ``(axis, values)`` pairs; one or two axes.
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    #: Metric names resolved through :mod:`repro.stats.metrics`.
    metrics: Tuple[str, ...]
    description: str = ""
    #: Overrides applied to *every* point (e.g. a scaled-down workload).
    base_overrides: Mapping[str, Any] = field(default_factory=dict)
    crossovers: Tuple[CrossoverSpec, ...] = ()
    #: Shape checks over the finished sweep (the machine-checked claim).
    checks: Optional[Callable[[Any], List[SweepCheck]]] = None
    #: Post-pass adding derived per-point metrics (e.g. speedup vs the
    #: 1-proc point); mutates the points' ``metrics`` dicts in place.
    derive: Optional[Callable[[List[SweepPoint]], None]] = None
    #: Sweep-local metric functions, shadowing/extending the registry.
    extra_metrics: Optional[Mapping[str, Callable[[Mapping], float]]] = None

    def __post_init__(self) -> None:
        if not 1 <= len(self.axes) <= 2:
            raise ValueError(
                f"sweep {self.name!r}: expected one or two axes, "
                f"got {len(self.axes)}"
            )
        for axis, values in self.axes:
            if not values:
                raise ValueError(f"sweep {self.name!r}: axis {axis!r} is empty")
        if not self.metrics:
            raise ValueError(f"sweep {self.name!r}: no metrics declared")

    # -- axis replacement (the CLI's --axis flag) --------------------------

    def with_axes(
        self, replacements: Optional[Mapping[str, Sequence[Any]]]
    ) -> "SweepSpec":
        """A copy with some axes' value lists replaced or appended.

        Replacing an existing axis keeps its position; a new axis is
        appended (still capped at two axes total).
        """
        if not replacements:
            return self
        axes = [list(pair) for pair in self.axes]
        names = [axis for axis, _v in axes]
        for axis, values in replacements.items():
            if axis in names:
                axes[names.index(axis)][1] = tuple(values)
            else:
                axes.append([axis, tuple(values)])
        from dataclasses import replace

        return replace(
            self, axes=tuple((a, tuple(v)) for a, v in axes)
        )

    # -- grid expansion ----------------------------------------------------

    def grid(self, base_config: Any) -> List[SweepPoint]:
        """Expand the axes into ordered points (first axis outermost).

        ``base_config`` is the experiment's default
        :class:`~repro.runner.config.ExperimentConfig`; axis names are
        validated against it, so a typo fails here, before any
        simulation.
        """
        points: List[SweepPoint] = []
        first_axis, first_values = self.axes[0]
        second = self.axes[1] if len(self.axes) == 2 else None
        for v1 in first_values:
            frag1 = axis_overrides(base_config, first_axis, v1)
            if second is None:
                points.append(
                    SweepPoint(
                        coords={first_axis: v1},
                        overrides=merge_overrides(self.base_overrides, frag1),
                    )
                )
                continue
            second_axis, second_values = second
            for v2 in second_values:
                frag2 = axis_overrides(base_config, second_axis, v2)
                points.append(
                    SweepPoint(
                        coords={first_axis: v1, second_axis: v2},
                        overrides=merge_overrides(
                            self.base_overrides, frag1, frag2
                        ),
                    )
                )
        return points

    # -- identity ----------------------------------------------------------

    def grid_key(self) -> str:
        """A stable digest of the expanded grid's identity.

        Names the sweep's manifest/result files: the same spec with the
        same axes and base overrides resumes the same manifest.
        """
        payload = {
            "name": self.name,
            "exp_id": self.exp_id,
            "axes": [[axis, list(values)] for axis, values in self.axes],
            "base_overrides": _canonical(self.base_overrides),
            "metrics": list(self.metrics),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _canonical(value: Any) -> Any:
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value
