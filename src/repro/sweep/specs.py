"""Ship-with-repo sweeps reproducing the paper's sensitivity claims.

Each spec pins one qualitative conclusion from Section 5 of the paper
as a machine-checked curve shape over a scaled-down workload (a few
seconds of simulation for the whole grid, so the sweeps are runnable
in CI):

* ``em3d-latency`` — EM3D is the message-passing showcase: its MP
  version overlaps communication that the SM version stalls on, so
  the SM/MP cycle ratio *grows* with network latency and shrinks
  toward parity as the network gets faster.
* ``em3d-cache`` — the SM version's data-access share of execution
  time grows as the cache shrinks below the working set; MP, with its
  locally-allocated graph halves, is far less cache-sensitive.
* ``gauss-speedup`` — both versions of Gaussian elimination speed up
  monotonically through eight processors on a fixed problem, and the
  SM version overtakes MP as broadcast traffic grows with the
  processor count.
* ``em3d-modern`` — the ROADMAP's scenario-diversity question: does
  EM3D's MP win survive machines the paper never saw? The ``preset``
  axis re-runs the pair on the multicore-era and cluster-of-multicores
  tables (see :mod:`repro.arch.params`).

The grids are deliberately coarse; ``repro sweep <name> --axis ...``
widens any axis without touching this file.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.sweep.analysis import fmt_series, monotone
from repro.sweep.spec import CrossoverSpec, SweepCheck, SweepPoint, SweepSpec

#: A small EM3D workload (4 procs x 40 nodes x degree 4, 3 iterations)
#: that keeps the paper's qualitative behaviour at ~1/250 the cycles.
_EM3D_SMALL: Dict[str, Any] = {
    "procs": 4,
    "app": {"nodes_per_proc": 40, "degree": 4, "iterations": 3},
}


def _check_em3d_latency(result: Any) -> List[SweepCheck]:
    _xs, ratio = result.series("sm_over_mp")
    return [
        (
            "sm/mp cycle ratio grows with network latency",
            monotone(ratio, increasing=True, strict=True),
            f"sm_over_mp: {fmt_series(ratio)}",
        ),
        (
            "mp wins at every swept latency (ratio stays above 1)",
            min(ratio) > 1.0,
            f"min sm_over_mp = {min(ratio):.3f}",
        ),
    ]


#: EM3D at 16 processors: enough to span two 8-core clusters on the
#: ``cluster`` preset, so the cross-node latency actually bites.
_EM3D_MODERN: Dict[str, Any] = {
    "procs": 16,
    "app": {"nodes_per_proc": 16, "degree": 4, "iterations": 3},
}


def _check_em3d_modern(result: Any) -> List[SweepCheck]:
    xs, ratio = result.series("sm_over_mp")
    by_preset = dict(zip(xs, ratio))
    return [
        (
            "mp wins em3d on every machine table (ratio stays above 1)",
            min(ratio) > 1.0,
            f"min sm_over_mp = {min(ratio):.3f}",
        ),
        (
            "the memory wall widens mp's win on the multicore table",
            by_preset["multicore"] > by_preset["paper"],
            f"paper {by_preset['paper']:.2f} -> "
            f"multicore {by_preset['multicore']:.2f}",
        ),
        (
            "cross-node latency widens it further on the cluster table",
            by_preset["cluster"] > by_preset["multicore"],
            f"multicore {by_preset['multicore']:.2f} -> "
            f"cluster {by_preset['cluster']:.2f}",
        ),
    ]


def _check_em3d_cache(result: Any) -> List[SweepCheck]:
    _xs, share = result.series("sm_data_access_share")
    return [
        (
            "sm data-access share falls as the cache grows",
            monotone(share, increasing=False, strict=True),
            f"sm_data_access_share: {fmt_series(share)}",
        ),
    ]


def _derive_speedups(points: List[SweepPoint]) -> None:
    """Per-version parallel speedup against the sweep's first point."""
    for key in ("mp", "sm"):
        base = points[0].metrics[f"{key}_total"]
        for point in points:
            total = point.metrics[f"{key}_total"]
            point.metrics[f"{key}_speedup"] = base / total if total else 0.0


def _check_gauss_speedup(result: Any) -> List[SweepCheck]:
    checks: List[SweepCheck] = []
    for key in ("mp", "sm"):
        _xs, speedup = result.series(f"{key}_speedup")
        checks.append(
            (
                f"{key} speedup is monotone through the swept procs",
                monotone(speedup, increasing=True, strict=True),
                f"{key}_speedup: {fmt_series(speedup)}",
            )
        )
    return checks


SWEEP_SPECS: Dict[str, SweepSpec] = {
    spec.name: spec
    for spec in (
        SweepSpec(
            name="em3d-latency",
            exp_id="em3d",
            description=(
                "EM3D cycle totals vs network latency: the MP version's "
                "split-phase sends hide latency the SM version eats as "
                "remote-miss stalls, so MP's win grows with latency and "
                "shrinks toward parity as the network gets faster."
            ),
            axes=(("net_latency", (0, 25, 50, 100, 200)),),
            metrics=("mp_total", "sm_total", "sm_over_mp"),
            base_overrides=_EM3D_SMALL,
            crossovers=(
                CrossoverSpec(
                    name="sm-catches-mp",
                    metric="sm_over_mp",
                    level=1.0,
                    description="latency below which SM would match MP",
                ),
            ),
            checks=_check_em3d_latency,
        ),
        SweepSpec(
            name="em3d-cache",
            exp_id="em3d",
            description=(
                "EM3D-SM data-access share vs cache size: below the "
                "working set the share of time spent in shared/private "
                "misses climbs steeply; MP's locally-allocated graph "
                "halves make it far less cache-sensitive."
            ),
            axes=(("cache_kb", (2, 4, 8, 16)),),
            metrics=("sm_data_access_share", "sm_total", "mp_total"),
            base_overrides=_EM3D_SMALL,
            checks=_check_em3d_cache,
        ),
        SweepSpec(
            name="gauss-speedup",
            exp_id="gauss",
            description=(
                "Gauss cycle totals vs processor count on a fixed n=64 "
                "problem: both versions speed up monotonically, and the "
                "SM version overtakes MP as the MP broadcast of pivot "
                "rows grows with the processor count."
            ),
            axes=(("procs", (1, 2, 4, 8)),),
            metrics=("mp_total", "sm_total", "sm_over_mp"),
            base_overrides={"app": {"n": 64}},
            crossovers=(
                CrossoverSpec(
                    name="sm-overtakes-mp",
                    metric="sm_over_mp",
                    level=1.0,
                    description="procs at which SM becomes faster than MP",
                ),
            ),
            checks=_check_gauss_speedup,
            derive=_derive_speedups,
        ),
        SweepSpec(
            name="em3d-modern",
            exp_id="em3d",
            description=(
                "EM3D across machine generations: the paper's CM-5 "
                "table, a multicore-era table (on-chip network, memory "
                "wall), and a cluster of multicores with two-level "
                "latency. The memory wall makes SM's remote misses "
                "dearer while MP's split-phase sends keep hiding "
                "latency, so MP's 1994 win survives — and grows — on "
                "modern parameters."
            ),
            axes=(("preset", ("paper", "multicore", "cluster")),),
            metrics=("mp_total", "sm_total", "sm_over_mp"),
            base_overrides=_EM3D_MODERN,
            checks=_check_em3d_modern,
        ),
    )
}


def get_sweep(name: str) -> SweepSpec:
    """Look one shipped spec up, with a did-you-mean on typos."""
    try:
        return SWEEP_SPECS[name]
    except KeyError:
        import difflib

        matches = difflib.get_close_matches(name, SWEEP_SPECS, n=1, cutoff=0.4)
        hint = f" (did you mean {matches[0]!r}?)" if matches else ""
        raise ValueError(
            f"unknown sweep {name!r}{hint}; available: "
            + ", ".join(sorted(SWEEP_SPECS))
        ) from None
