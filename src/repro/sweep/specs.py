"""Deprecated shim: the shipped sweeps moved to ``specs/sweeps/*.yaml``.

The Python registrations that used to live here are now YAML data
(loaded by :mod:`repro.specs`, with the callable fields resolved by
name through :mod:`repro.specs.library`). This module keeps the old
import surface alive for one deprecation cycle:

* ``SWEEP_SPECS`` — a dict round-tripped through the YAML loader,
  identity-stable across accesses so tests (and downstream code) can
  still monkeypatch entries into it; the canonical resolver
  :func:`repro.specs.get_sweep` consults it after the YAML search
  path, so injected registrations keep working.
* ``get_sweep`` — delegates to :func:`repro.specs.get_sweep`
  (YAML-first, this registry second).

Both emit :class:`DeprecationWarning` on access. New code should call
``api.load_spec()`` / ``repro.specs.get_sweep`` and add sweeps as YAML
files on the spec search path instead of registering Python objects.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

from repro.sweep.spec import SweepSpec

_DEPRECATION = (
    "repro.sweep.specs is deprecated: the shipped sweeps are YAML specs "
    "under specs/sweeps/ now; use repro.specs.get_sweep / api.load_spec "
    "(new sweeps are YAML files on the spec search path, not Python "
    "registrations)"
)

#: The round-tripped registry. One dict object for the module lifetime
#: (monkeypatch.setitem against SWEEP_SPECS must see the same object
#: the resolver consults), lazily filled from the YAML loader.
_SWEEP_SPECS_CACHE: Optional[Dict[str, SweepSpec]] = None


def _registry() -> Dict[str, SweepSpec]:
    """The shim dict, without the deprecation warning (internal use)."""
    global _SWEEP_SPECS_CACHE
    if _SWEEP_SPECS_CACHE is None:
        from repro.specs import discovered_sweeps

        _SWEEP_SPECS_CACHE = dict(discovered_sweeps())
    return _SWEEP_SPECS_CACHE


def __getattr__(name: str):
    if name == "SWEEP_SPECS":
        warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
        return _registry()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def get_sweep(name: str) -> SweepSpec:
    """Deprecated alias for :func:`repro.specs.get_sweep`."""
    warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
    from repro.specs import get_sweep as _canonical

    return _canonical(name)
