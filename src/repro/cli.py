"""Command-line interface: run the paper's experiments from a shell.

Commands:

* ``python -m repro list`` — every registered experiment and the paper
  tables it regenerates;
* ``python -m repro run <id> [...]`` — run experiments through the
  harness (parallel workers, on-disk result cache), print the
  paper-style tables and the shape checks;
* ``python -m repro run --all --jobs 4 --json out.json`` — the full
  evaluation section, fanned out over 4 worker processes, records
  exported as JSON;
* ``python -m repro bench --json BENCH_kernel.json`` — the kernel
  benchmark suite, with an optional ``--baseline`` regression gate;
* ``python -m repro trace <id> [--out trace.json] [--procs 0-7]
  [--max-events N]`` — re-run one experiment with the timeline tracer
  installed, write Chrome Trace Event JSON (Perfetto-loadable), print
  the ASCII timeline, and attach the trace path to the cached record so
  later invocations re-render without re-simulating;
* ``python -m repro check [--litmus] [--stress N] [--seed S]`` — the
  coherence/consistency litmus suite and the randomized stress
  programs, executed under the invariant checker (``repro.check``);
* ``python -m repro run --check ...`` — run experiments with the
  invariant checker installed (in-process, cache bypassed), proving a
  record was produced by a violation-free simulation;
* ``python -m repro sweep <spec> [--axis k=v1,v2,... --jobs N --json
  PATH --csv PATH --force --resume]`` — a declarative sensitivity
  sweep (``repro.sweep``): grid expansion, cache-aware sharded
  execution, ASCII curve plots, crossover detection, and the spec's
  machine-checked shape assertions;
* ``python -m repro sweep --glob "specs/sweeps/em3d-*.yaml"`` — batch
  run every matching YAML sweep spec (``repro.specs``): sweep names
  resolve YAML-first (the spec search path), deprecated Python
  registrations second;
* ``python -m repro cache ls`` / ``python -m repro cache clear`` —
  inspect (per-record byte sizes, totals, salt freshness) or drop the
  on-disk result cache;
* ``python -m repro lake ingest`` / ``python -m repro lake stats`` —
  backfill the append-only sqlite run lake from the warm cache (also
  fed opt-in by ``run/sweep --lake``), or print its row counts;
* ``python -m repro query [--app --backend --consistency --preset
  --salt --all-salts --metrics --pivot --json --csv]`` — answer
  cross-preset/cross-version cycle-breakdown questions purely from
  lake rows, zero re-simulation; stale-salt rows are hidden unless
  ``--all-salts`` names them explicitly;
* ``python -m repro fidelity [--json PATH]`` — the paper-vs-run
  scorecard;
* ``python -m repro serve [--host --port --jobs --cache-bytes]`` — the
  harness as a long-running HTTP service: ``POST /v1/runs`` and
  ``POST /v1/sweeps`` submissions, content-hash job IDs, request
  coalescing, millisecond warm-cache responses, byte-budget cache
  eviction, and ``GET /healthz`` (see docs/serve.md).

The shared flags (``--jobs/--json/--force/--no-cache``) are defined
once (:func:`flags_parent`) and hoisted into each subcommand, so they
spell and behave identically everywhere.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.experiments import EXPERIMENTS, get_experiment
from repro.runner.api import execute
from repro.runner.cache import ResultCache
from repro.runner.executor import default_jobs
from repro.runner.record import RunRecord

# ---------------------------------------------------------------------------
# Shared flags: one definition each, hoisted into argparse parent parsers
# so `run`, `trace`, `sweep`, and `fidelity` spell them identically.
# ---------------------------------------------------------------------------

_FLAG_DEFS = {
    "jobs": (("--jobs", "-j"), dict(type=int, default=None, metavar="N",
             help="worker processes (default: cpu count)")),
    "json": (("--json",), dict(metavar="PATH",
             help="export results as JSON")),
    "csv": (("--csv",), dict(metavar="PATH",
            help="export results as CSV")),
    "force": (("--force",), dict(action="store_true",
              help="re-simulate even on a cache hit")),
    "no-cache": (("--no-cache",), dict(action="store_true",
                 help="bypass the on-disk result cache entirely")),
    "lake": (("--lake",), dict(action="store_true",
             help="also ingest results into the run lake "
                  "(append-only sqlite; see `repro query`)")),
    "lake-path": (("--lake-path",), dict(metavar="PATH", default=None,
                  help="lake sqlite location (default: "
                       "$REPRO_LAKE_PATH, else lake.sqlite beside "
                       "the result cache)")),
}


def flags_parent(*names: str) -> argparse.ArgumentParser:
    """A parent parser carrying the named shared flags."""
    parent = argparse.ArgumentParser(add_help=False)
    for name in names:
        flags, options = _FLAG_DEFS[name]
        parent.add_argument(*flags, **options)
    return parent


def _print_record(record: RunRecord) -> bool:
    """Print one record the way the paper's tables read; True if all checks pass."""
    spec = get_experiment(record.exp_id)
    print("=" * 72)
    print(f"{spec.title}")
    print(f"(regenerates: {spec.paper_tables})")
    print("=" * 72)
    if record.rendered:
        print(record.rendered)
    print()
    print("shape checks (paper's qualitative results):")
    all_ok = True
    for name, ok, detail in record.checks:
        mark = "PASS" if ok else "FAIL"
        all_ok &= bool(ok)
        print(f"  [{mark}] {name}: {detail}")
    if record.notes:
        print(f"\nnote: {record.notes}")
    source = "cache hit" if record.cached else f"ran in {record.elapsed_seconds:.1f}s"
    print(f"\n({source})\n")
    return all_ok


def cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(exp_id) for exp_id in EXPERIMENTS)
    for exp_id, spec in EXPERIMENTS.items():
        print(f"{exp_id:<{width + 2}}{spec.paper_tables}")
        print(f"{'':<{width + 2}}{spec.description}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    exp_ids: List[str] = list(EXPERIMENTS) if args.all else args.experiments
    if not exp_ids:
        print("nothing to run: name experiments or pass --all", file=sys.stderr)
        return 2
    try:
        for exp_id in exp_ids:
            get_experiment(exp_id)  # fail fast on typos before any long run
    except KeyError as exc:
        print(f"repro run: error: {exc.args[0]}", file=sys.stderr)
        return 2
    if _reject_unknown_consistency(args.consistency, "repro run"):
        return 2
    if args.preset is not None:
        from repro.arch.params import MACHINE_PRESETS

        if args.preset not in MACHINE_PRESETS:
            from repro.runner.config import suggest

            print(
                f"repro run: error: unknown preset {args.preset!r}"
                f"{suggest(args.preset, MACHINE_PRESETS)}; "
                f"known: {sorted(MACHINE_PRESETS)}",
                file=sys.stderr,
            )
            return 2
    # --backend/--consistency/--preset flow through the standard
    # override channel, so cached records stay keyed (and honest) per
    # backend, memory model, and machine table.
    common = {
        key: value
        for key, value in (
            ("backend", args.backend),
            ("consistency", getattr(args, "consistency", None)),
            ("preset", getattr(args, "preset", None)),
        )
        if value
    }
    overrides = {exp_id: dict(common) for exp_id in exp_ids} if common else None
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if args.check:
        # The checker instruments machine instances, so checked runs must
        # execute in this process and cannot reuse cached (unchecked)
        # records.
        jobs = 1
        print(
            "running with the invariant checker installed "
            "(in-process, cache bypassed)",
            file=sys.stderr,
        )

    done = []

    def progress(record: RunRecord) -> None:
        done.append(record)
        source = "cached" if record.cached else f"{record.elapsed_seconds:.1f}s"
        print(
            f"[{len(done)}/{len(exp_ids)}] {record.exp_id} ({source})",
            file=sys.stderr,
            flush=True,
        )

    if args.check:
        from repro import check

        with check.checking() as checker:
            records = execute(
                exp_ids,
                jobs=1,
                use_cache=False,
                force=True,
                progress=progress,
                overrides=overrides,
            )
        totals = checker.report()
        print(
            "invariant checker: zero violations "
            f"({sum(totals.values())} checks: {totals})",
            file=sys.stderr,
        )
    else:
        records = execute(
            exp_ids,
            jobs=jobs,
            use_cache=not args.no_cache,
            force=args.force,
            progress=progress,
            overrides=overrides,
        )

    failed: List[str] = []
    for exp_id, record in records.items():
        if not _print_record(record):
            failed.append(exp_id)

    if args.lake:
        from repro.lake import RunLake

        with RunLake(args.lake_path) as lake:
            added = sum(
                bool(lake.ingest_record(record))
                for record in records.values()
            )
            print(
                f"lake {lake.path}: {added} new of {len(records)} "
                "record(s) ingested",
                file=sys.stderr,
            )

    if args.json:
        payload = [record.to_jsonable() for record in records.values()]
        try:
            Path(args.json).write_text(json.dumps(payload, indent=1, sort_keys=True))
        except OSError as exc:
            print(f"repro run: error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {len(payload)} records to {args.json}", file=sys.stderr)

    if failed:
        print(
            f"shape checks failed: {', '.join(failed)}", file=sys.stderr
        )
        return 1
    return 0


def cmd_fidelity(args: argparse.Namespace) -> int:
    from dataclasses import asdict

    from repro.core.fidelity import assess_all, render_scorecard

    print("running the five pair experiments (cached if already run)...")
    rows = assess_all()
    print()
    print(render_scorecard(rows))
    if args.json:
        payload = [
            dict(asdict(row), abs_error=round(row.abs_error, 3))
            for row in rows
        ]
        try:
            Path(args.json).write_text(json.dumps(payload, indent=1))
        except OSError as exc:
            print(f"repro fidelity: error: cannot write {args.json}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote {len(payload)} fidelity rows to {args.json}",
              file=sys.stderr)
    return 0


def _suffixed_path(path: str, name: str, multi: bool) -> str:
    """Insert the spec name before the extension for multi-spec exports."""
    if not multi:
        return path
    p = Path(path)
    return str(p.with_name(f"{p.stem}-{name}{p.suffix}"))


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import get_sweep

    # One spec by name/path, or a batch via --glob — never both.
    if bool(args.spec) == bool(args.glob):
        print(
            "repro sweep: error: name one spec (or a YAML path) or pass "
            '--glob "specs/sweeps/em3d-*.yaml", not both',
            file=sys.stderr,
        )
        return 2

    specs = []
    if args.glob:
        from repro.specs import SpecError, expand_glob, load_sweep

        paths = expand_glob(args.glob)
        if not paths:
            print(
                f"repro sweep: error: --glob {args.glob!r} matched no "
                "spec files",
                file=sys.stderr,
            )
            return 2
        try:
            specs = [load_sweep(str(path)) for path in paths]
        except SpecError as exc:
            print(f"repro sweep: error: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            specs = [get_sweep(args.spec)]
        except ValueError as exc:
            print(f"repro sweep: error: {exc}", file=sys.stderr)
            return 2

    worst = 0
    for spec in specs:
        code = _run_one_sweep(spec, args, multi=len(specs) > 1)
        worst = max(worst, code)
        if code == 2:
            return 2  # usage errors stop the batch immediately
    return worst


def _run_one_sweep(spec, args: argparse.Namespace, multi: bool = False) -> int:
    from repro.sweep import parse_axis_flag, render_plots, run_sweep

    axes = {}
    try:
        for flag in args.axis or []:
            name, values = parse_axis_flag(flag)
            axes[name] = values
    except ValueError as exc:
        print(f"repro sweep: error: {exc}", file=sys.stderr)
        return 2

    def progress(done, total, point, record, simulated):
        source = f"{record.elapsed_seconds:.1f}s" if simulated else "cached"
        print(f"[{done}/{total}] {spec.exp_id}({point.label()}) ({source})",
              file=sys.stderr, flush=True)

    try:
        result = run_sweep(
            spec,
            axes=axes or None,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            force=args.force,
            resume=args.resume,
            progress=progress,
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro sweep: error: {exc}", file=sys.stderr)
        return 2

    print("=" * 72)
    print(f"sweep {result.spec_name}: {result.exp_id} over "
          + " x ".join(f"{a}={list(v)}" for a, v in result.axes))
    print("=" * 72)
    print(result.render_table())
    print()
    print(render_plots(result))
    if result.crossovers or result.checks:
        print()
    for probe in result.crossovers:
        mark = "x" if probe["crossed"] else "-"
        print(f"  [{mark}] crossover {probe['name']}: {probe['detail']}")
    all_ok = True
    for name, ok, detail in result.checks:
        mark = "PASS" if ok else "FAIL"
        all_ok &= bool(ok)
        print(f"  [{mark}] {name}: {detail}")
    meta = result.meta
    print(f"\n({meta['points']} points: {meta['simulated']} simulated, "
          f"{meta['cached']} cached, {meta['elapsed_seconds']:.1f}s)")

    if args.lake:
        from repro.lake import RunLake

        with RunLake(args.lake_path) as lake:
            added_sweep = lake.ingest_sweep(result)
            added_points = lake.ingest_sweep_cache_records(result)
            print(
                f"lake {lake.path}: sweep "
                f"{'ingested' if added_sweep else 'already present'}, "
                f"{added_points} new point record(s)",
                file=sys.stderr,
            )

    for attr, prog_hint, text in (
        ("json", "JSON", json.dumps(result.to_jsonable(), indent=1,
                                    sort_keys=True)),
        ("csv", "CSV", result.to_csv()),
    ):
        path = getattr(args, attr)
        if not path:
            continue
        path = _suffixed_path(path, result.spec_name, multi)
        try:
            Path(path).write_text(text)
        except OSError as exc:
            print(f"repro sweep: error: cannot write {path}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote sweep {prog_hint} to {path}", file=sys.stderr)

    if not all_ok:
        print("sweep shape checks failed", file=sys.stderr)
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.runner import bench

    print("running kernel benchmarks...", file=sys.stderr, flush=True)
    document = bench.run_benchmarks(
        quick=args.quick, apps=not args.no_apps, backend=args.backend
    )
    rate = document["kernel"]["events_per_sec"]
    print(f"kernel aggregate: {rate} events/sec")

    if args.json:
        try:
            Path(args.json).write_text(json.dumps(document, indent=1, sort_keys=True))
        except OSError as exc:
            print(f"repro bench: error: cannot write {args.json}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote benchmark results to {args.json}", file=sys.stderr)

    if args.baseline:
        baseline = bench.load_baseline(args.baseline)
        if baseline is None:
            print(f"no baseline at {args.baseline}; skipping regression gate")
            return 0
        ok, message = bench.compare(document, baseline, threshold=args.threshold)
        print(message)
        if not ok:
            print("benchmark regression gate FAILED", file=sys.stderr)
            return 1
        print("benchmark regression gate passed")
    return 0


def _parse_procs(text: str) -> List[int]:
    """Parse a processor set: ``0-7``, ``0,2,5-6`` — for ``--procs``."""
    procs: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part:
            lo, hi = part.split("-", 1)
            procs.extend(range(int(lo), int(hi) + 1))
        else:
            procs.append(int(part))
    if not procs:
        raise ValueError(f"empty processor set {text!r}")
    return procs


def cmd_trace(args: argparse.Namespace) -> int:
    from repro import api
    from repro.runner.cache import cache_key
    from repro.runner.record import build_record
    from repro.trace.timeline import render_timeline

    try:
        spec = get_experiment(args.experiment)
    except KeyError as exc:
        print(f"repro trace: error: {exc.args[0]}", file=sys.stderr)
        return 2

    config = api.resolve_config(args.experiment)
    key = cache_key(config)
    cache = ResultCache()

    # A stored trace re-renders without re-simulating, unless the caller
    # asks for a different slice of the run (or --force / --no-cache).
    reusable = (not args.force and not args.no_cache
                and args.procs is None and args.max_events is None)
    if reusable:
        record = cache.load(config)
        if record is not None and record.trace_path:
            path = Path(record.trace_path)
            if path.exists():
                doc = json.loads(path.read_text())
                print(render_timeline(doc))
                if args.out and Path(args.out) != path:
                    Path(args.out).write_text(json.dumps(doc))
                    print(f"\ncopied trace to {args.out}", file=sys.stderr)
                print(f"\ntrace: {path} (cached; --force re-simulates)")
                return 0

    traced = api.trace_for(
        args.experiment, procs=args.procs, max_events=args.max_events
    )
    doc = traced.document
    if traced.errors:
        for error in traced.errors:
            print(f"repro trace: schema error: {error}", file=sys.stderr)
        return 1

    if args.out:
        out_path = Path(args.out)
    else:
        out_path = cache.directory / "traces" / f"{args.experiment}-{key[:16]}.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    try:
        out_path.write_text(json.dumps(doc))
    except OSError as exc:
        print(f"repro trace: error: cannot write {out_path}: {exc}", file=sys.stderr)
        return 2

    print(render_timeline(doc))
    dropped = f", {traced.dropped} dropped" if traced.dropped else ""
    print(
        f"\ntrace: {out_path} "
        f"({len(doc['traceEvents'])} events{dropped}, "
        f"ran in {traced.elapsed_seconds:.1f}s)"
    )

    # Attach the trace to the cached record so the next invocation (and
    # `repro run`) reuse both. Only full traces are worth attaching.
    if reusable:
        record = build_record(
            spec, config, traced.result, traced.elapsed_seconds, key=key
        )
        record.trace_path = str(out_path)
        cache.store(record)
    return 0


def _reject_unknown_consistency(value: Optional[str], prog: str) -> bool:
    """Print a did-you-mean usage error for a bad memory-model name.

    Returns True when the value is unknown (the caller then exits 2:
    a typo must be a usage error, never a silently skipped shape).
    """
    from repro.arch.write_buffer import MEMORY_MODELS

    if value is None or value in MEMORY_MODELS:
        return False
    from repro.runner.config import suggest

    print(
        f"{prog}: error: unknown consistency {value!r}"
        f"{suggest(value, MEMORY_MODELS)}; known: {sorted(MEMORY_MODELS)}",
        file=sys.stderr,
    )
    return True


def cmd_check(args: argparse.Namespace) -> int:
    from repro.check.errors import CheckError
    from repro.check.litmus import LITMUS_TESTS, run_matrix, run_suite
    from repro.check.stress import run_mp_stress, run_sm_stress

    if _reject_unknown_consistency(args.consistency, "repro check"):
        return 2
    consistency = args.consistency or "sc"
    # Default: everything. `--litmus`, `--matrix`, or `--stress N`
    # narrows the run.
    do_matrix = args.matrix
    do_litmus = not do_matrix and (args.litmus or args.stress is None)
    do_stress = not do_matrix and ((args.stress is not None) or not args.litmus)
    ops = args.stress if args.stress is not None else 500
    failures = 0

    if do_matrix:
        seeds = tuple(range(args.seed, args.seed + args.litmus_seeds))
        try:
            rows = run_matrix(seeds=seeds, backend=args.backend)
        except CheckError as exc:
            print(f"  [FAIL] litmus matrix: {exc}")
            failures += 1
        else:
            width = max(len(row["test"]) for row in rows)
            for row in rows:
                seen = (
                    f"relaxed outcome observed {row['relaxed_observed']}x"
                    if row["relaxed_observed"]
                    else "relaxed outcome never observed"
                )
                print(
                    f"  [PASS] {row['model']:<4} {row['test']:<{width}} "
                    f"{row['expected']:<10} {row['runs']:>3} runs, {seen}"
                )
            print(
                f"  litmus matrix: {len(rows)} cells "
                f"({args.backend} backend), every verdict held"
            )

    if do_litmus:
        seeds = tuple(range(args.seed, args.seed + args.litmus_seeds))
        for test in LITMUS_TESTS:
            try:
                observed = run_suite(
                    [test],
                    seeds=seeds,
                    backend=args.backend,
                    consistency=consistency,
                )[test.name]
            except CheckError as exc:
                print(f"  [FAIL] litmus {test.name}: {exc}")
                failures += 1
                continue
            verdict = (
                "relaxed outcome observed (permitted)"
                if consistency in test.permitted_under
                else "forbidden outcome never observed"
            )
            print(
                f"  [PASS] litmus {test.name}: {len(observed)} distinct "
                f"outcome(s) over {sum(observed.values())} runs "
                f"(consistency={consistency}), {verdict}"
            )

    if do_stress:
        try:
            report = run_sm_stress(
                ops=ops,
                seed=args.seed,
                nprocs=args.nprocs,
                backend=args.backend,
                consistency=consistency,
            )
        except CheckError as exc:
            print(f"  [FAIL] sm stress: {exc}")
            failures += 1
        else:
            print(
                f"  [PASS] sm stress: {report['sm_ops']} ops, "
                f"{report['increments']} locked increments, "
                f"{report.get('data-value', 0)} oracle checks, "
                f"{report.get('swmr', 0)} SWMR checks"
            )
        try:
            report = run_mp_stress(
                ops=max(1, ops // 2),
                seed=args.seed,
                nprocs=args.nprocs,
                backend=args.backend,
            )
        except CheckError as exc:
            print(f"  [FAIL] mp stress: {exc}")
            failures += 1
        else:
            print(
                f"  [PASS] mp stress: {report['mp_messages']} sequenced "
                f"messages, {report.get('fifo', 0)} FIFO checks, "
                f"{report.get('conservation', 0)} conservation checks, "
                f"strict quiescence"
            )

    if failures:
        print(f"repro check: {failures} violation(s)", file=sys.stderr)
        return 1
    print("repro check: all invariants held")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache()
    if args.cache_command == "ls":
        lines = cache.ls()
        if not lines:
            print(f"cache empty ({cache.directory})")
        else:
            stats = cache.stats()
            stale = (
                f", {stats['stale_records']} stale-salt"
                if stats["stale_records"]
                else ""
            )
            print(
                f"cache {cache.directory}: {stats['records']} records, "
                f"{stats['bytes']} bytes total{stale}"
            )
            for line in lines:
                print(f"  {line}")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} records from {cache.directory}")
        return 0
    print("unknown cache command", file=sys.stderr)
    return 2


def cmd_lake(args: argparse.Namespace) -> int:
    from repro.lake import RunLake, default_lake_path

    if args.lake_command == "ingest":
        cache = ResultCache()
        with RunLake(args.lake_path) as lake:
            added, seen = lake.ingest_cache(cache)
            print(
                f"lake {lake.path}: ingested {added} new of {seen} cached "
                f"record(s) from {cache.directory}"
            )
        return 0
    if args.lake_command == "stats":
        path = Path(args.lake_path) if args.lake_path else default_lake_path()
        if not path.exists():
            print(
                f"repro lake: error: no lake at {path} (run with --lake or "
                "`repro lake ingest` first)",
                file=sys.stderr,
            )
            return 1
        with RunLake(path) as lake:
            stats = lake.stats()
        if args.json:
            return _emit_text(
                args.json, json.dumps(stats, indent=1, sort_keys=True),
                "repro lake", "lake stats JSON",
            )
        for key, value in stats.items():
            print(f"{key:>14}: {value}")
        return 0
    print("unknown lake command", file=sys.stderr)
    return 2


def _emit_text(path: str, text: str, prog: str, label: str) -> int:
    """Write an export to a file, or to stdout when the path is '-'."""
    if path == "-":
        print(text)
        return 0
    try:
        Path(path).write_text(text if text.endswith("\n") else text + "\n")
    except OSError as exc:
        print(f"{prog}: error: cannot write {path}: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {label} to {path}", file=sys.stderr)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from repro.lake import (
        QueryFilters,
        RunLake,
        default_lake_path,
        pivot,
        query_runs,
        render_rows,
        rows_to_csv,
    )

    if args.app is not None and args.app not in EXPERIMENTS:
        from repro.runner.config import suggest

        print(
            f"repro query: error: unknown app {args.app!r}"
            f"{suggest(args.app, EXPERIMENTS)}; known: {sorted(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    if _reject_unknown_consistency(args.consistency, "repro query"):
        return 2

    path = Path(args.lake_path) if args.lake_path else default_lake_path()
    if not path.exists():
        print(
            f"repro query: error: no lake at {path} (run with --lake or "
            "`repro lake ingest` first)",
            file=sys.stderr,
        )
        return 1

    metrics = tuple(
        name.strip() for name in (args.metrics or "").split(",") if name.strip()
    )
    filters = QueryFilters(
        app=args.app,
        backend=args.backend,
        consistency=args.consistency,
        preset=args.preset,
        salt=args.salt,
        all_salts=args.all_salts,
        **({"metrics": metrics} if metrics else {}),
    )
    try:
        with RunLake(path) as lake:
            rows = query_runs(lake, filters)
        if args.pivot:
            rows = pivot(rows, args.pivot, filters.metrics[0])
    except ValueError as exc:
        print(f"repro query: error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        return _emit_text(
            args.json, json.dumps(rows, indent=1, sort_keys=True),
            "repro query", f"{len(rows)} query rows as JSON",
        )
    if args.csv:
        return _emit_text(
            args.csv, rows_to_csv(rows), "repro query",
            f"{len(rows)} query rows as CSV",
        )
    print(render_rows(rows))
    print(
        f"\n({len(rows)} row(s) from {path}"
        + ("" if args.all_salts else "; stale-salt rows hidden, "
           "--all-salts shows them")
        + ")"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro import api
    from repro.serve import parse_bytes

    try:
        cache_bytes = parse_bytes(args.cache_bytes)
    except ValueError as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs is not None else 2
    try:
        api.serve(
            host=args.host,
            port=args.port,
            jobs=jobs,
            cache_bytes=cache_bytes,
            store=args.store,
            max_pending=args.max_pending,
            rate_limit=args.rate_limit,
            rate_burst=args.rate_burst,
            retention_seconds=args.job_ttl,
        )
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print(
            f"repro serve: error: cannot bind {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Where is Time Spent in "
                    "Message-Passing and Shared-Memory Programs?' "
                    "(ASPLOS 1994)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list experiments")
    list_parser.set_defaults(handler=cmd_list)

    run_parser = subparsers.add_parser(
        "run", help="run experiments",
        parents=[flags_parent("jobs", "json", "force", "no-cache",
                              "lake", "lake-path")],
    )
    run_parser.add_argument("experiments", nargs="*", metavar="ID",
                            help="experiment ids (see `list`)")
    run_parser.add_argument("--all", action="store_true",
                            help="run the whole evaluation section")
    run_parser.add_argument("--check", action="store_true",
                            help="simulate with the invariant checker "
                                 "installed (forces --jobs 1, no cache)")
    run_parser.add_argument("--backend", choices=("batched", "reference"),
                            default=None,
                            help="execution backend override for every "
                                 "requested experiment (default: each "
                                 "config's own, normally batched)")
    run_parser.add_argument("--consistency", metavar="MODEL", default=None,
                            help="memory-model override for every requested "
                                 "experiment: sc (default, the paper's "
                                 "machine), tso, or pc")
    run_parser.add_argument("--preset", metavar="TABLE", default=None,
                            help="machine-table override for every requested "
                                 "experiment: paper (default), multicore, "
                                 "or cluster")
    run_parser.set_defaults(handler=cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a declarative sensitivity sweep (grid over one or two "
             "axes, cache-aware, with machine-checked curve shapes)",
        parents=[flags_parent("jobs", "json", "csv", "force", "no-cache",
                              "lake", "lake-path")],
    )
    sweep_parser.add_argument("spec", metavar="SPEC", nargs="?",
                              help="sweep spec: a YAML id (em3d-latency, "
                                   "em3d-cache, gauss-speedup, em3d-modern; "
                                   "see specs/sweeps/), a YAML file path, or "
                                   "a name registered in the deprecated "
                                   "Python registry")
    sweep_parser.add_argument("--glob", metavar="PATTERN",
                              help="run every sweep spec file matching a "
                                   "glob, e.g. --glob "
                                   '"specs/sweeps/em3d-*.yaml"; --json/--csv '
                                   "paths get the spec name suffixed")
    sweep_parser.add_argument("--axis", action="append", metavar="K=V1,V2,...",
                              help="replace (or add) an axis value list, "
                                   "e.g. --axis net_latency=0,50,100; "
                                   "repeatable")
    sweep_parser.add_argument("--resume", action="store_true",
                              help="pick the spec's most recent manifest "
                                   "back up (reuses its axes)")
    sweep_parser.set_defaults(handler=cmd_sweep)

    bench_parser = subparsers.add_parser(
        "bench", help="kernel/microbenchmark suite with regression gate"
    )
    bench_parser.add_argument("--json", metavar="PATH",
                              help="write results (BENCH_kernel.json format)")
    bench_parser.add_argument("--baseline", metavar="PATH",
                              help="compare against a committed baseline; "
                                   "missing file skips the gate")
    bench_parser.add_argument("--threshold", type=float, default=0.75,
                              metavar="RATIO",
                              help="fail below RATIO x baseline events/sec "
                                   "(default: 0.75)")
    bench_parser.add_argument("--quick", action="store_true",
                              help="smaller iteration counts (CI smoke)")
    bench_parser.add_argument("--no-apps", action="store_true",
                              help="skip the end-to-end app timings")
    bench_parser.add_argument("--backend", choices=("batched", "reference"),
                              default="batched",
                              help="execution backend for the app timings "
                                   "(default: batched)")
    bench_parser.set_defaults(handler=cmd_bench)

    trace_parser = subparsers.add_parser(
        "trace",
        help="run one experiment with the timeline tracer; "
             "emit Chrome Trace JSON + ASCII timeline",
        parents=[flags_parent("force", "no-cache")],
    )
    trace_parser.add_argument("experiment", metavar="ID",
                              help="experiment id (see `list`)")
    trace_parser.add_argument("--out", metavar="PATH",
                              help="trace JSON destination (default: "
                                   "<cache-dir>/traces/<id>-<key>.json)")
    trace_parser.add_argument("--procs", type=_parse_procs, default=None,
                              metavar="SET",
                              help="restrict per-processor records, "
                                   "e.g. 0-7 or 0,2,5-6 (default: all)")
    trace_parser.add_argument("--max-events", type=int, default=None,
                              metavar="N",
                              help="cap on stored trace records "
                                   "(default: 250000)")
    trace_parser.set_defaults(handler=cmd_trace)

    check_parser = subparsers.add_parser(
        "check",
        help="coherence/consistency litmus suite + randomized stress "
             "under the invariant checker",
    )
    check_parser.add_argument("--litmus", action="store_true",
                              help="run only the litmus suite")
    check_parser.add_argument("--stress", type=int, default=None,
                              metavar="N",
                              help="run only the stress programs, with N "
                                   "shared-memory operations (default when "
                                   "neither flag is given: both, N=500)")
    check_parser.add_argument("--seed", type=int, default=0, metavar="S",
                              help="base seed for schedules and jitter "
                                   "(default: 0)")
    check_parser.add_argument("--nprocs", type=int, default=4, metavar="P",
                              help="simulated processors for stress runs "
                                   "(default: 4, must be even)")
    check_parser.add_argument("--litmus-seeds", type=int, default=6,
                              metavar="K",
                              help="jitter seeds per litmus shape "
                                   "(default: 6)")
    check_parser.add_argument("--consistency", metavar="MODEL", default=None,
                              help="memory model for litmus/SM-stress runs: "
                                   "sc (default), tso, or pc; unknown names "
                                   "are a usage error, never a skip")
    check_parser.add_argument("--matrix", action="store_true",
                              help="run the full model x shape litmus "
                                   "verdict matrix (every model, both "
                                   "verdict directions)")
    check_parser.add_argument("--backend", choices=("batched", "reference"),
                              default="batched",
                              help="execution backend for litmus/stress "
                                   "machines (default: batched)")
    check_parser.set_defaults(handler=cmd_check)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    cache_parser.add_argument("cache_command", choices=["ls", "clear"],
                              help="ls: list records; clear: delete them")
    cache_parser.set_defaults(handler=cmd_cache)

    lake_parser = subparsers.add_parser(
        "lake",
        help="the run lake: backfill-ingest cached records into the "
             "append-only sqlite store, or print its stats",
        parents=[flags_parent("json", "lake-path")],
    )
    lake_parser.add_argument("lake_command", choices=["ingest", "stats"],
                             help="ingest: backfill every cached record; "
                                  "stats: row counts and freshness")
    lake_parser.set_defaults(handler=cmd_lake)

    query_parser = subparsers.add_parser(
        "query",
        help="query the run lake: filter runs by app/backend/consistency/"
             "preset/salt, project cycle-breakdown metric columns, pivot "
             "for cross-preset or cross-version comparison — zero "
             "re-simulation ('-' as a --json/--csv path prints to stdout)",
        parents=[flags_parent("json", "csv", "lake-path")],
    )
    query_parser.add_argument("--app", metavar="ID", default=None,
                              help="filter to one experiment id (see `list`)")
    query_parser.add_argument("--backend", choices=("batched", "reference"),
                              default=None, help="filter by execution backend")
    query_parser.add_argument("--consistency", metavar="MODEL", default=None,
                              help="filter by memory model: sc, tso, or pc")
    query_parser.add_argument("--preset", metavar="TABLE", default=None,
                              help="filter by machine preset (paper, "
                                   "multicore, cluster; lake rows may also "
                                   "carry 'custom' for perturbed machines)")
    query_parser.add_argument("--salt", metavar="SALT", default=None,
                              help="filter by the code-salt provenance "
                                   "column (implies cross-version intent; "
                                   "combine with --all-salts)")
    query_parser.add_argument("--all-salts", action="store_true",
                              help="include stale-salt rows (hidden by "
                                   "default so versions never mix silently)")
    query_parser.add_argument("--metrics", metavar="M1,M2,...", default=None,
                              help="metric columns (default: "
                                   "mp_total,sm_total,sm_over_mp); any "
                                   "registry metric or ingested breakdown "
                                   "component (mp_computation, "
                                   "sm_data_access, ...)")
    query_parser.add_argument("--pivot", metavar="COLUMN", default=None,
                              help="spread the first metric across one "
                                   "column's values (preset, salt, backend, "
                                   "consistency, procs), one row per app")
    query_parser.set_defaults(handler=cmd_query)

    serve_parser = subparsers.add_parser(
        "serve",
        help="long-running HTTP service over the harness: POST runs and "
             "sweeps, poll content-hash job IDs, warm requests served "
             "from the result cache in milliseconds",
    )
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8737,
                              help="bind port (default: 8737; 0 picks an "
                                   "ephemeral port)")
    serve_parser.add_argument("--jobs", "-j", type=int, default=None,
                              metavar="N",
                              help="simulation worker threads, each "
                                   "driving one spawned worker process "
                                   "(default: 2)")
    serve_parser.add_argument("--cache-bytes", metavar="BYTES", default=None,
                              help="byte budget for .repro_cache/ — LRU "
                                   "eviction, stale-salt records first; "
                                   "accepts suffixes (64M, 1G); default: "
                                   "unbounded")
    serve_parser.add_argument("--store", choices=["local", "shared"],
                              default="local",
                              help="result-store backend: 'local' (one "
                                   "server owns the cache directory) or "
                                   "'shared' (N replicas on one "
                                   "filesystem; cross-replica claims give "
                                   "one simulation fleet-wide per key)")
    serve_parser.add_argument("--max-pending", type=int, default=64,
                              metavar="N",
                              help="cold jobs allowed to wait for a "
                                   "worker before submissions get 429 + "
                                   "Retry-After (default: 64)")
    serve_parser.add_argument("--rate-limit", type=float, default=None,
                              metavar="R",
                              help="per-client submission rate limit in "
                                   "requests/second (token bucket; "
                                   "default: off)")
    serve_parser.add_argument("--rate-burst", type=float, default=None,
                              metavar="B",
                              help="token-bucket burst size for "
                                   "--rate-limit (default: R)")
    serve_parser.add_argument("--job-ttl", type=float, default=3600.0,
                              metavar="S",
                              help="seconds a finished job stays pollable "
                                   "before the registry prunes it "
                                   "(default: 3600; in-flight jobs are "
                                   "never pruned)")
    serve_parser.set_defaults(handler=cmd_serve)

    fidelity_parser = subparsers.add_parser(
        "fidelity",
        help="scorecard: category shares, paper vs. the scaled runs",
        parents=[flags_parent("json")],
    )
    fidelity_parser.set_defaults(handler=cmd_fidelity)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
