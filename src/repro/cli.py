"""Command-line interface: run the paper's experiments from a shell.

Commands:

* ``python -m repro list`` — every registered experiment and the paper
  tables it regenerates;
* ``python -m repro run <id> [...]`` — run experiments, print the
  paper-style tables and the shape checks;
* ``python -m repro run --all`` — the full evaluation section.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, List

from repro.core.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.core.study import PairResult
from repro.core.tables import render_pair


def _print_result(exp_id: str, result: Any) -> None:
    spec = get_experiment(exp_id)
    print("=" * 72)
    print(f"{spec.title}")
    print(f"(regenerates: {spec.paper_tables})")
    print("=" * 72)
    if isinstance(result, PairResult):
        print(render_pair(result, phases=bool(result.phases)))
    elif isinstance(result, dict):
        for key, value in result.items():
            if hasattr(value, "board"):
                continue  # raw machine results; the checks summarize them
            print(f"  {key}: {value}")
    print()
    print("shape checks (paper's qualitative results):")
    all_ok = True
    for name, ok, detail in spec.shape(result):
        mark = "PASS" if ok else "FAIL"
        all_ok &= ok
        print(f"  [{mark}] {name}: {detail}")
    if spec.notes:
        print(f"\nnote: {spec.notes}")
    print()
    if not all_ok:
        raise SystemExit(f"experiment {exp_id} failed its shape checks")


def cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(exp_id) for exp_id in EXPERIMENTS)
    for exp_id, spec in EXPERIMENTS.items():
        print(f"{exp_id:<{width + 2}}{spec.paper_tables}")
        print(f"{'':<{width + 2}}{spec.description}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    exp_ids: List[str] = list(EXPERIMENTS) if args.all else args.experiments
    if not exp_ids:
        print("nothing to run: name experiments or pass --all", file=sys.stderr)
        return 2
    for exp_id in exp_ids:
        get_experiment(exp_id)  # fail fast on typos before any long run
    for exp_id in exp_ids:
        start = time.time()
        result = run_experiment(exp_id)
        elapsed = time.time() - start
        _print_result(exp_id, result)
        print(f"(ran in {elapsed:.1f}s wall time)\n")
    return 0


def cmd_fidelity(_args: argparse.Namespace) -> int:
    from repro.core.fidelity import assess_all, render_scorecard

    print("running the five pair experiments (memoized if already run)...")
    rows = assess_all()
    print()
    print(render_scorecard(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Where is Time Spent in "
                    "Message-Passing and Shared-Memory Programs?' "
                    "(ASPLOS 1994)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list experiments")
    list_parser.set_defaults(handler=cmd_list)

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument("experiments", nargs="*", metavar="ID",
                            help="experiment ids (see `list`)")
    run_parser.add_argument("--all", action="store_true",
                            help="run the whole evaluation section")
    run_parser.set_defaults(handler=cmd_run)

    fidelity_parser = subparsers.add_parser(
        "fidelity",
        help="scorecard: category shares, paper vs. the scaled runs",
    )
    fidelity_parser.set_defaults(handler=cmd_fidelity)
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
