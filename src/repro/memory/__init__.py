"""Simulated memory regions backed by real numpy arrays.

Applications in this reproduction compute on real data. A
:class:`Region` couples a numpy array with a simulated address range so
that every access both (a) produces/consumes real values and (b) drives
the cache, TLB, and coherence-protocol simulation at cache-block
granularity.
"""

from repro.memory.dataspace import DataSpace, HomePolicy, Region, Segment

__all__ = ["DataSpace", "HomePolicy", "Region", "Segment"]
