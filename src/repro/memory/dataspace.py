"""Region allocation, address layout, and home-node placement policies.

The shared-memory machine's ``gmalloc`` allocates from the shared
segment with **round-robin** placement across processors (the paper's
default); the EM3D ablation of paper Table 17 switches to **local**
placement. Round-robin is modeled at cache-block granularity: block *k*
of a region is homed on node ``k mod P``, which reproduces the paper's
observation that with 32 processors roughly 97% of a processor's misses
to its "own" data are remote.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.arch.address import AddressRange, align_up


class Segment(enum.Enum):
    """Which address segment a region lives in."""

    PRIVATE = "private"
    SHARED = "shared"


class HomePolicy(enum.Enum):
    """How a shared region's blocks map to home nodes."""

    LOCAL = "local"  # every block homed on the owning node
    ROUND_ROBIN = "round_robin"  # block k homed on node k mod P


class Region:
    """A named, contiguous simulated allocation with numpy backing.

    ``protocol`` selects the coherence mechanism for shared regions:
    ``"dir"`` (default) is the Dir_nNB invalidation protocol; ``"update"``
    is the user-level bulk-update protocol of the paper's Section 5.3.4
    discussion (Falsafi et al.): a single producer per element writes
    locally and pushes bulk updates to subscribed consumers.
    """

    def __init__(
        self,
        name: str,
        base: int,
        array: np.ndarray,
        segment: Segment,
        owner: int,
        policy: HomePolicy,
        num_nodes: int,
        block_bytes: int,
        protocol: str = "dir",
    ) -> None:
        if protocol not in ("dir", "update"):
            raise ValueError(f"unknown protocol {protocol!r}")
        self.name = name
        self.base = base
        self.np = array
        # Cached flat view: the access hot paths slice/index the region
        # element-wise far more often than they see its declared shape.
        self.flat = array.reshape(-1)
        self.segment = segment
        self.owner = owner
        self.policy = policy
        self.num_nodes = num_nodes
        self.block_bytes = block_bytes
        self.itemsize = array.itemsize
        self.protocol = protocol

    @property
    def nbytes(self) -> int:
        return self.np.size * self.itemsize

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    def addr_of(self, index: int) -> int:
        """Byte address of element ``index`` (flat indexing)."""
        if index < 0 or index >= self.np.size:
            raise IndexError(f"{self.name}[{index}] out of range")
        return self.base + index * self.itemsize

    def range_of(self, lo: int = 0, hi: Optional[int] = None) -> AddressRange:
        """Byte range covering flat elements ``[lo, hi)``."""
        if hi is None:
            hi = self.np.size
        if lo < 0 or hi > self.np.size or lo > hi:
            raise IndexError(f"{self.name}[{lo}:{hi}] out of range")
        return AddressRange(self.base + lo * self.itemsize, (hi - lo) * self.itemsize)

    def block_addrs_of_indices(self, indices: Sequence[int]) -> np.ndarray:
        """Unique, sorted block addresses touched by the given elements."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return np.empty(0, dtype=np.int64)
        addrs = self.base + idx * self.itemsize
        blocks = addrs - (addrs % self.block_bytes)
        return np.unique(blocks)

    def home_of_block(self, block_addr: int) -> int:
        """Home node of the block at ``block_addr``."""
        if block_addr < self.base - (self.base % self.block_bytes) or (
            block_addr >= self.end
        ):
            raise ValueError(f"block {block_addr:#x} not in region {self.name}")
        if self.policy is HomePolicy.LOCAL:
            return self.owner
        block_index = (block_addr - self.base) // self.block_bytes
        return block_index % self.num_nodes

    def __repr__(self) -> str:
        return (
            f"Region({self.name!r}, base={self.base:#x}, nbytes={self.nbytes}, "
            f"{self.segment.value}, owner={self.owner}, {self.policy.value})"
        )


class DataSpace:
    """Bump allocator for the simulated address space of one machine.

    Each node's private allocations and the shared segment share one
    address space; regions never overlap and are block-aligned so that
    home-node interleaving is clean.
    """

    #: Address stride separating each node's private segment (and the
    #: shared segment) so regions can never collide.
    SEGMENT_STRIDE = 1 << 40

    def __init__(self, num_nodes: int, block_bytes: int) -> None:
        self.num_nodes = num_nodes
        self.block_bytes = block_bytes
        # Cursor per private segment (index = node) plus the shared
        # segment (index = num_nodes).
        self._cursors: Dict[int, int] = {
            i: (i + 1) * self.SEGMENT_STRIDE for i in range(num_nodes + 1)
        }
        self.regions: Dict[str, Region] = {}

    def _alloc_bytes(self, segment_index: int, nbytes: int) -> int:
        base = align_up(self._cursors[segment_index], self.block_bytes)
        self._cursors[segment_index] = base + nbytes
        return base

    def alloc_private(
        self,
        name: str,
        owner: int,
        shape: Union[int, tuple],
        dtype: Union[str, np.dtype] = np.float64,
        fill: float = 0.0,
    ) -> Region:
        """Allocate a node-private region (always homed on its owner)."""
        return self._alloc(name, owner, shape, dtype, Segment.PRIVATE, HomePolicy.LOCAL, fill)

    def alloc_shared(
        self,
        name: str,
        owner: int,
        shape: Union[int, tuple],
        dtype: Union[str, np.dtype] = np.float64,
        policy: HomePolicy = HomePolicy.ROUND_ROBIN,
        fill: float = 0.0,
        protocol: str = "dir",
    ) -> Region:
        """Allocate from the shared segment (the parmacs ``gmalloc``)."""
        return self._alloc(
            name, owner, shape, dtype, Segment.SHARED, policy, fill, protocol
        )

    def _alloc(
        self,
        name: str,
        owner: int,
        shape: Union[int, tuple],
        dtype: Union[str, np.dtype],
        segment: Segment,
        policy: HomePolicy,
        fill: float,
        protocol: str = "dir",
    ) -> Region:
        if name in self.regions:
            raise ValueError(f"region name {name!r} already allocated")
        if not 0 <= owner < self.num_nodes:
            raise ValueError(f"owner {owner} out of range")
        array = np.full(shape, fill, dtype=dtype)
        segment_index = self.num_nodes if segment is Segment.SHARED else owner
        base = self._alloc_bytes(segment_index, array.size * array.itemsize)
        region = Region(
            name=name,
            base=base,
            array=array,
            segment=segment,
            owner=owner,
            policy=policy,
            num_nodes=self.num_nodes,
            block_bytes=self.block_bytes,
            protocol=protocol,
        )
        self.regions[name] = region
        return region

    def region_at(self, addr: int) -> Optional[Region]:
        """Region containing byte address ``addr`` (linear scan; test aid)."""
        for region in self.regions.values():
            if region.base <= addr < region.end:
                return region
        return None
