"""Assembly of the simulated message-passing machine.

Builds the per-node hardware (cache, TLB, network interface), attaches
the software stack (active messages, CMMD, collectives), runs one
program generator per processor, and returns per-processor statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.arch.barrier import HardwareBarrier
from repro.arch.cache import Cache
from repro.arch.costs import CostModel
from repro.arch.params import MachineParams
from repro.arch.tlb import Tlb
from repro.memory.dataspace import DataSpace
from repro.mp.active_messages import AmLayer
from repro.mp.api import MpContext
from repro.mp.batched import BatchedMpContext
from repro.mp.cmmd import CmmdLib
from repro.mp.collectives import CollectiveGroup
from repro.mp.netiface import NetworkInterface, Packet
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.stats.categories import MpCat
from repro.stats.collector import ProcStats, StatsBoard
from repro import check, trace

#: Attribution remaps: in library code, computation is Lib Comp and
#: local misses are Lib Misses (the paper's MP communication breakdown).
MP_REMAPS = {
    "lib": {
        MpCat.COMPUTE: MpCat.LIB_COMPUTE,
        MpCat.LOCAL_MISS: MpCat.LIB_MISS,
    }
}


class DeadlockError(RuntimeError):
    """The event queue drained while some program had not finished."""


class MpNode:
    """One processor node: cache, TLB, network interface, statistics."""

    def __init__(self, machine: "MpMachine", pid: int) -> None:
        common = machine.params.common
        self.pid = pid
        self.cache = Cache(
            common.cache_bytes,
            common.cache_assoc,
            common.block_bytes,
            machine.rngs.stream(f"mp.cache.{pid}"),
            name=f"mp.cache{pid}",
        )
        self.tlb = Tlb(common.tlb_entries, common.page_bytes)
        self.ni = NetworkInterface(pid)
        self.stats = ProcStats(pid, remaps=MP_REMAPS)


@dataclass
class MpRunResult:
    """Outcome of one message-passing machine run."""

    board: StatsBoard
    elapsed_cycles: int
    outputs: List[Any]
    machine: "MpMachine"


class MpMachine:
    """The CM-5-like message-passing machine."""

    def __init__(
        self,
        params: Optional[MachineParams] = None,
        seed: int = 1994,
        costs: Optional[CostModel] = None,
        collective_strategy: str = "lopsided",
        backend: str = "batched",
    ) -> None:
        if backend not in ("reference", "batched"):
            raise ValueError(
                f"unknown backend {backend!r}; use 'reference' or 'batched'"
            )
        self.backend = backend
        self.params = params or MachineParams.paper()
        self.costs = costs or CostModel()
        self.engine = Engine()
        self.rngs = RngStreams(seed)
        self.nprocs = self.params.common.num_processors
        self.space = DataSpace(self.nprocs, self.params.common.block_bytes)
        self.barrier = HardwareBarrier(
            self.engine, self.nprocs, self.params.common.barrier_latency
        )
        self.nodes = [MpNode(self, pid) for pid in range(self.nprocs)]
        context_cls = BatchedMpContext if backend == "batched" else MpContext
        self.contexts = [context_cls(self, pid) for pid in range(self.nprocs)]
        for ctx in self.contexts:
            ctx.am = AmLayer(ctx)
            ctx.cmmd = CmmdLib(ctx)
            ctx.coll = CollectiveGroup(ctx, strategy=collective_strategy)
        self._finish_times: Dict[int, int] = {}
        self._interrupt_servicers: Dict[int, Process] = {}
        # No-ops unless a tracer/checker is installed (repro.trace/check).
        trace.active().attach_mp(self)
        check.active().attach_mp(self)

    def ensure_interrupt_servicer(self, pid: int) -> None:
        """Start the node's interrupt-service process (idempotent)."""
        if pid not in self._interrupt_servicers:
            self._interrupt_servicers[pid] = Process(
                self.engine,
                self.contexts[pid]._interrupt_service(),
                name=f"mp.isr{pid}",
            )

    def deliver(self, packet: Packet) -> None:
        """Network delivery: the packet lands after the network latency."""
        if not 0 <= packet.dest < self.nprocs:
            raise ValueError(f"bad destination {packet.dest}")
        latency = self.params.common.message_latency(packet.src, packet.dest)
        # Bare continuation: deliveries are never cancelled, so the
        # handle-free path keeps the same (time, seq) ordering without
        # allocating a ScheduledAction.
        ni = self.nodes[packet.dest].ni
        self.engine._schedule_step(latency, lambda: ni.enqueue(packet))

    def _wrap(self, program: Callable[..., Generator], ctx: MpContext, args: tuple) -> Generator:
        result = yield from program(ctx, *args)
        self._finish_times[ctx.pid] = self.engine.now
        return result

    def run(self, program: Callable[..., Generator], *args: Any) -> MpRunResult:
        """Run ``program(ctx, *args)`` on every processor to completion."""
        processes = [
            Process(self.engine, self._wrap(program, ctx, args), name=f"mp.p{ctx.pid}")
            for ctx in self.contexts
        ]
        self.engine.run()
        unfinished = [p.name for p in processes if not p.finished]
        if unfinished:
            raise DeadlockError(
                f"programs never finished: {unfinished} "
                f"(likely waiting for a message that was never sent)"
            )
        elapsed = max(self._finish_times.values()) if self._finish_times else 0
        return MpRunResult(
            board=StatsBoard([node.stats for node in self.nodes]),
            elapsed_cycles=elapsed,
            outputs=[p.result() for p in processes],
            machine=self,
        )
