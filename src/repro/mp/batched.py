"""Batched execution backend for the message-passing context.

:class:`BatchedMpContext` mirrors the shared-memory batched context for
the simpler all-local memory model: an access whose pages are all
TLB-resident and whose blocks are all cache-resident stalls zero cycles
in the reference semantics (writes may silently upgrade SHARED lines to
EXCLUSIVE), so it is executed as one batched step — a counter-neutral
probe over the run, then a bulk commit of the exact hit counts. Any
miss falls back to the inherited reference path with nothing committed.
Clean verdicts are memoized against the TLB/cache version stamps, just
as on the shared-memory side. See :mod:`repro.sm.batched` for the full
bit-identity and memoization argument.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

import numpy as np

from repro.arch.cache import LineState
from repro.memory.dataspace import Region
from repro.mp.api import MpContext
from repro.sim.batch import (
    BatchScript,
    is_instrumented,
    reject_unknown_kwargs,
    run_batch_reference,
)
from repro.sim.process import delay_of
from repro.stats.categories import MpCat

_EXCLUSIVE = LineState.EXCLUSIVE


class BatchedMpContext(MpContext):
    """Message-passing context with batched zero-stall fast paths."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Scalar-op verdict memo: (region, start, stop, write) ->
        # [tlb_version, cache_version, npages, nblocks].
        self._range_memo: dict = {}

    def _fast_range(self, region: Region, start: int, stop: int, write: bool):
        """Attempt [start, stop) as one batched step.

        Returns ``(npages, nblocks)`` on a clean (memoizable) success,
        ``False`` on a success whose SHARED→EXCLUSIVE upgrades bumped the
        cache version (committed, not memoizable), or ``None`` on failure
        with nothing committed. Success means the scalar ``_touch_range``
        would have returned stall 0: all pages resident, all blocks
        resident. Writes to non-EXCLUSIVE lines upgrade in place (free on
        this machine, exactly as the scalar loop does).
        """
        if stop <= start:
            return (0, 0)  # touches no pages and no blocks on either path
        if start < 0 or stop > region.flat.size:
            return None  # reference path raises the proper IndexError
        itemsize = region.itemsize
        base = region.base + start * itemsize
        last = region.base + stop * itemsize - 1
        common = self.params.common
        tlb = self.tlb
        fifo = tlb._fifo
        page_bytes = common.page_bytes
        first_page = base - base % page_bytes
        last_page = last - last % page_bytes
        if first_page == last_page:
            if first_page not in fifo:
                return None
            npages = 1
        else:
            npages = (last_page - first_page) // page_bytes + 1
            for page in range(first_page, last_page + 1, page_bytes):
                if page not in fifo:
                    return None
        block_bytes = common.block_bytes
        first_block = base - base % block_bytes
        last_block = last - last % block_bytes
        nblocks = (last_block - first_block) // block_bytes + 1
        cache = self.cache
        get = cache._lines.get
        fixups = None
        if write:
            for block in range(first_block, last_block + 1, block_bytes):
                state = get(block)
                if state is None:
                    return None
                if state is not _EXCLUSIVE:
                    if fixups is None:
                        fixups = [block]
                    else:
                        fixups.append(block)
        else:
            for block in range(first_block, last_block + 1, block_bytes):
                if get(block) is None:
                    return None
        tlb.hits += npages
        cache.hits += nblocks
        if fixups is not None:
            set_state = cache.set_state
            for block in fixups:
                set_state(block, _EXCLUSIVE)
            return False
        return (npages, nblocks)

    def _fast_blocks(self, blocks):
        """Gather twin of :meth:`_fast_range`: TLB probed once per block.

        Returns the committed hit count ``n >= 0`` on success (always
        clean — gathers never change line states here), ``None`` on
        failure.
        """
        tlb = self.tlb
        fifo = tlb._fifo
        mask = tlb._page_mask
        page_bytes = tlb.page_bytes
        get = self.cache._lines.get
        n = 0
        for block in blocks:
            block = int(block)
            page = block & mask if mask is not None else block - (block % page_bytes)
            if page not in fifo:
                return None
            if get(block) is None:
                return None
            n += 1
        tlb.hits += n
        self.cache.hits += n
        return n

    # -- scalar ops with batched fast paths ---------------------------------

    def read(
        self, region: Region, start: int = 0, stop: Optional[int] = None, **kwargs
    ) -> Generator:
        if kwargs:
            reject_unknown_kwargs("read", kwargs, ("start", "stop"))
        if stop is None:
            stop = region.flat.size
        tlb = self.tlb
        cache = self.cache
        key = (region, start, stop, False)
        memo = self._range_memo.get(key)
        if memo is not None and memo[0] == tlb.version and memo[1] == cache.version:
            tlb.hits += memo[2]
            cache.hits += memo[3]
            return region.flat[start:stop]
        r = self._fast_range(region, start, stop, False)
        if r is not None:
            if r is not False:
                self._range_memo[key] = [tlb.version, cache.version, r[0], r[1]]
            return region.flat[start:stop]
        return (yield from MpContext.read(self, region, start, stop))

    def write(
        self,
        region: Region,
        start: int = 0,
        stop: Optional[int] = None,
        *,
        values: Optional[Sequence] = None,
        **kwargs,
    ) -> Generator:
        if kwargs:
            reject_unknown_kwargs("write", kwargs, ("start", "stop", "values"))
        if values is not None:
            values = np.asarray(values)
            stop = start + values.size
        if stop is None:
            raise ValueError("write needs values or stop")
        tlb = self.tlb
        cache = self.cache
        key = (region, start, stop, True)
        memo = self._range_memo.get(key)
        if memo is not None and memo[0] == tlb.version and memo[1] == cache.version:
            tlb.hits += memo[2]
            cache.hits += memo[3]
            if values is not None:
                region.flat[start:stop] = values.reshape(-1)
            return
        r = self._fast_range(region, start, stop, True)
        if r is not None:
            if r is not False:
                self._range_memo[key] = [tlb.version, cache.version, r[0], r[1]]
            if values is not None:
                region.flat[start:stop] = values.reshape(-1)
            return
        yield from MpContext.write(self, region, start, stop, values=values)

    def read_gather(self, region: Region, indices: Sequence[int]) -> Generator:
        if self._fast_blocks(region.block_addrs_of_indices(indices)) is not None:
            return region.flat[np.asarray(indices, dtype=np.int64)]
        return (yield from MpContext.read_gather(self, region, indices))

    # -- batch executor ------------------------------------------------------

    def run_batch(self, script: BatchScript) -> Generator:
        """Execute a whole script in one frame (see module docstring)."""
        if is_instrumented(self):
            return (yield from run_batch_reference(self, script))
        ops = script.ops
        memos = script.memos
        if memos is None:
            memos = script.memos = [None] * len(ops)
        results = []
        append = results.append
        stats = self.stats
        engine = self.engine
        tlb = self.tlb
        cache = self.cache
        for i, op in enumerate(ops):
            kind = op[0]
            if kind == "read":
                m = memos[i]
                if m is not None and m[0] == tlb.version and m[1] == cache.version:
                    tlb.hits += m[2]
                    cache.hits += m[3]
                    append(op[1].flat[m[4]:m[5]])
                    continue
                region, start, stop = op[1], op[2], op[3]
                if stop is None:
                    stop = region.flat.size
                r = self._fast_range(region, start, stop, False)
                if r is not None:
                    if r is not False:
                        memos[i] = [tlb.version, cache.version, r[0], r[1], start, stop]
                    append(region.flat[start:stop])
                else:
                    append((yield from MpContext.read(self, region, start, stop)))
            elif kind == "compute" or kind == "compute_flops":
                cycles = memos[i]
                if cycles is None:
                    cycles = memos[i] = int(
                        round(op[1] if kind == "compute" else self.costs.flops(op[1]))
                    )
                if cycles > 0:
                    stats.charge(MpCat.COMPUTE, cycles)
                    if not engine.consume_inline_delay(cycles):
                        yield delay_of(cycles)
            elif kind == "write":
                region, start, stop, values = op[1], op[2], op[3], op[4]
                if callable(values):
                    values = values(results)
                if values is not None:
                    values = np.asarray(values)
                    stop = start + values.size
                if stop is None:
                    raise ValueError("write needs values or stop")
                m = memos[i]
                if (
                    m is not None
                    and m[0] == tlb.version
                    and m[1] == cache.version
                    and m[4] == start
                    and m[5] == stop
                ):
                    tlb.hits += m[2]
                    cache.hits += m[3]
                    if values is not None:
                        region.flat[start:stop] = values.reshape(-1)
                    continue
                r = self._fast_range(region, start, stop, True)
                if r is not None:
                    if r is not False:
                        memos[i] = [tlb.version, cache.version, r[0], r[1], start, stop]
                    if values is not None:
                        region.flat[start:stop] = values.reshape(-1)
                else:
                    yield from MpContext.write(
                        self, region, start, stop, values=values
                    )
            elif kind == "read_gather":
                region = op[1]
                m = memos[i]
                if m is None:
                    idx = np.asarray(op[2], dtype=np.int64)
                    blocks = region.block_addrs_of_indices(idx)
                    m = memos[i] = [-1, -1, 0, idx, blocks]
                if m[0] == tlb.version and m[1] == cache.version:
                    tlb.hits += m[2]
                    cache.hits += m[2]
                    append(region.flat[m[3]])
                    continue
                r = self._fast_blocks(m[4])
                if r is not None:
                    m[0] = tlb.version
                    m[1] = cache.version
                    m[2] = r
                    append(region.flat[m[3]])
                else:
                    append((yield from MpContext.read_gather(self, region, op[2])))
            else:
                raise ValueError(
                    f"batch op {kind!r} is not supported on the "
                    "message-passing machine"
                )
        return results
