"""The simulated message-passing machine (CM-5-like).

Programs on this machine access a memory-mapped network interface with
20-byte packets (paper Table 2) directly, or through the re-implemented
active-message layer (:mod:`repro.mp.active_messages`), the CMMD-style
channel library (:mod:`repro.mp.cmmd`), and software collective trees
(:mod:`repro.mp.collectives`).
"""

from repro.mp.machine import MpMachine, MpRunResult
from repro.mp.api import MpContext
from repro.mp.netiface import NetworkInterface, Packet

__all__ = ["MpContext", "MpMachine", "MpRunResult", "NetworkInterface", "Packet"]
