"""Software broadcast and reduction trees (paper Section 5.2).

The simulated machines have no broadcast/reduction hardware (the paper
deliberately removed the CM-5's control network to study the cost of
implementing these operations in software). Three strategies are
provided, mirroring the paper's optimization journey in Gauss:

* ``flat`` — the initiator sends to every other processor in turn
  (the paper's very slow first attempt: 119.3M cycles);
* ``binary`` — a binary tree (40.9M cycles);
* ``lopsided`` — the LogP-derived lop-sided tree the paper settles on
  (30.1M cycles): because send/receive overhead exceeds network latency,
  subtree sizes are skewed so every processor finishes at roughly the
  same time.

Value-sized operations ride on single active messages; bulk broadcasts
(pivot rows in Gauss) ride on CMMD channels established lazily along
tree edges, with a small header message announcing each round's length.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.memory.dataspace import Region
from repro.mp.cmmd import RecvChannel, SendChannel
from repro.mp.netiface import Packet

Strategy = str  # "flat" | "binary" | "lopsided"

_VALID_STRATEGIES = ("flat", "binary", "lopsided")


def flat_children(nprocs: int) -> Dict[int, List[int]]:
    """Virtual-rank children map for a flat (star) broadcast."""
    return {0: list(range(1, nprocs))}


def binary_children(nprocs: int) -> Dict[int, List[int]]:
    """Virtual-rank children map for a binary tree."""
    children: Dict[int, List[int]] = {}
    for v in range(nprocs):
        kids = [c for c in (2 * v + 1, 2 * v + 2) if c < nprocs]
        if kids:
            children[v] = kids
    return children


def lopsided_children(nprocs: int, send_gap: int, hop_latency: int) -> Dict[int, List[int]]:
    """LogP-greedy broadcast tree (the paper's lop-sided tree).

    Simulates the schedule: every informed processor can start a new send
    every ``send_gap`` cycles; an uninformed processor becomes informed
    ``hop_latency`` cycles after its parent starts the send. Each new
    rank is assigned to whichever processor can send earliest, which
    skews early subtrees large — the lop-sided shape.
    """
    if nprocs <= 0:
        raise ValueError("nprocs must be positive")
    children: Dict[int, List[int]] = {}
    # Heap of (next possible send time, tiebreak, virtual rank).
    heap: List[Tuple[int, int, int]] = [(0, 0, 0)]
    tiebreak = 1
    for rank in range(1, nprocs):
        send_time, _, sender = heapq.heappop(heap)
        children.setdefault(sender, []).append(rank)
        heapq.heappush(heap, (send_time + send_gap, tiebreak, sender))
        tiebreak += 1
        heapq.heappush(heap, (send_time + hop_latency, tiebreak, rank))
        tiebreak += 1
    return children


class CollectiveGroup:
    """Broadcasts and reductions among all processors of the machine.

    One group is built per processor (they share only the network); tree
    shape and rounds are computed identically everywhere, so no central
    coordination is needed.
    """

    BCAST_HANDLER = "_coll_bcast"
    REDUCE_HANDLER = "_coll_reduce"
    HDR_HANDLER = "_coll_bulk_hdr"

    def __init__(
        self,
        ctx: "repro.mp.api.MpContext",  # noqa: F821
        strategy: Strategy = "lopsided",
    ) -> None:
        if strategy not in _VALID_STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        self.ctx = ctx
        self.strategy = strategy
        self._rounds: Dict[str, int] = {"bcast": 0, "reduce": 0, "bulk": 0}
        # mailboxes: (kind, round) -> value for bcast/hdr, list for reduce
        self._mail: Dict[Tuple[str, int], Any] = {}
        ctx.am.register(self.BCAST_HANDLER, self._on_bcast)
        ctx.am.register(self.REDUCE_HANDLER, self._on_reduce)
        ctx.am.register(self.HDR_HANDLER, self._on_hdr)
        # Bulk-broadcast channel state (see bulk_broadcast).
        self._bulk_buffer: Optional[Region] = None
        self._recv_from: Dict[int, RecvChannel] = {}
        self._send_to: Dict[int, SendChannel] = {}
        self._tree_cache: Dict[int, Dict[int, List[int]]] = {}

    # -- tree geometry ---------------------------------------------------------

    def _virtual_children(self) -> Dict[int, List[int]]:
        nprocs = self.ctx.nprocs
        cached = self._tree_cache.get(-1)
        if cached is not None:
            return cached
        if self.strategy == "flat":
            tree = flat_children(nprocs)
        elif self.strategy == "binary":
            tree = binary_children(nprocs)
        else:
            mp = self.ctx.params.mp
            send_gap = mp.lib_am_send_cycles + mp.send_packet_cycles
            hop_latency = (
                send_gap
                + self.ctx.params.common.network_latency
                + mp.recv_packet_cycles
                + mp.lib_am_handler_cycles
            )
            tree = lopsided_children(nprocs, send_gap, hop_latency)
        self._tree_cache[-1] = tree
        return tree

    def children_of(self, pid: int, root: int) -> List[int]:
        """Actual children of ``pid`` in the tree rooted at ``root``."""
        nprocs = self.ctx.nprocs
        virtual = (pid - root) % nprocs
        kids = self._virtual_children().get(virtual, [])
        return [(root + k) % nprocs for k in kids]

    def parent_of(self, pid: int, root: int) -> Optional[int]:
        """Actual parent of ``pid`` in the tree rooted at ``root``."""
        if pid == root:
            return None
        nprocs = self.ctx.nprocs
        virtual = (pid - root) % nprocs
        for parent, kids in self._virtual_children().items():
            if virtual in kids:
                return (root + parent) % nprocs
        raise RuntimeError(f"virtual rank {virtual} not in tree")

    # -- handlers ---------------------------------------------------------------

    def _on_bcast(self, ctx, packet: Packet) -> Generator:
        round_, value = packet.payload
        self._mail[("bcast", round_)] = value
        return
        yield  # pragma: no cover

    def _on_reduce(self, ctx, packet: Packet) -> Generator:
        round_, value = packet.payload
        self._mail.setdefault(("reduce", round_), []).append(value)
        return
        yield  # pragma: no cover

    def _on_hdr(self, ctx, packet: Packet) -> Generator:
        round_, nelems = packet.payload
        self._mail[("bulk", round_)] = nelems
        return
        yield  # pragma: no cover

    # -- value collectives --------------------------------------------------------

    def broadcast(self, value: Any, root: int) -> Generator:
        """Broadcast a word-sized value from ``root``; returns it everywhere."""
        ctx = self.ctx
        round_ = self._rounds["bcast"]
        self._rounds["bcast"] += 1
        if ctx.pid != root:
            key = ("bcast", round_)
            yield from ctx.poll_wait(lambda: key in self._mail)
            value = self._mail.pop(key)
        for child in self.children_of(ctx.pid, root):
            yield from ctx.am.send(
                child, self.BCAST_HANDLER, round_, value, data_bytes=8
            )
        return value

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        root: int,
        op_cycles: int = 4,
    ) -> Generator:
        """Reduce with ``op`` toward ``root``; returns the result at root
        (None elsewhere)."""
        ctx = self.ctx
        round_ = self._rounds["reduce"]
        self._rounds["reduce"] += 1
        children = self.children_of(ctx.pid, root)
        if children:
            key = ("reduce", round_)
            yield from ctx.poll_wait(
                lambda: len(self._mail.get(key, [])) >= len(children)
            )
            for contribution in self._mail.pop(key):
                value = op(value, contribution)
            yield from ctx.compute(op_cycles * len(children))
        if ctx.pid == root:
            return value
        parent = self.parent_of(ctx.pid, root)
        yield from ctx.am.send(
            parent, self.REDUCE_HANDLER, round_, value, data_bytes=8
        )
        return None

    def allreduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        op_cycles: int = 4,
    ) -> Generator:
        """Reduce to processor 0, then broadcast the result to everyone."""
        reduced = yield from self.reduce(value, op, root=0, op_cycles=op_cycles)
        result = yield from self.broadcast(reduced, root=0)
        return result

    # -- bulk broadcast --------------------------------------------------------------

    def setup_bulk(self, max_elems: int, dtype=np.float64) -> None:
        """Allocate the staging buffer bulk broadcasts land in."""
        self._bulk_buffer = self.ctx.alloc("coll_bulk_buffer", max_elems, dtype=dtype)

    @property
    def bulk_buffer(self) -> Region:
        if self._bulk_buffer is None:
            raise RuntimeError("call setup_bulk() before bulk_broadcast()")
        return self._bulk_buffer

    def bulk_broadcast(
        self, values: Optional[np.ndarray], root: int
    ) -> Generator:
        """Broadcast an array from ``root`` over channel-based tree edges.

        ``values`` is required at the root and ignored elsewhere. Returns
        a view of this node's staging buffer holding the data. Channels
        along tree edges are established lazily on first use and reused
        across rounds (the paper's channel optimization in Gauss).
        """
        ctx = self.ctx
        buffer = self.bulk_buffer
        round_ = self._rounds["bulk"]
        self._rounds["bulk"] += 1
        if ctx.pid == root:
            if values is None:
                raise ValueError("root must supply values")
            nelems = int(np.asarray(values).size)
            yield from ctx.write(buffer, 0, values=np.asarray(values))
        else:
            parent = self.parent_of(ctx.pid, root)
            if parent not in self._recv_from:
                channel = yield from ctx.cmmd.offer_channel(
                    parent, buffer, key="coll_bulk"
                )
                self._recv_from[parent] = channel
            key = ("bulk", round_)
            yield from ctx.poll_wait(lambda: key in self._mail)
            nelems = self._mail.pop(key)
            channel = self._recv_from[parent]
            yield from ctx.cmmd.wait_channel(channel, nelems * buffer.itemsize)
        for child in self.children_of(ctx.pid, root):
            yield from ctx.am.send(child, self.HDR_HANDLER, round_, nelems)
            if child not in self._send_to:
                send_channel = yield from ctx.cmmd.accept_channel(
                    child, key="coll_bulk"
                )
                self._send_to[child] = send_channel
            payload = yield from ctx.read(buffer, 0, nelems)
            yield from ctx.cmmd.write_channel(self._send_to[child], payload)
        result = yield from ctx.read(buffer, 0, nelems)
        return result
