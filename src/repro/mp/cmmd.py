"""CMMD-style message-passing library over active messages.

Re-implements the structure the paper describes (Section 4.1): the
library maintains *channels* on each node — initialized with a
destination, byte count, and source/destination addresses — and a
channel send breaks data into 20-byte packets that a data-packet handler
pulls from the network interface and stores into place at the receiver.
High-level synchronous send/receive functions initialize channels and
handshake to exchange the receiver's channel number.

Programs with static, repeated transfers use channels directly (the
optimization the paper applies in EM3D and LCP); ad-hoc transfers use
:meth:`CmmdLib.send_block` / :meth:`CmmdLib.receive_block`.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Generator, Optional, Tuple

import numpy as np

from repro.memory.dataspace import Region
from repro.mp.netiface import Packet


class RecvChannel:
    """Receiver-side channel state: destination window and progress counter."""

    __slots__ = ("cid", "expected_bytes", "lo", "received_bytes", "region", "rounds")

    def __init__(self, cid: int, region: Region, lo: int, expected_bytes: int) -> None:
        self.cid = cid
        self.region = region
        self.lo = lo  # element offset of the window within the region
        self.expected_bytes = expected_bytes
        self.received_bytes = 0
        self.rounds = 0


class SendChannel:
    """Sender-side channel state: destination node and remote channel id."""

    __slots__ = ("dest", "max_bytes", "remote_cid", "writes")

    def __init__(self, dest: int, remote_cid: int, max_bytes: int) -> None:
        self.dest = dest
        self.remote_cid = remote_cid
        self.max_bytes = max_bytes
        self.writes = 0


class CmmdLib:
    """Per-node channel bookkeeping and transfer engine."""

    DATA_HANDLER = "_cmmd_data"
    OFFER_HANDLER = "_cmmd_offer"

    def __init__(self, ctx: "repro.mp.api.MpContext") -> None:  # noqa: F821
        self.ctx = ctx
        self._next_cid = 0
        self._recv_channels: Dict[int, RecvChannel] = {}
        # Offers announced by receivers, keyed by (receiver node, key).
        self._offers: Dict[Tuple[int, str], Deque[Tuple[int, int]]] = defaultdict(deque)
        ctx.am.register(self.DATA_HANDLER, self._on_data)
        ctx.am.register(self.OFFER_HANDLER, self._on_offer)

    # -- handlers (run at this node's poll points) -------------------------

    def _on_data(self, ctx, packet: Packet) -> Generator:
        """Data-packet handler: store payload into the channel's window."""
        cid, el_offset, values = packet.payload
        channel = self._recv_channels.get(cid)
        if channel is None:
            raise KeyError(f"node {ctx.pid}: data for unknown channel {cid}")
        # Per-packet receive bookkeeping is charged by the dispatcher;
        # here the payload is stored into the channel's window.
        lo = channel.lo + el_offset
        yield from ctx.write(channel.region, lo, values=values)
        channel.received_bytes += packet.data_bytes

    def _on_offer(self, ctx, packet: Packet) -> Generator:
        """Offer handler: a receiver announced a channel we may write."""
        key, cid, max_bytes = packet.payload
        self._offers[(packet.src, key)].append((cid, max_bytes))
        return
        yield  # pragma: no cover - makes this a generator

    # -- receiver side ------------------------------------------------------

    def offer_channel(
        self,
        sender: int,
        region: Region,
        lo: int = 0,
        hi: Optional[int] = None,
        key: str = "default",
    ) -> Generator:
        """Create a receive channel over ``region[lo:hi]`` and announce it.

        Returns the :class:`RecvChannel`; the announcement travels to the
        sender as an active message carrying the channel number.
        """
        if hi is None:
            hi = region.np.size
        cid = self._next_cid
        self._next_cid += 1
        nbytes = (hi - lo) * region.itemsize
        channel = RecvChannel(cid, region, lo, nbytes)
        self._recv_channels[cid] = channel
        yield from self.ctx.am.send(sender, self.OFFER_HANDLER, key, cid, nbytes)
        return channel

    def wait_channel(self, channel: RecvChannel, nbytes: Optional[int] = None) -> Generator:
        """Wait until ``nbytes`` (default: the full window) have arrived.

        Consumes the arrived bytes, readying the channel for reuse.
        """
        target = channel.expected_bytes if nbytes is None else nbytes
        yield from self.ctx.poll_wait(lambda: channel.received_bytes >= target)
        channel.received_bytes -= target
        channel.rounds += 1

    def close_channel(self, channel: RecvChannel) -> None:
        """Retire a receive channel."""
        self._recv_channels.pop(channel.cid, None)

    # -- sender side ----------------------------------------------------------

    def accept_channel(self, receiver: int, key: str = "default") -> Generator:
        """Wait for (and claim) a channel offer from ``receiver``."""
        slot = (receiver, key)
        yield from self.ctx.poll_wait(lambda: bool(self._offers[slot]))
        cid, max_bytes = self._offers[slot].popleft()
        return SendChannel(receiver, cid, max_bytes)

    def write_channel(
        self,
        channel: SendChannel,
        values: np.ndarray,
        el_offset: int = 0,
    ) -> Generator:
        """Bulk-send ``values`` into the remote channel window.

        Packetizes at 16 payload bytes per packet; per-packet library
        bookkeeping is the buffer-management overhead the paper measures
        as Lib Comp. The value array is snapshotted, as the NI stores
        would be.
        """
        ctx = self.ctx
        mp = ctx.params.mp
        values = np.array(values)  # snapshot
        nbytes = values.size * values.itemsize
        if el_offset * values.itemsize + nbytes > channel.max_bytes:
            raise ValueError("channel write exceeds the receiver's window")
        npackets = ctx.packets_for(nbytes)
        with ctx.stats.context("lib"):
            yield from ctx.compute(
                mp.lib_transfer_setup_cycles + npackets * mp.lib_send_packet_cycles
            )
            ctx.stats.count("channel_writes")
            yield from ctx.inject(
                channel.dest,
                self.DATA_HANDLER,
                payload=(channel.remote_cid, el_offset, values),
                npackets=npackets,
                data_bytes=nbytes,
            )
        channel.writes += 1

    # -- synchronous send/receive ----------------------------------------------

    def send_block(
        self,
        dest: int,
        region: Region,
        lo: int = 0,
        hi: Optional[int] = None,
        key: str = "sendrecv",
    ) -> Generator:
        """CMMD-style synchronous send: handshake, then channel write."""
        ctx = self.ctx
        if hi is None:
            hi = region.np.size
        with ctx.stats.context("lib"):
            yield from ctx.compute(ctx.params.mp.lib_handshake_cycles)
        channel = yield from self.accept_channel(dest, key=key)
        values = yield from ctx.read(region, lo, hi)
        yield from self.write_channel(channel, values)

    def receive_block(
        self,
        src: int,
        region: Region,
        lo: int = 0,
        hi: Optional[int] = None,
        key: str = "sendrecv",
    ) -> Generator:
        """CMMD-style synchronous receive: offer a channel, await the data."""
        ctx = self.ctx
        if hi is None:
            hi = region.np.size
        with ctx.stats.context("lib"):
            yield from ctx.compute(ctx.params.mp.lib_handshake_cycles)
        channel = yield from self.offer_channel(src, region, lo, hi, key=key)
        yield from self.wait_channel(channel)
        self.close_channel(channel)
