"""Programming interface of the message-passing machine.

Application code receives an :class:`MpContext` and is written as a
generator; every operation that takes simulated time is a generator
subroutine invoked with ``yield from``. The context exposes:

* ``compute`` / ``compute_flops`` — charge computation cycles;
* ``read`` / ``write`` / ``read_gather`` — local memory accesses that
  drive the cache and TLB simulation at block granularity;
* packet injection and polling on the network interface (Table 2 costs);
* the hardware barrier;
* the active-message layer (``ctx.am``) and CMMD library (``ctx.cmmd``),
  attached by the machine.

Cycle attribution: inside ``stats.context("lib")`` (library code),
computation is charged as Lib Comp and local misses as Lib Misses,
exactly the paper's taxonomy. Time spent *waiting* for a message while
polling in library code therefore lands in Lib Comp, which is how the
paper's MSE discussion explains its library time ("the waiting time due
to load imbalance manifests itself as library computation time").
"""

from __future__ import annotations

import math
from typing import Any, Callable, Generator, Optional, Sequence

import numpy as np

from repro.arch.cache import LineState
from repro.memory.dataspace import Region
from repro.mp.netiface import Packet
from repro.sim.batch import BatchScript, reject_unknown_kwargs, run_batch_reference
from repro.sim.events import SimEvent
from repro.sim.process import Wait, delay_of
from repro.stats.categories import MpCat


class MpContext:
    """Per-processor view of the message-passing machine."""

    def __init__(self, machine: "repro.mp.machine.MpMachine", pid: int) -> None:  # noqa: F821
        self.machine = machine
        self.pid = pid
        self.engine = machine.engine
        self.params = machine.params
        self.costs = machine.costs
        node = machine.nodes[pid]
        self.stats = node.stats
        self.cache = node.cache
        self.tlb = node.tlb
        self.ni = node.ni
        self.space = machine.space
        # Attached by the machine after construction.
        self.am: Any = None
        self.cmmd: Any = None

    @property
    def nprocs(self) -> int:
        return self.machine.nprocs

    # -- allocation ---------------------------------------------------------

    def alloc(
        self,
        name: str,
        shape,
        dtype=np.float64,
        fill: float = 0.0,
    ) -> Region:
        """Allocate node-private memory (all memory on this machine is local)."""
        return self.space.alloc_private(
            f"p{self.pid}.{name}", owner=self.pid, shape=shape, dtype=dtype, fill=fill
        )

    # -- computation --------------------------------------------------------

    def compute(self, cycles: float) -> Generator:
        """Charge computation cycles (Lib Comp when in library context)."""
        cycles = int(round(cycles))
        if cycles <= 0:
            return
        self.stats.charge(MpCat.COMPUTE, cycles)
        yield delay_of(cycles)

    def compute_flops(self, count: float) -> Generator:
        yield from self.compute(self.costs.flops(count))

    # -- local memory -------------------------------------------------------

    def _touch_range(self, region: Region, lo: int, hi: int, write: bool) -> int:
        """Simulate cache/TLB traffic for elements [lo, hi); returns stall cycles.

        This loop (with its twin in :meth:`read_gather`) runs once per
        simulated block access, so attribute lookups are hoisted out of it.
        """
        common = self.params.common
        addr_range = region.range_of(lo, hi)
        stall = 0
        misses = 0
        tlb_access = self.tlb.access
        stats_count = self.stats.count
        tlb_miss_cycles = common.tlb_miss_cycles
        for page in addr_range.pages(common.page_bytes):
            if not tlb_access(page):
                stall += tlb_miss_cycles
                stats_count("tlb_misses")
        target_state = LineState.EXCLUSIVE if write else LineState.SHARED
        cache = self.cache
        lookup = cache.lookup
        invalid = LineState.INVALID
        exclusive = LineState.EXCLUSIVE
        miss_cycles = common.local_miss_total_cycles
        for block in addr_range.blocks(common.block_bytes):
            state = lookup(block)
            if state is invalid:
                misses += 1
                stall += miss_cycles
                victim = cache.insert(block, target_state)
                if victim is not None and victim[1] is exclusive:
                    stall += self.params.mp.replacement_cycles
            elif write and state is not exclusive:
                cache.set_state(block, exclusive)
        if misses:
            stats_count("local_misses", misses)
        return stall

    def read(
        self, region: Region, start: int = 0, stop: Optional[int] = None, **kwargs
    ) -> Generator:
        """Read elements [start, stop); returns the numpy view after miss stalls."""
        if kwargs:
            reject_unknown_kwargs("read", kwargs, ("start", "stop"))
        if stop is None:
            stop = region.np.size
        stall = self._touch_range(region, start, stop, write=False)
        if stall:
            self.stats.charge(MpCat.LOCAL_MISS, stall)
            yield delay_of(stall)
        return region.np.reshape(-1)[start:stop]

    def write(
        self,
        region: Region,
        start: int = 0,
        stop: Optional[int] = None,
        *,
        values: Optional[Sequence] = None,
        **kwargs,
    ) -> Generator:
        """Write elements [start, stop) (``stop`` inferred from ``values``)."""
        if kwargs:
            reject_unknown_kwargs("write", kwargs, ("start", "stop", "values"))
        flat = region.np.reshape(-1)
        if values is not None:
            values = np.asarray(values)
            stop = start + values.size
        if stop is None:
            raise ValueError("write needs values or stop")
        stall = self._touch_range(region, start, stop, write=True)
        if values is not None:
            flat[start:stop] = values.reshape(-1)
        if stall:
            self.stats.charge(MpCat.LOCAL_MISS, stall)
            yield delay_of(stall)

    def read_gather(self, region: Region, indices: Sequence[int]) -> Generator:
        """Indexed read: touches the unique blocks under ``indices``."""
        common = self.params.common
        stall = 0
        misses = 0
        tlb_access = self.tlb.access
        stats_count = self.stats.count
        cache = self.cache
        lookup = cache.lookup
        invalid = LineState.INVALID
        shared = LineState.SHARED
        exclusive = LineState.EXCLUSIVE
        tlb_miss_cycles = common.tlb_miss_cycles
        miss_cycles = common.local_miss_total_cycles
        for block in region.block_addrs_of_indices(indices):
            block = int(block)
            if not tlb_access(block):
                stall += tlb_miss_cycles
                stats_count("tlb_misses")
            if lookup(block) is invalid:
                misses += 1
                stall += miss_cycles
                victim = cache.insert(block, shared)
                if victim is not None and victim[1] is exclusive:
                    stall += self.params.mp.replacement_cycles
        if misses:
            stats_count("local_misses", misses)
        if stall:
            self.stats.charge(MpCat.LOCAL_MISS, stall)
            yield delay_of(stall)
        return region.np.reshape(-1)[np.asarray(indices, dtype=np.int64)]

    # -- declared bulk runs ---------------------------------------------------

    def batch(self) -> BatchScript:
        """Start a declared bulk run (see :mod:`repro.sim.batch`)."""
        return BatchScript()

    def run_batch(self, script: BatchScript) -> Generator:
        """Execute a batch script; returns the list of read results.

        On the reference backend this decomposes into the exact scalar
        ops the program would have made; the batched backend overrides
        it with a single-step executor that is bit-identical.
        """
        return (yield from run_batch_reference(self, script))

    # -- network interface ----------------------------------------------------

    def packets_for(self, nbytes: int) -> int:
        """Packets needed for a transfer of ``nbytes`` payload bytes."""
        return max(1, math.ceil(nbytes / self.params.mp.packet_payload_bytes))

    def inject(
        self,
        dest: int,
        handler: str,
        payload: Any,
        npackets: int = 1,
        data_bytes: int = 0,
        control_bytes: Optional[int] = None,
    ) -> Generator:
        """Push packets into the NI: tag+dest write then 5-word stores each.

        ``control_bytes`` defaults to the non-data remainder of the train
        (4-byte header per packet plus any unused payload).
        """
        mp = self.params.mp
        if control_bytes is None:
            control_bytes = npackets * mp.packet_bytes - data_bytes
        ni_cycles = npackets * mp.send_packet_cycles
        self.stats.charge(MpCat.NETWORK_ACCESS, ni_cycles)
        self.stats.count("messages_sent", npackets)
        self.stats.count("data_bytes", data_bytes)
        self.stats.count("control_bytes", control_bytes)
        yield delay_of(ni_cycles)
        packet = Packet(
            src=self.pid,
            dest=dest,
            tag=handler,
            payload=payload,
            data_bytes=data_bytes,
            control_bytes=control_bytes,
            count=npackets,
        )
        self.machine.deliver(packet)

    def poll(self) -> Generator:
        """One poll: status read, then drain + dispatch one train if present.

        Returns True if a packet train was received and handled.
        """
        mp = self.params.mp
        self.stats.charge(MpCat.NETWORK_ACCESS, mp.ni_status_cycles)
        yield delay_of(mp.ni_status_cycles)
        packet = self.ni.dequeue()
        if packet is None:
            return False
        recv_cycles = packet.count * mp.recv_packet_cycles
        self.stats.charge(MpCat.NETWORK_ACCESS, recv_cycles)
        yield delay_of(recv_cycles)
        yield from self.am.dispatch(packet)
        return True

    def _wait_arrival(self) -> Generator:
        """Park until a packet arrives; waiting counted as library polling."""
        event = SimEvent(name=f"p{self.pid}.arrival")
        self.ni.arrival_gate.park(lambda: event.fire(None))
        start = self.engine.now
        yield Wait(event)
        waited = self.engine.now - start
        if waited:
            self.stats.charge(MpCat.COMPUTE, waited)

    def poll_wait(self, predicate: Callable[[], bool]) -> Generator:
        """Library wait loop: poll until ``predicate()`` becomes true.

        Runs in library context: waiting and handler bookkeeping land in
        Lib Comp / Lib Misses, NI operations in Network Access.
        """
        with self.stats.context("lib"):
            while not predicate():
                if self.ni.status():
                    yield from self.poll()
                else:
                    yield from self._wait_arrival()

    def drain_polls(self) -> Generator:
        """Service every queued packet, then return (no waiting)."""
        with self.stats.context("lib"):
            while self.ni.status():
                yield from self.poll()

    # -- interrupt-driven delivery ---------------------------------------------

    def enable_interrupts(self, tag: str) -> None:
        """Route packets with ``tag`` to interrupt service (NI mask).

        Handlers then run without the program polling, at the cost of a
        kernel-trap dispatch per message. Interrupt service is modeled
        as a concurrent servicer whose handler time is charged to this
        node's library categories (see DESIGN.md: the paper's own
        simulator invoked handlers directly; CMMD polls heavily, so the
        polled path is the default).
        """
        self.ni.interrupt_mask.add(tag)
        self.machine.ensure_interrupt_servicer(self.pid)

    def disable_interrupts(self, tag: str) -> None:
        """Clear ``tag`` from the interrupt mask (back to polling)."""
        self.ni.interrupt_mask.discard(tag)

    def _interrupt_service(self) -> Generator:
        """Per-node ISR process: drain and dispatch masked packets."""
        mp = self.params.mp
        while True:
            packet = self.ni.dequeue_interrupt()
            if packet is None:
                wake = SimEvent(name=f"p{self.pid}.isr")
                self.ni.interrupt_gate.park(
                    lambda: wake.fired or wake.fire(None)
                )
                yield Wait(wake)
                continue
            self.ni.packets_dequeued += packet.count
            with self.stats.context("lib"):
                yield from self.compute(mp.interrupt_dispatch_cycles)
            recv_cycles = packet.count * mp.recv_packet_cycles
            self.stats.charge(MpCat.NETWORK_ACCESS, recv_cycles)
            yield delay_of(recv_cycles)
            yield from self.am.dispatch(packet)
            # Handler side effects may satisfy a poll_wait predicate.
            self.ni.arrival_gate.pulse()

    # -- synchronization ------------------------------------------------------

    def barrier(self) -> Generator:
        """Hardware barrier; wait time charged to Barriers."""
        waited = yield from self.machine.barrier.arrive()
        self.stats.charge_raw(MpCat.BARRIER, waited)
        self.stats.count("barriers")
