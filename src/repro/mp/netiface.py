"""Memory-mapped network interface of the message-passing machine.

Models the CM-5 data-network interface (paper Section 4.1): incoming and
outgoing FIFOs for packets of at most 20 bytes (16 payload + 4 tag), a
status word indicating whether an incoming packet is queued, and
processor-driven loads/stores for all data movement (no DMA). A send
always succeeds, since network contention is not modeled (as in the
paper).

For simulation efficiency, consecutive packets of one bulk transfer may
travel as a single *train*: accounting (packet counts, bytes, per-packet
cycle costs) is per-packet, but the train is delivered as one event.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.events import Gate


class Packet:
    """One 20-byte network packet (possibly representing a train).

    ``count`` > 1 makes this a train of ``count`` identical-cost packets
    delivered together; ``payload`` then describes the whole train.
    ``data_bytes``/``control_bytes`` cover the entire train.
    """

    __slots__ = ("control_bytes", "count", "data_bytes", "dest", "payload", "src", "tag")

    def __init__(
        self,
        src: int,
        dest: int,
        tag: str,
        payload: Any,
        data_bytes: int = 0,
        control_bytes: int = 0,
        count: int = 1,
    ) -> None:
        if count < 1:
            raise ValueError("packet train must contain at least one packet")
        self.src = src
        self.dest = dest
        self.tag = tag
        self.payload = payload
        self.data_bytes = data_bytes
        self.control_bytes = control_bytes
        self.count = count

    def __repr__(self) -> str:
        return (
            f"Packet({self.src}->{self.dest}, tag={self.tag!r}, "
            f"count={self.count}, data={self.data_bytes}, ctrl={self.control_bytes})"
        )


class NetworkInterface:
    """Per-node incoming FIFO, arrival notification, interrupt mask.

    The interrupt mask (paper Section 4.1: "the interface's interrupt
    mask controls if the processor will be interrupted when a message
    with a particular tag(s) enters the queue") steers matching packets
    to the node's interrupt-service queue instead of the polled FIFO.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._incoming: Deque[Packet] = deque()
        self._interrupt_queue: Deque[Packet] = deque()
        self.arrival_gate = Gate(name=f"ni{node_id}.arrival")
        self.interrupt_gate = Gate(name=f"ni{node_id}.interrupt")
        self.interrupt_mask: set = set()
        self.packets_enqueued = 0
        self.packets_dequeued = 0
        self.interrupts_raised = 0

    def enqueue(self, packet: Packet) -> None:
        """Network-side delivery into the incoming FIFO (or the ISR)."""
        self.packets_enqueued += packet.count
        if packet.tag in self.interrupt_mask:
            self._interrupt_queue.append(packet)
            self.interrupts_raised += 1
            self.interrupt_gate.pulse()
            return
        self._incoming.append(packet)
        self.arrival_gate.pulse()

    def dequeue_interrupt(self) -> Optional[Packet]:
        """Pull the next packet pending interrupt service."""
        if not self._interrupt_queue:
            return None
        return self._interrupt_queue.popleft()

    def interrupts_pending(self) -> int:
        return len(self._interrupt_queue)

    def status(self) -> bool:
        """Status-word read: is an incoming packet queued?"""
        return bool(self._incoming)

    def dequeue(self) -> Optional[Packet]:
        """Pull the packet (train) at the head of the incoming FIFO."""
        if not self._incoming:
            return None
        packet = self._incoming.popleft()
        self.packets_dequeued += packet.count
        return packet

    def pending(self) -> int:
        """Packets (not trains) waiting in the incoming FIFO."""
        return sum(p.count for p in self._incoming)
