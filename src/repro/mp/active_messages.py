"""Active-message layer (the reproduction's CMAML).

An active message is a single 20-byte packet naming a handler that runs
at the receiver when it polls; the handler integrates the message into
the computation directly (von Eicken et al.). As in the paper's
simulator, handlers are invoked directly at poll points without kernel
traps — the paper notes CMMD polls heavily, so this matches its
methodology.

Handlers are generator functions ``handler(ctx, *args)`` registered per
node. They run in the *receiver's* library context and may themselves
send messages or touch memory.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator

from repro.mp.netiface import Packet

Handler = Callable[..., Generator]


class AmLayer:
    """Per-node handler registry and send/dispatch engine."""

    def __init__(self, ctx: "repro.mp.api.MpContext") -> None:  # noqa: F821
        self.ctx = ctx
        self._handlers: Dict[str, Handler] = {}

    def register(self, name: str, handler: Handler) -> None:
        """Register a handler; names are per-node and must be unique."""
        if name in self._handlers:
            raise ValueError(f"handler {name!r} already registered on node "
                             f"{self.ctx.pid}")
        self._handlers[name] = handler

    def send(
        self,
        dest: int,
        handler: str,
        *args: Any,
        data_bytes: int = 0,
    ) -> Generator:
        """Send one active message (one packet).

        ``data_bytes`` declares how much of the 16-byte payload carries
        application data (the rest, plus the 4-byte header, is control).
        """
        ctx = self.ctx
        mp = ctx.params.mp
        if data_bytes > mp.packet_payload_bytes:
            raise ValueError("an active message carries at most one payload")
        with ctx.stats.context("lib"):
            yield from ctx.compute(mp.lib_am_send_cycles)
            ctx.stats.count("active_messages")
            yield from ctx.inject(
                dest,
                handler,
                payload=args,
                npackets=1,
                data_bytes=data_bytes,
            )

    def send_train(
        self,
        dest: int,
        handler: str,
        payload: Any,
        nbytes: int,
    ) -> Generator:
        """Send a multi-packet active message carrying ``nbytes`` of data.

        Used for replies larger than one packet's payload (e.g. MSE's
        body-value replies); per-packet library bookkeeping applies
        beyond the first packet.
        """
        ctx = self.ctx
        mp = ctx.params.mp
        npackets = ctx.packets_for(nbytes)
        with ctx.stats.context("lib"):
            yield from ctx.compute(
                mp.lib_am_send_cycles + (npackets - 1) * mp.lib_send_packet_cycles
            )
            ctx.stats.count("active_messages")
            yield from ctx.inject(
                dest,
                handler,
                payload=payload,
                npackets=npackets,
                data_bytes=nbytes,
            )

    def dispatch(self, packet: Packet) -> Generator:
        """Run the handler for a received packet (train).

        Called from :meth:`MpContext.poll`; handler bookkeeping is
        charged in library context so it lands in Lib Comp: the
        fixed active-message dispatch cost for a single packet, or the
        per-packet receive bookkeeping for a train.
        """
        ctx = self.ctx
        handler = self._handlers.get(packet.tag)
        if handler is None:
            raise KeyError(
                f"node {ctx.pid}: no handler {packet.tag!r} "
                f"for packet from {packet.src}"
            )
        with ctx.stats.context("lib"):
            if packet.count == 1:
                yield from ctx.compute(ctx.params.mp.lib_am_handler_cycles)
            else:
                yield from ctx.compute(
                    packet.count * ctx.params.mp.lib_recv_packet_cycles
                )
            yield from handler(ctx, packet)

    def known_handlers(self) -> tuple:
        return tuple(self._handlers)
