#!/usr/bin/env python3
"""Two-replica smoke test: shared store, one simulation fleet-wide.

Boots TWO ``repro serve`` subprocesses pointed at the same cache
directory with ``--store shared``, then:

1. submits the identical run to both replicas concurrently and polls
   each until terminal — both must report ``done`` with identical
   result envelopes (same cache key, same summary), and exactly ONE
   submission fleet-wide may carry ``simulated: true``: the other
   replica must have adopted the winner's record through the shared
   store (claim protocol), not re-simulated;
2. requires the shared cache directory to hold exactly one record for
   the key and no leftover ``*.lock`` / ``*.tmp.*`` droppings;
3. floods one overload-tuned replica (``--max-pending 2 --jobs 1``)
   with rapid distinct submissions and requires at least one HTTP 429
   carrying a positive integer ``Retry-After`` header — admission
   control under real multi-client pressure.

Exit code 0 on success, 1 on any violated expectation. Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request


def get(url: str, path: str):
    with urllib.request.urlopen(url + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def post(url: str, path: str, body: dict):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_healthy(url: str, timeout: float) -> None:
    deadline = time.time() + timeout
    last_error = "no attempt made"
    while time.time() < deadline:
        try:
            status, health = get(url, "/healthz")
            if status == 200 and health.get("status") == "ok":
                return
            last_error = f"status={status}"
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
            last_error = str(exc)
        time.sleep(0.2)
    raise SystemExit(f"replica never became healthy at {url}: {last_error}")


def poll_job(url: str, job_id: str, timeout: float) -> dict:
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, job = get(url, f"/v1/jobs/{job_id}?wait=5")
        if status != 200:
            raise SystemExit(f"poll failed: status={status} body={job}")
        if job["state"] in ("done", "failed"):
            return job
    raise SystemExit(f"job {job_id} did not finish within {timeout}s")


def boot_replica(cache_dir: str, port: int, log_path: str,
                 extra_args=()) -> subprocess.Popen:
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env.setdefault("PYTHONPATH", "src")
    log = open(log_path, "w")  # noqa: SIM115 - lives as long as the child
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--store", "shared", *extra_args],
        env=env, stdout=log, stderr=subprocess.STDOUT,
    )


def shut_down(procs) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGINT)
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


def check_exactly_once(urls, body, job_timeout: float) -> list:
    """Identical concurrent submissions → one simulation fleet-wide."""
    barrier = threading.Barrier(len(urls))
    submissions = [None] * len(urls)

    def submit(index: int) -> None:
        barrier.wait()
        status, _headers, job = post(urls[index], "/v1/runs", body)
        submissions[index] = (status, job)

    threads = [threading.Thread(target=submit, args=(i,))
               for i in range(len(urls))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    failures = []
    finals = []
    for url, (status, job) in zip(urls, submissions):
        if status not in (200, 202):
            failures.append(f"{url}: submission answered HTTP {status}")
            continue
        final = poll_job(url, job["job_id"], job_timeout)
        if final["state"] != "done":
            failures.append(f"{url}: job failed: {final['error']}")
            continue
        finals.append((url, final))
        print(f"{url}: done, simulated={final['simulated']}")

    if len(finals) == len(urls):
        simulated = [f for _u, f in finals if f["simulated"]]
        if len(simulated) != 1:
            failures.append(
                f"expected exactly 1 simulation fleet-wide, got "
                f"{len(simulated)} (claim protocol broken)"
            )
        keys = {f["result"]["cache_key"] for _u, f in finals}
        if len(keys) != 1:
            failures.append(f"replicas disagree on cache key: {keys}")
        summaries = [json.dumps(f["result"]["summary"], sort_keys=True)
                     for _u, f in finals]
        if len(set(summaries)) != 1:
            failures.append("replica records are not bit-identical: "
                            "summaries diverge")
    return failures


def check_store_hygiene(cache_dir: str) -> list:
    failures = []
    names = sorted(os.listdir(cache_dir))
    records = [n for n in names if n.endswith(".json")]
    droppings = [n for n in names if ".tmp." in n or n.endswith(".lock")]
    print(f"shared store: {len(records)} record(s), "
          f"{len(droppings)} dropping(s)")
    if len(records) != 1:
        failures.append(
            f"expected exactly 1 shared record, found {records}"
        )
    if droppings:
        failures.append(f"store left tmp/lock droppings: {droppings}")
    return failures


def check_overload(url: str, flood: int) -> list:
    """Rapid distinct submissions against a tiny queue must 429."""
    refused = []
    accepted = 0
    for seed in range(1, flood + 1):
        status, headers, body = post(
            url, "/v1/runs",
            {"experiment": "validation", "overrides": {"seed": seed}},
        )
        if status == 429:
            refused.append(headers.get("Retry-After"))
        elif status in (200, 202):
            accepted += 1
        else:
            return [f"overload submission answered HTTP {status}: {body}"]
    print(f"overload: {accepted} accepted, {len(refused)} refused "
          f"with Retry-After {sorted(set(refused))}")
    failures = []
    if not refused:
        failures.append(
            f"{flood} rapid submissions never drew a 429 "
            "(admission control inert)"
        )
    for value in refused:
        if value is None or not value.isdigit() or int(value) < 1:
            failures.append(f"429 carried a bad Retry-After: {value!r}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiment", default="validation",
                        help="experiment to submit (default: %(default)s)")
    parser.add_argument("--boot-timeout", type=float, default=60.0,
                        help="seconds to wait for /healthz (default: 60)")
    parser.add_argument("--job-timeout", type=float, default=600.0,
                        help="seconds to wait for jobs (default: 600)")
    parser.add_argument("--flood", type=int, default=12,
                        help="submissions for the overload check "
                             "(default: 12)")
    args = parser.parse_args(argv)
    body = {"experiment": args.experiment}

    with tempfile.TemporaryDirectory(prefix="repro-replicas-") as workdir:
        cache_dir = os.path.join(workdir, "shared-cache")
        ports = [free_port(), free_port()]
        urls = [f"http://127.0.0.1:{port}" for port in ports]
        procs = [
            boot_replica(cache_dir, ports[0],
                         os.path.join(workdir, "replica-a.log")),
            boot_replica(cache_dir, ports[1],
                         os.path.join(workdir, "replica-b.log")),
        ]
        failures = []
        try:
            for url in urls:
                wait_healthy(url, args.boot_timeout)
            print(f"two replicas healthy on one store: {', '.join(urls)}")

            failures += check_exactly_once(urls, body, args.job_timeout)
            failures += check_store_hygiene(cache_dir)
        finally:
            shut_down(procs)

        # Overload check gets its own throttled replica so the flood
        # cannot interfere with the exactly-once run above.
        overload_port = free_port()
        overload_url = f"http://127.0.0.1:{overload_port}"
        overload = boot_replica(
            os.path.join(workdir, "overload-cache"), overload_port,
            os.path.join(workdir, "overload.log"),
            extra_args=("--jobs", "1", "--max-pending", "2"),
        )
        try:
            wait_healthy(overload_url, args.boot_timeout)
            failures += check_overload(overload_url, args.flood)
        finally:
            shut_down([overload])

        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            for name in ("replica-a.log", "replica-b.log", "overload.log"):
                path = os.path.join(workdir, name)
                if os.path.exists(path):
                    with open(path) as log:
                        sys.stderr.write(f"--- {name} ---\n{log.read()}")
            return 1
    print("serve replicas smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
