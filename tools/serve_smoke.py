#!/usr/bin/env python3
"""End-to-end smoke test for a running ``repro serve`` instance.

Drives the full job lifecycle against a live server (CI boots one in
the background; locally: ``python -m repro serve --port 8737 &``):

1. wait for ``GET /healthz`` to answer;
2. ``POST /v1/runs`` for the target experiment (cold) and poll
   ``GET /v1/jobs/<id>`` until it finishes — the first submission must
   simulate (``simulated: true``) unless the server's cache was warm;
3. re-submit the identical request and require it served from the
   content-addressed cache: ``state: "done"`` in the *submission*
   response, ``simulated: false``, and a sub-second round trip;
4. require the warm record to be identical to the cold one
   (same cache key, same summary) and the health document sane;
5. long-poll ``GET /v1/jobs/<id>?wait=...`` and require a terminal
   state from a single request (no client-side poll loop);
6. issue a mixed keep-alive sequence (valid POST, unknown path,
   malformed JSON, health GET) over ONE persistent connection and
   require every response to match its request — guards against
   HTTP/1.1 request desync from undrained bodies.

Exit code 0 on success, 1 on any violated expectation (with a message
on stderr). Stdlib only — usable from CI, cron, or a shell.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import time
import urllib.error
import urllib.parse
import urllib.request


def get(url: str, path: str):
    with urllib.request.urlopen(url + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def post(url: str, path: str, body: dict):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def wait_healthy(url: str, timeout: float) -> dict:
    deadline = time.time() + timeout
    last_error = "no attempt made"
    while time.time() < deadline:
        try:
            status, health = get(url, "/healthz")
            if status == 200 and health.get("status") == "ok":
                return health
            last_error = f"status={status} body={health}"
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
            last_error = str(exc)
        time.sleep(0.25)
    raise SystemExit(f"server never became healthy at {url}: {last_error}")


def poll_job(url: str, job_id: str, timeout: float) -> dict:
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, job = get(url, f"/v1/jobs/{job_id}")
        if status != 200:
            raise SystemExit(f"poll failed: status={status} body={job}")
        if job["state"] in ("done", "failed"):
            return job
        time.sleep(0.5)
    raise SystemExit(f"job {job_id} did not finish within {timeout}s")


def check_long_poll(url: str, job_id: str) -> list:
    """One GET with ``wait=`` must return a terminal state by itself."""
    started = time.time()
    status, job = get(url, f"/v1/jobs/{job_id}?wait=30")
    elapsed = time.time() - started
    print(f"long-poll: HTTP {status}, state={job['state']} "
          f"after {elapsed*1000:.0f}ms")
    failures = []
    if status != 200:
        failures.append(f"long-poll answered HTTP {status}")
    elif job["state"] not in ("done", "failed"):
        failures.append(f"long-poll returned non-terminal state "
                        f"{job['state']!r} despite wait=30")
    if elapsed > 10.0:
        failures.append(f"long-poll on a finished job took {elapsed:.1f}s")
    return failures


def check_keepalive(url: str, body: dict) -> list:
    """Mixed POSTs + GET on one persistent connection stay in sync."""
    parts = urllib.parse.urlsplit(url)
    conn = http.client.HTTPConnection(
        parts.hostname, parts.port or 80, timeout=30
    )
    sequence = [
        ("POST", "/v1/runs", json.dumps(body).encode(), (200, 202)),
        ("POST", "/v1/nowhere", json.dumps(body).encode(), (404,)),
        ("POST", "/v1/runs", b"{definitely not json", (400,)),
        ("GET", "/healthz", None, (200,)),
    ]
    failures = []
    try:
        sockets = set()
        for method, path, payload, expected in sequence:
            headers = ({"Content-Type": "application/json"}
                       if payload else {})
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            answer = json.loads(response.read())
            if response.status not in expected:
                failures.append(
                    f"keep-alive {method} {path}: HTTP {response.status} "
                    f"(expected {expected}) body={answer}"
                )
            sockets.add(id(conn.sock))
        if len(sockets) != 1:
            failures.append(
                "keep-alive connection was re-established mid-sequence"
            )
    except (http.client.HTTPException, OSError, json.JSONDecodeError) as exc:
        failures.append(f"keep-alive sequence desynced: {exc!r}")
    finally:
        conn.close()
    if not failures:
        print(f"keep-alive: {len(sequence)} mixed requests on one "
              "connection, all in sync")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="http://127.0.0.1:8737",
                        help="server base URL (default: %(default)s)")
    parser.add_argument("--experiment", default="validation",
                        help="experiment to submit (default: %(default)s)")
    parser.add_argument("--boot-timeout", type=float, default=60.0,
                        help="seconds to wait for /healthz (default: 60)")
    parser.add_argument("--job-timeout", type=float, default=600.0,
                        help="seconds to wait for the cold job (default: 600)")
    parser.add_argument("--warm-budget", type=float, default=1.0,
                        help="max seconds for the warm round trip "
                             "(default: 1.0)")
    args = parser.parse_args(argv)
    url = args.url.rstrip("/")
    body = {"experiment": args.experiment}

    health = wait_healthy(url, args.boot_timeout)
    print(f"healthy: uptime {health['uptime_seconds']}s, "
          f"cache {health['cache']['records']} records "
          f"({health['cache']['bytes']} bytes)")

    status, job = post(url, "/v1/runs", body)
    print(f"cold submit: HTTP {status}, state={job['state']}, "
          f"job {job['job_id'][:16]}")
    job = poll_job(url, job["job_id"], args.job_timeout)
    if job["state"] != "done":
        print(f"cold job failed: {job['error']}", file=sys.stderr)
        return 1
    print(f"cold done: simulated={job['simulated']} "
          f"in {job['elapsed_seconds']:.1f}s")
    cold_result = job["result"]

    started = time.time()
    status, warm = post(url, "/v1/runs", body)
    round_trip = time.time() - started
    print(f"warm submit: HTTP {status}, state={warm['state']}, "
          f"simulated={warm['simulated']}, round trip {round_trip*1000:.0f}ms")
    failures = []
    if status != 200 or warm["state"] != "done":
        failures.append(f"warm request not served complete: {warm['state']}")
    if warm["simulated"] is not False:
        failures.append("warm request was re-simulated (expected cache hit)")
    if round_trip > args.warm_budget:
        failures.append(
            f"warm round trip {round_trip:.2f}s over {args.warm_budget}s budget"
        )
    if warm["result"]["cache_key"] != cold_result["cache_key"]:
        failures.append("warm record's cache key diverged from cold run")
    if warm["result"]["summary"] != cold_result["summary"]:
        failures.append("warm record's summary diverged from cold run")

    failures.extend(check_long_poll(url, job["job_id"]))
    failures.extend(check_keepalive(url, body))

    status, health = get(url, "/healthz")
    if health["queue"]["jobs"]["failed"]:
        failures.append(f"failed jobs on server: {health['queue']}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("serve smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
