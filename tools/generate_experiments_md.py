#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from live runs of every experiment.

Usage:  python tools/generate_experiments_md.py [output-path]
        python tools/generate_experiments_md.py --sensitivity-only [output-path]

Runs the full experiment registry and writes a paper-vs-measured report:
for every table and figure of the paper's evaluation section, the
paper's reported values, the scaled run's values, and the shape checks;
plus a sensitivity section generated from the shipped ``repro sweep``
specs. ``--sensitivity-only`` regenerates just that section in place
(between the sweep markers), leaving the per-experiment sections alone.
"""

from __future__ import annotations

import re
import sys
import time
from pathlib import Path

from repro.api import run_raw
from repro.core.experiments import EXPERIMENTS
from repro.core.study import PairResult
from repro.core.tables import render_pair

SWEEP_BEGIN = "<!-- sweep-sensitivity:begin -->"
SWEEP_END = "<!-- sweep-sensitivity:end -->"

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in the evaluation section of
*Where is Time Spent in Message-Passing and Shared-Memory Programs?*
(Chandra, Larus, Rogers; ASPLOS 1994).

**How to read this file.** The paper ran 32-processor simulations at
full problem sizes (hundreds of millions to billions of target cycles).
This reproduction runs the same algorithms on the same pair of machine
models at workloads a few hundred times smaller (8-16 processors,
scaled inputs, cache scaled with the working set — see DESIGN.md
section 2.8). Absolute cycle counts are therefore not comparable; the
reproduced quantities are the paper's *qualitative results*: who wins,
by roughly what factor, which category dominates, and where the
crossovers fall. Each experiment lists the paper's reported values,
the measured scaled values, and the machine-checked shape assertions
(`pytest benchmarks/ --benchmark-only` enforces the same checks).

Regenerate with `python tools/generate_experiments_md.py`.
"""


def render_experiment(exp_id: str) -> str:
    spec = EXPERIMENTS[exp_id]
    start = time.time()
    result = run_raw(exp_id)
    elapsed = time.time() - start
    lines = [
        f"## {spec.title}",
        "",
        f"*Regenerates:* {spec.paper_tables}  ",
        f"*Bench target:* see `benchmarks/` (experiment id `{exp_id}`)  ",
        f"*Scaled run wall time:* {elapsed:.1f}s",
        "",
        spec.description,
        "",
        "**Paper's reported values:**",
        "",
    ]
    for key, value in spec.paper.items():
        lines.append(f"- `{key}` = {value}")
    lines += ["", "**Measured (scaled run):**", ""]
    paper_key = {
        "mse": "mse", "gauss": "gauss", "em3d": "em3d_total",
        "lcp": "lcp", "alcp": "alcp",
    }.get(exp_id)
    if isinstance(result, PairResult):
        lines.append("```")
        if paper_key is not None:
            from repro.core.tables import render_share_comparison

            lines.append(render_share_comparison(result, paper_key))
            lines.append("")
        lines.append(render_pair(result, phases=bool(result.phases)))
        lines.append("```")
    elif isinstance(result, dict) and exp_id == "gauss_collectives":
        lines.append("```")
        for strategy, total in result.items():
            lines.append(f"{strategy:>9}: {total / 1e6:8.2f}M cycles")
        lines.append("```")
    elif isinstance(result, dict) and exp_id == "validation":
        lines.append("```")
        for name, values in result.items():
            error = abs(values["measured"] - values["expected"]) / values["expected"]
            lines.append(
                f"{name:>22}: measured {values['measured']:6.0f}  "
                f"expected {values['expected']:6.0f}  ({error:.0%})"
            )
        lines.append("```")
    elif isinstance(result, dict) and exp_id == "em3d_protocols":
        mp_main = result["mp"].board.mean_total(phase="main")
        lines.append("```")
        lines.append(f"EM3D-MP main loop: {mp_main / 1e3:.0f}K cycles")
        for variant in ("base", "flush", "update"):
            board = result[variant].board
            main = board.mean_total(phase="main")
            lines.append(
                f"EM3D-SM {variant:<7}: {main / 1e3:6.0f}K cycles "
                f"({main / mp_main:.1f}x MP), "
                f"{board.mean_count('invalidations_received', phase='main'):.0f} "
                f"invalidations/processor"
            )
        lines.append("```")
    lines += ["", "**Shape checks:**", ""]
    for name, ok, detail in spec.shape(result):
        mark = "PASS" if ok else "FAIL"
        lines.append(f"- [{mark}] {name} — {detail}")
    if spec.notes:
        lines += ["", f"*Note:* {spec.notes}"]
    lines.append("")
    return "\n".join(lines)


def render_fidelity() -> str:
    from repro.core.fidelity import assess_all, render_scorecard

    return "\n".join(
        [
            "## Fidelity scorecard",
            "",
            "Category shares (scale-stable quantities) across all five",
            "application pairs, paper vs. this reproduction. Regenerate",
            "interactively with `python -m repro fidelity`.",
            "",
            "```",
            render_scorecard(assess_all()),
            "```",
            "",
        ]
    )


def render_sensitivity() -> str:
    """The sweep-driven sensitivity section, marker-delimited."""
    from repro.api import sweep
    from repro.sweep import SWEEP_SPECS

    lines = [
        SWEEP_BEGIN,
        "## Sensitivity sweeps",
        "",
        "The paper's sensitivity conclusions (section 5) as declarative",
        "sweeps over the same harness: each spec pins a curve shape as a",
        "machine-checked assertion. Rerun any of them with",
        "`python -m repro sweep <name>`; widen an axis with `--axis`.",
        "",
    ]
    for name in sorted(SWEEP_SPECS):
        print(f"sweeping {name} ...", flush=True)
        result = sweep(name)
        lines += [
            f"### `{name}` — {result.exp_id}",
            "",
            SWEEP_SPECS[name].description,
            "",
            "```",
            result.render_table(),
            "```",
            "",
        ]
        for probe in result.crossovers:
            mark = "x" if probe["crossed"] else "-"
            lines.append(f"- [{mark}] crossover `{probe['name']}` — {probe['detail']}")
        for check_name, ok, detail in result.checks:
            mark = "PASS" if ok else "FAIL"
            lines.append(f"- [{mark}] {check_name} — {detail}")
        lines.append("")
    lines.append(SWEEP_END)
    return "\n".join(lines)


def main() -> int:
    argv = [a for a in sys.argv[1:]]
    sensitivity_only = "--sensitivity-only" in argv
    argv = [a for a in argv if a != "--sensitivity-only"]
    output = Path(argv[0]) if argv else Path("EXPERIMENTS.md")

    if sensitivity_only:
        text = output.read_text()
        block = re.compile(
            re.escape(SWEEP_BEGIN) + r".*?" + re.escape(SWEEP_END), re.S
        )
        if not block.search(text):
            print(f"no sweep markers in {output}; run a full regeneration first")
            return 1
        output.write_text(block.sub(lambda _m: render_sensitivity(), text))
        print(f"rewrote sensitivity section of {output}")
        return 0

    sections = [HEADER]
    for exp_id in EXPERIMENTS:
        print(f"running {exp_id} ...", flush=True)
        sections.append(render_experiment(exp_id))
    sections.append(render_sensitivity())
    sections.append("")
    sections.append(render_fidelity())
    output.write_text("\n".join(sections))
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
