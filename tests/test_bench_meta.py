"""Benchmark provenance metadata and baseline tolerance."""

from repro import bench


def test_platform_meta_records_provenance():
    meta = bench.platform_meta(quick=True)
    assert meta["quick"] is True
    assert meta["python"]
    assert meta["platform"]
    assert isinstance(meta["cpu_count"], int) and meta["cpu_count"] >= 1
    # git_sha is a short hex string inside a checkout, None outside one.
    assert meta["git_sha"] is None or (
        isinstance(meta["git_sha"], str) and len(meta["git_sha"]) >= 7
    )


def _doc(rate, meta=None):
    doc = {"kernel": {"events_per_sec": rate}}
    if meta is not None:
        doc["meta"] = meta
    return doc


def test_compare_tolerates_baseline_without_meta():
    ok, message = bench.compare(_doc(100, meta=bench.platform_meta()), _doc(100))
    assert ok
    assert "different platform" not in message


def test_compare_warns_on_platform_mismatch_without_failing():
    current = _doc(100, meta={"platform": "here"})
    baseline = _doc(100, meta={"platform": "elsewhere"})
    ok, message = bench.compare(current, baseline)
    assert ok
    assert "different platform" in message
    assert "elsewhere" in message
