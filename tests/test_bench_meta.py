"""Benchmark provenance metadata and baseline tolerance."""

from repro.runner import bench


def test_platform_meta_records_provenance():
    meta = bench.platform_meta(quick=True)
    assert meta["quick"] is True
    assert meta["python"]
    assert meta["platform"]
    assert isinstance(meta["cpu_count"], int) and meta["cpu_count"] >= 1
    # git_sha is a short hex string inside a checkout, None outside one.
    assert meta["git_sha"] is None or (
        isinstance(meta["git_sha"], str) and len(meta["git_sha"]) >= 7
    )


def _doc(rate, meta=None):
    doc = {"kernel": {"events_per_sec": rate}}
    if meta is not None:
        doc["meta"] = meta
    return doc


def test_compare_tolerates_baseline_without_meta():
    ok, message = bench.compare(_doc(100, meta=bench.platform_meta()), _doc(100))
    assert ok
    assert "different platform" not in message


def test_compare_warns_on_platform_mismatch_without_failing():
    current = _doc(100, meta={"platform": "here"})
    baseline = _doc(100, meta={"platform": "elsewhere"})
    ok, message = bench.compare(current, baseline)
    assert ok
    assert "different platform" in message
    assert "elsewhere" in message


def _app_row(exp, rate, backend="batched"):
    return {"experiment": exp, "events_per_sec": rate, "backend": backend}


def test_compare_gates_each_app_at_the_floor():
    baseline = dict(_doc(100), apps=[_app_row("gauss", 1000), _app_row("mse", 1000)])
    healthy = dict(_doc(100), apps=[_app_row("gauss", 900), _app_row("mse", 800)])
    ok, message = bench.compare(healthy, baseline)
    assert ok
    assert "app gauss" in message and "app mse" in message

    regressed = dict(_doc(100), apps=[_app_row("gauss", 900), _app_row("mse", 500)])
    ok, message = bench.compare(regressed, baseline)
    assert not ok
    assert "app mse" in message and "0.50x" in message


def test_compare_kernel_gate_still_fails_alone():
    ok, _ = bench.compare(_doc(50), _doc(100))
    assert not ok


def test_compare_skips_apps_from_a_different_backend():
    baseline = dict(_doc(100), apps=[_app_row("gauss", 1000)])
    current = dict(_doc(100), apps=[_app_row("gauss", 10, backend="reference")])
    ok, message = bench.compare(current, baseline)
    assert ok  # a cross-backend ratio would measure the backends, not a regression
    assert "backend differs" in message


def test_compare_ignores_apps_missing_from_baseline():
    current = dict(_doc(100), apps=[_app_row("new_app", 10)])
    ok, message = bench.compare(current, _doc(100))
    assert ok
    assert "new_app" not in message


def test_app_threshold_defaults_to_threshold():
    baseline = dict(_doc(100), apps=[_app_row("gauss", 1000)])
    current = dict(_doc(100), apps=[_app_row("gauss", 600)])
    ok, _ = bench.compare(current, baseline, threshold=0.5)
    assert ok
    ok, _ = bench.compare(current, baseline, threshold=0.5, app_threshold=0.7)
    assert not ok
