"""Property test pinning the lazy-cancel accounting of Engine.pending().

``pending()`` is an O(1) counter maintained across lazy cancellation,
due-lane scheduling, heap compaction, and partial ``run()`` drains. The
oracle is the naive O(n) scan of the live entries actually sitting in
the heap and due lane — the two must agree after every operation in any
randomized schedule/cancel/stop/run sequence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine, ScheduledAction


def naive_pending(engine):
    """Count live entries by scanning the queues directly."""
    live = 0
    for lane in (engine._heap, engine._due):
        for item in lane:
            entry = item[2] if isinstance(item, tuple) else item
            if isinstance(entry, ScheduledAction):
                if not entry.cancelled:
                    live += 1
            else:
                live += 1
    return live


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), st.integers(0, 10)),
        st.tuples(st.just("schedule_step"), st.integers(0, 10)),
        st.tuples(st.just("schedule_stop"), st.integers(0, 5)),
        st.tuples(st.just("cancel"), st.integers(0, 10_000)),
        st.tuples(st.just("run_until"), st.integers(0, 15)),
        st.tuples(st.just("run_max"), st.integers(1, 10)),
        st.tuples(st.just("drain"), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=150, deadline=None)
@given(OPS)
def test_pending_counter_matches_naive_scan(ops):
    engine = Engine()
    handles = []

    for op, arg in ops:
        if op == "schedule":
            handles.append(engine.schedule(arg, lambda: None))
        elif op == "schedule_step":
            engine._schedule_step(arg, lambda: None)
        elif op == "schedule_stop":
            handles.append(engine.schedule(arg, engine.stop))
        elif op == "cancel" and handles:
            # Double-cancels are deliberately reachable and must be inert.
            handles[arg % len(handles)].cancel()
        elif op == "run_until":
            engine.run(until=engine.now + arg)
        elif op == "run_max":
            engine.run(max_events=arg)
        elif op == "drain":
            engine.run()
        assert engine.pending() == naive_pending(engine), op

    # Drain fully; scheduled stop() actions may halt a run() early, so
    # keep running until nothing is live.
    while engine.pending():
        engine.run()
        assert engine.pending() == naive_pending(engine)
    assert naive_pending(engine) == 0


def test_pending_exact_across_forced_heap_compaction():
    """Cancelling >2x _COMPACT_MIN entries forces at least one compaction."""
    engine = Engine()
    handles = [engine.schedule(i + 1, lambda: None) for i in range(300)]
    keep = handles[::10]
    for i, handle in enumerate(handles):
        if i % 10:
            handle.cancel()
        assert engine.pending() == naive_pending(engine)
    # Compaction dropped the garbage without losing a live entry.
    assert len(engine._heap) < 300
    assert engine.pending() == len(keep)
    executed = engine.run()
    assert executed == len(keep)
    assert engine.pending() == 0
