"""Regression tests for the kernel fast paths.

The engine's due lane, inline process stepping, lazy-cancellation
accounting, and heap compaction are pure optimizations: every test here
pins an ordering or accounting property that must match what a plain
(time, sequence) heap would produce.
"""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import SimEvent
from repro.sim.process import Delay, Process, Wait


# -- due-lane ordering --------------------------------------------------------


def test_zero_delay_fifo_matches_seq_order():
    """Mixed delay-0 and delayed entries run in exact (time, seq) order."""
    engine = Engine()
    order = []

    def at_time_5():
        # Scheduled during the time-5 action: delay 0 lands in the due
        # lane, behind every heap entry already at time 5.
        engine.schedule(0, lambda: order.append("due1"))
        engine.schedule(0, lambda: order.append("due2"))

    engine.schedule(5, at_time_5)
    engine.schedule(5, lambda: order.append("heap1"))
    engine.schedule(5, lambda: order.append("heap2"))
    engine.run()
    # Heap entries at time 5 were scheduled first, so they precede the
    # due-lane entries even though the lane was filled mid-step.
    assert order == ["heap1", "heap2", "due1", "due2"]


def test_due_lane_drains_before_time_advances():
    engine = Engine()
    order = []
    engine.schedule(3, lambda: engine.schedule(0, lambda: order.append(("z", engine.now))))
    engine.schedule(4, lambda: order.append(("later", engine.now)))
    engine.run()
    assert order == [("z", 3), ("later", 4)]


def test_chained_zero_delays_stay_at_now():
    engine = Engine()
    depths = []

    def chain(depth):
        depths.append((depth, engine.now))
        if depth:
            engine.schedule(0, lambda: chain(depth - 1))

    engine.schedule(2, lambda: chain(3))
    engine.run()
    assert depths == [(3, 2), (2, 2), (1, 2), (0, 2)]


# -- cancellation accounting --------------------------------------------------


def test_cancel_due_lane_entry():
    engine = Engine()
    seen = []
    engine.schedule(1, lambda: None)
    engine.run()  # move time to 1 so delay-0 goes to the due lane mid-run

    def at_2():
        handle = engine.schedule(0, lambda: seen.append("cancelled"))
        engine.schedule(0, lambda: seen.append("kept"))
        handle.cancel()

    engine.schedule(1, at_2)
    engine.run()
    assert seen == ["kept"]


def test_pending_tracks_due_and_heap_cancellations():
    engine = Engine()
    due = engine.schedule(0, lambda: None)
    heap = engine.schedule(5, lambda: None)
    engine.schedule(6, lambda: None)
    assert engine.pending() == 3
    due.cancel()
    assert engine.pending() == 2
    heap.cancel()
    assert engine.pending() == 1
    engine.run()
    assert engine.pending() == 0


def test_cancel_after_execution_is_harmless():
    engine = Engine()
    handle = engine.schedule(1, lambda: None)
    engine.run()
    assert engine.pending() == 0
    handle.cancel()  # must not corrupt the live-entry accounting
    assert engine.pending() == 0
    engine.schedule(1, lambda: None)
    assert engine.pending() == 1


def test_double_cancel_counts_once():
    engine = Engine()
    handle = engine.schedule(5, lambda: None)
    engine.schedule(6, lambda: None)
    handle.cancel()
    handle.cancel()
    assert engine.pending() == 1


def test_heap_compaction_drops_cancelled_entries():
    engine = Engine()
    keep = []
    handles = [engine.schedule(i + 1, lambda i=i: keep.append(i)) for i in range(200)]
    # Cancel enough to cross the compaction threshold (>= 64 cancelled
    # and more cancelled than live).
    for handle in handles[:150]:
        handle.cancel()
    assert engine.pending() == 50
    # Compaction ran: the heap holds far fewer than the 150 cancelled
    # entries, and what garbage remains is below the compaction floor.
    assert len(engine._heap) < 150
    assert len(engine._heap) - engine.pending() < Engine._COMPACT_MIN
    engine.run()
    assert keep == list(range(150, 200))  # survivors in original order


def test_compaction_during_run_uses_live_heap():
    """Cancelling mid-run triggers compaction; run() must see the result."""
    engine = Engine()
    seen = []
    handles = [engine.schedule(10 + i, lambda i=i: seen.append(i)) for i in range(200)]

    def cancel_most():
        for handle in handles[:150]:
            handle.cancel()

    engine.schedule(1, cancel_most)
    engine.run()
    assert seen == list(range(150, 200))
    assert engine.pending() == 0


# -- run(until) ---------------------------------------------------------------


def test_run_until_leaves_boundary_event_untouched():
    """Regression: the boundary event used to be popped and re-pushed."""
    engine = Engine()
    seen = []
    engine.schedule(10, lambda: seen.append(10))
    engine.schedule(20, lambda: seen.append(20))
    engine.schedule(20, lambda: seen.append(21))
    for until in (12, 14, 16, 18):
        engine.run(until=until)
        assert engine.now == until
        assert engine.pending() == 2
    engine.run()
    assert seen == [10, 20, 21]  # original tie order preserved


def test_run_until_discards_cancelled_boundary_event():
    engine = Engine()
    seen = []
    handle = engine.schedule(20, lambda: seen.append("no"))
    engine.schedule(30, lambda: seen.append("yes"))
    handle.cancel()
    engine.run(until=25)
    assert engine.now == 25
    assert engine.pending() == 1
    engine.run()
    assert seen == ["yes"]


# -- inline stepping ----------------------------------------------------------


def test_single_process_zero_delay_chain_counts_every_step():
    engine = Engine()

    def body():
        for _ in range(10):
            yield Delay(0)

    Process(engine, body(), name="solo")
    # 1 initial step + 10 zero-delay resumes, whether inlined or not.
    assert engine.run() == 11


def test_concurrent_zero_delay_processes_interleave():
    engine = Engine()
    order = []

    def body(tag):
        for i in range(3):
            order.append((tag, i))
            yield Delay(0)

    Process(engine, body("a"), name="a")
    Process(engine, body("b"), name="b")
    engine.run()
    # Strict round-robin: inlining must not let one process run ahead.
    assert order == [
        ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2),
    ]


def test_max_events_exact_with_inline_steps():
    def make():
        engine = Engine()

        def body():
            for _ in range(50):
                yield Delay(0)

        Process(engine, body(), name="solo")
        return engine

    # The inline fast path must honor the budget exactly: executing the
    # whole chain takes 51 events; any cap below that stops on the cap.
    assert make().run(max_events=51) == 51
    for cap in (1, 2, 7, 50):
        assert make().run(max_events=cap) == cap


def test_stop_during_inline_chain():
    engine = Engine()
    steps = []

    def body():
        for i in range(100):
            steps.append(i)
            if i == 4:
                engine.stop()
            yield Delay(0)

    Process(engine, body(), name="stopper")
    engine.run()
    # stop() takes effect before the next step, inlined or scheduled.
    assert steps == [0, 1, 2, 3, 4]
    engine.run()
    assert steps[-1] > 4  # resumes where it left off


def test_fired_wait_value_delivery():
    engine = Engine()
    event = SimEvent(name="pre-fired")
    event.fire("payload")
    got = []

    def body():
        value = yield Wait(event)
        got.append(value)

    Process(engine, body(), name="waiter")
    engine.run()
    assert got == ["payload"]


def test_multi_waiter_wake_order_is_registration_order():
    engine = Engine()
    event = SimEvent(name="gate")
    order = []

    def waiter(tag):
        yield Wait(event)
        order.append(tag)

    for tag in ("w0", "w1", "w2"):
        Process(engine, waiter(tag), name=tag)
    engine.schedule(5, lambda: event.fire(None))
    engine.run()
    assert order == ["w0", "w1", "w2"]


def test_wake_is_own_event_not_inlined_into_fire():
    """The firing action finishes before any woken process resumes."""
    engine = Engine()
    event = SimEvent(name="gate")
    order = []

    def waiter():
        yield Wait(event)
        order.append("woken")

    def firer():
        event.fire(None)
        order.append("after-fire")

    Process(engine, waiter(), name="w")
    engine.schedule(5, firer)
    engine.run()
    assert order == ["after-fire", "woken"]


def test_consume_inline_step_outside_run_declines():
    engine = Engine()
    assert engine.consume_inline_step() is False


def test_reentrant_run_rejected():
    engine = Engine()

    def reenter():
        with pytest.raises(SimulationError):
            engine.run()

    engine.schedule(1, reenter)
    engine.run()
