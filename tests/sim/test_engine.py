"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_time_starts_at_zero():
    assert Engine().now == 0


def test_actions_run_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(30, lambda: order.append("c"))
    engine.schedule(10, lambda: order.append("a"))
    engine.schedule(20, lambda: order.append("b"))
    engine.run()
    assert order == ["a", "b", "c"]


def test_ties_broken_by_insertion_order():
    engine = Engine()
    order = []
    for name in "abcde":
        engine.schedule(5, lambda n=name: order.append(n))
    engine.run()
    assert order == list("abcde")


def test_now_advances_to_event_time():
    engine = Engine()
    seen = []
    engine.schedule(42, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [42]
    assert engine.now == 42


def test_zero_delay_runs_at_current_time():
    engine = Engine()
    seen = []
    engine.schedule(7, lambda: engine.schedule(0, lambda: seen.append(engine.now)))
    engine.run()
    assert seen == [7]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    engine = Engine()
    seen = []
    engine.schedule_at(15, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [15]


def test_schedule_at_past_rejected():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)


def test_cancellation_skips_action():
    engine = Engine()
    seen = []
    handle = engine.schedule(5, lambda: seen.append("no"))
    handle.cancel()
    engine.schedule(6, lambda: seen.append("yes"))
    engine.run()
    assert seen == ["yes"]


def test_run_until_pauses_and_resumes():
    engine = Engine()
    seen = []
    engine.schedule(10, lambda: seen.append(10))
    engine.schedule(20, lambda: seen.append(20))
    engine.run(until=15)
    assert seen == [10]
    assert engine.now == 15
    engine.run()
    assert seen == [10, 20]


def test_run_returns_event_count():
    engine = Engine()
    for _ in range(4):
        engine.schedule(1, lambda: None)
    assert engine.run() == 4


def test_max_events_guard():
    engine = Engine()

    def rearm():
        engine.schedule(1, rearm)

    engine.schedule(1, rearm)
    executed = engine.run(max_events=50)
    assert executed == 50


def test_stop_request():
    engine = Engine()
    seen = []
    engine.schedule(1, lambda: (seen.append(1), engine.stop()))
    engine.schedule(2, lambda: seen.append(2))
    engine.run()
    assert seen == [1]


def test_pending_counts_live_actions():
    engine = Engine()
    h1 = engine.schedule(1, lambda: None)
    engine.schedule(2, lambda: None)
    assert engine.pending() == 2
    h1.cancel()
    assert engine.pending() == 1


def test_dispatch_hook_sees_every_dispatch():
    engine = Engine()
    seen = []
    engine.dispatch_hook = lambda now: seen.append(now)
    engine.schedule(5, lambda: None)
    engine.schedule(5, lambda: None)
    engine.schedule(9, lambda: None)
    executed = engine.run()
    assert executed == 3
    assert seen == [5, 5, 9]


def test_dispatch_hook_skips_cancelled_entries():
    engine = Engine()
    seen = []
    engine.dispatch_hook = lambda now: seen.append(now)
    handle = engine.schedule(3, lambda: None)
    engine.schedule(7, lambda: None)
    handle.cancel()
    engine.run()
    assert seen == [7]


def test_dispatch_hook_composes_with_until():
    engine = Engine()
    seen = []
    engine.dispatch_hook = lambda now: seen.append(now)
    engine.schedule(2, lambda: None)
    engine.schedule(8, lambda: None)
    engine.run(until=5)
    assert seen == [2]
    assert engine.now == 5
    engine.run()
    assert seen == [2, 8]
