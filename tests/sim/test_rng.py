"""Determinism tests for named RNG streams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(7).stream("cache")
    b = RngStreams(7).stream("cache")
    assert list(a.integers(1000, size=10)) == list(b.integers(1000, size=10))


def test_different_names_independent():
    streams = RngStreams(7)
    a = list(streams.stream("cache").integers(1 << 30, size=8))
    b = list(streams.stream("graph").integers(1 << 30, size=8))
    assert a != b


def test_different_seeds_differ():
    a = list(RngStreams(1).stream("x").integers(1 << 30, size=8))
    b = list(RngStreams(2).stream("x").integers(1 << 30, size=8))
    assert a != b


def test_stream_is_cached_not_restarted():
    streams = RngStreams(7)
    first = streams.stream("s").integers(1 << 30)
    second = streams.stream("s").integers(1 << 30)
    fresh = RngStreams(7).stream("s")
    assert first == fresh.integers(1 << 30)
    assert second == fresh.integers(1 << 30)


def test_touch_order_does_not_matter():
    one = RngStreams(9)
    one.stream("a")
    values_b_one = list(one.stream("b").integers(1 << 30, size=4))
    two = RngStreams(9)
    values_b_two = list(two.stream("b").integers(1 << 30, size=4))
    assert values_b_one == values_b_two


def test_fork_is_independent_of_parent():
    parent = RngStreams(3)
    child = parent.fork("child")
    a = list(parent.stream("x").integers(1 << 30, size=4))
    b = list(child.stream("x").integers(1 << 30, size=4))
    assert a != b
    # And reproducible.
    child2 = RngStreams(3).fork("child")
    assert b == list(child2.stream("x").integers(1 << 30, size=4))
