"""Unit tests for the declared bulk-run script and unified signatures."""

import pytest

from repro.sim.batch import BatchScript, is_instrumented, reject_unknown_kwargs


def test_script_builder_chains_and_counts():
    script = (
        BatchScript()
        .read("r", 0, 8)
        .compute(5)
        .write("r", 0, 8, values=[0] * 8)
        .compute_flops(3)
    )
    assert len(script) == 4
    assert [op[0] for op in script.ops] == [
        "read", "compute", "write", "compute_flops",
    ]
    # The verdict memo belongs to the executing backend, not the builder.
    assert script.memos is None


def test_reject_unknown_kwargs_names_legacy_replacement():
    with pytest.raises(TypeError, match="did you mean 'start'"):
        reject_unknown_kwargs("read", {"lo": 0}, ("start", "stop"))
    with pytest.raises(TypeError, match="did you mean 'stop'"):
        reject_unknown_kwargs("read", {"hi": 8}, ("start", "stop"))


def test_reject_unknown_kwargs_suggests_close_match():
    with pytest.raises(TypeError, match="did you mean 'values'"):
        reject_unknown_kwargs("write", {"value": 1}, ("start", "stop", "values"))


def test_reject_unknown_kwargs_without_hint():
    with pytest.raises(TypeError, match="unexpected keyword argument 'zzz'"):
        reject_unknown_kwargs("read", {"zzz": 1}, ("start", "stop"))
    # No kwargs: a no-op, not an error.
    reject_unknown_kwargs("read", {}, ("start", "stop"))


def test_is_instrumented_detects_instance_rebinding():
    class Ctx:
        def read(self):
            pass

    ctx = Ctx()
    assert not is_instrumented(ctx)
    ctx.read = lambda: None  # what the checker/tracer does per instance
    assert is_instrumented(ctx)
