"""Unit tests for the FIFO resource (directory-contention model)."""

import pytest

from repro.sim.engine import Engine
from repro.sim.events import SimEvent
from repro.sim.process import Process, Wait
from repro.sim.resource import FifoResource


def test_single_request_serves_after_service_time():
    engine = Engine()
    resource = FifoResource(engine)
    done_times = []
    event = resource.request(10)
    event.add_callback(lambda _q: done_times.append(engine.now))
    engine.run()
    assert done_times == [10]


def test_fifo_queueing_serializes():
    engine = Engine()
    resource = FifoResource(engine)
    finish = {}
    for name, service in (("a", 10), ("b", 5), ("c", 1)):
        resource.request(service).add_callback(
            lambda _q, n=name: finish.setdefault(n, engine.now)
        )
    engine.run()
    # a: 0-10, b: 10-15, c: 15-16 — strict FIFO regardless of service time.
    assert finish == {"a": 10, "b": 15, "c": 16}


def test_queue_delay_reported_to_caller():
    engine = Engine()
    resource = FifoResource(engine)
    delays = []
    resource.request(10).add_callback(delays.append)
    resource.request(10).add_callback(delays.append)
    engine.run()
    assert delays == [0, 10]
    assert resource.mean_queue_delay() == 5.0


def test_later_arrivals_queue_behind_in_service():
    engine = Engine()
    resource = FifoResource(engine)
    finish = []
    resource.request(20).add_callback(lambda _q: finish.append(("first", engine.now)))
    engine.schedule(
        5,
        lambda: resource.request(3).add_callback(
            lambda _q: finish.append(("second", engine.now))
        ),
    )
    engine.run()
    assert finish == [("first", 20), ("second", 23)]


def test_resource_usable_from_process():
    engine = Engine()
    resource = FifoResource(engine)
    log = []

    def body(tag, service):
        queue_delay = yield Wait(resource.request(service))
        log.append((tag, engine.now, queue_delay))

    Process(engine, body("p0", 8))
    Process(engine, body("p1", 8))
    engine.run()
    assert log == [("p0", 8, 0), ("p1", 16, 8)]


def test_negative_service_rejected():
    engine = Engine()
    resource = FifoResource(engine)
    with pytest.raises(ValueError):
        resource.request(-1)


def test_instrumentation_totals():
    engine = Engine()
    resource = FifoResource(engine)
    for _ in range(4):
        resource.request(5)
    engine.run()
    assert resource.requests_served == 4
    assert resource.total_service_cycles == 20
    assert resource.total_queue_cycles == 0 + 5 + 10 + 15
