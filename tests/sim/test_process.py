"""Unit tests for generator-based processes."""

import pytest

from repro.sim.engine import Engine
from repro.sim.events import SimEvent
from repro.sim.process import Delay, Process, ProcessCrash, Wait


def test_delay_advances_local_time():
    engine = Engine()
    times = []

    def body():
        yield Delay(5)
        times.append(engine.now)
        yield Delay(7)
        times.append(engine.now)

    Process(engine, body())
    engine.run()
    assert times == [5, 12]


def test_return_value_delivered_via_done_event():
    engine = Engine()

    def body():
        yield Delay(1)
        return 42

    proc = Process(engine, body())
    engine.run()
    assert proc.finished
    assert proc.result() == 42


def test_wait_receives_event_value():
    engine = Engine()
    event = SimEvent()
    got = []

    def waiter():
        value = yield Wait(event)
        got.append((engine.now, value))

    Process(engine, waiter())
    engine.schedule(9, lambda: event.fire("payload"))
    engine.run()
    assert got == [(9, "payload")]


def test_wait_on_already_fired_event():
    engine = Engine()
    event = SimEvent()
    event.fire("early")
    got = []

    def waiter():
        yield Delay(3)
        value = yield Wait(event)
        got.append(value)

    Process(engine, waiter())
    engine.run()
    assert got == ["early"]


def test_multiple_waiters_all_released():
    engine = Engine()
    event = SimEvent()
    got = []

    def waiter(tag):
        value = yield Wait(event)
        got.append((tag, value))

    for i in range(3):
        Process(engine, waiter(i))
    engine.schedule(4, lambda: event.fire("go"))
    engine.run()
    assert sorted(got) == [(0, "go"), (1, "go"), (2, "go")]


def test_yield_from_composes_subroutines():
    engine = Engine()

    def helper(n):
        yield Delay(n)
        return n * 2

    def body():
        a = yield from helper(3)
        b = yield from helper(4)
        return a + b

    proc = Process(engine, body())
    engine.run()
    assert proc.result() == 14
    assert engine.now == 7


def test_crash_is_wrapped_and_reported():
    engine = Engine()

    def body():
        yield Delay(1)
        raise ValueError("boom")

    proc = Process(engine, body(), name="crasher")
    with pytest.raises(ProcessCrash):
        engine.run()
    assert proc.crash is not None
    assert isinstance(proc.crash.original, ValueError)


def test_bad_yield_type_crashes():
    engine = Engine()

    def body():
        yield "not a command"

    with pytest.raises(ProcessCrash):
        Process(engine, body())
        engine.run()


def test_result_before_finish_raises():
    engine = Engine()

    def body():
        yield Delay(10)

    proc = Process(engine, body())
    with pytest.raises(RuntimeError):
        proc.result()


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1)


def test_event_fires_once_only():
    event = SimEvent("once")
    event.fire(1)
    with pytest.raises(RuntimeError):
        event.fire(2)
