"""Differential backend suite: batched vs reference, bit for bit.

The batched execution backend promises to change *nothing* about a
simulation except its wall-clock speed. These tests hold it to that
promise the strongest way available: run every experiment under both
backends and require the resulting :class:`RunRecord`\\ s to be equal in
every simulated fact — cycle totals, event counts, per-category
breakdowns, check outcomes, rendered tables. Only provenance may differ
(the cache key includes the backend; elapsed wall time obviously
varies).

The fastest experiments run in tier-1; the rest are ``slow``. The
litmus and stress suites additionally re-run under both backends: the
memory-consistency invariants must hold identically, with identical
outcome histograms.
"""

import pytest

from repro import api

#: exp_id -> overrides shrinking the run to differential-test size.
#: Every experiment keeps its default shape (strategies, proc counts,
#: protocol variants); only the workload is scaled down.
SMALL = {
    "mse": {"procs": 4, "app": {"bodies": 16, "elements_per_body": 4,
                                "iterations": 3}},
    "gauss": {"procs": 4, "app": {"n": 64}},
    "gauss_collectives": {"procs": 8, "app": {"n": 48}},
    "gauss_contention": {"app": {"n": 48}},
    "em3d": {"procs": 4, "app": {"nodes_per_proc": 40, "degree": 4,
                                 "iterations": 3}},
    "em3d_bigcache": {"procs": 4, "app": {"nodes_per_proc": 40, "degree": 4,
                                          "iterations": 3}},
    "em3d_localalloc": {"procs": 4, "app": {"nodes_per_proc": 40, "degree": 4,
                                            "iterations": 3}},
    "em3d_protocols": {"procs": 4, "app": {"nodes_per_proc": 40, "degree": 4,
                                           "iterations": 3}},
    "lcp": {"procs": 4, "app": {"n": 96}},
    "alcp": {"procs": 4, "app": {"n": 96}},
    "validation": {},
}

#: Record fields allowed to differ between backends: provenance, not
#: simulated facts.
PROVENANCE = ("cache_key", "config", "elapsed_seconds", "cached")

TIER1 = ("mse", "validation")
HEAVY = tuple(exp for exp in SMALL if exp not in TIER1)


def _record_pair(exp_id):
    """Fresh records for both backends, disk cache bypassed."""
    records = {}
    for backend in ("batched", "reference"):
        api.clear_memory_cache()
        overrides = dict(SMALL[exp_id], backend=backend)
        records[backend] = api.record_for(exp_id, overrides, use_cache=False)
    return records["batched"], records["reference"]


def _assert_identical(batched, reference):
    a = batched.to_jsonable()
    b = reference.to_jsonable()
    assert a["config"]["backend"] == "batched"
    assert b["config"]["backend"] == "reference"
    # Different backends must never share a cache key.
    assert a["cache_key"] != b["cache_key"]
    for key in PROVENANCE:
        a.pop(key, None)
        b.pop(key, None)
    assert a == b


@pytest.mark.parametrize("exp_id", TIER1)
def test_backends_bit_identical(exp_id):
    _assert_identical(*_record_pair(exp_id))


@pytest.mark.slow
@pytest.mark.parametrize("exp_id", HEAVY)
def test_backends_bit_identical_slow(exp_id):
    _assert_identical(*_record_pair(exp_id))


# -- memory-model differentials ----------------------------------------------


def _record_consistency_pair(exp_id, backend):
    """Fresh records with default vs. explicit-sc consistency."""
    records = {}
    for consistency in (None, "sc"):
        api.clear_memory_cache()
        overrides = dict(SMALL[exp_id], backend=backend)
        if consistency is not None:
            overrides["consistency"] = consistency
        records[consistency] = api.record_for(exp_id, overrides, use_cache=False)
    return records[None], records["sc"]


@pytest.mark.parametrize("backend", ("batched", "reference"))
@pytest.mark.parametrize("exp_id", TIER1)
def test_explicit_sc_identical_to_default(exp_id, backend):
    """consistency="sc" is the default, spelled out: same key, same
    record, bit for bit — the relaxed-model machinery leaves the SC
    path untouched on both backends."""
    default, explicit = _record_consistency_pair(exp_id, backend)
    assert default.to_jsonable()["config"]["consistency"] == "sc"
    assert default.cache_key == explicit.cache_key
    a, b = default.to_jsonable(), explicit.to_jsonable()
    for key in ("elapsed_seconds", "cached"):
        a.pop(key, None)
        b.pop(key, None)
    assert a == b


@pytest.mark.slow
@pytest.mark.parametrize("exp_id", HEAVY)
def test_explicit_sc_identical_to_default_slow(exp_id):
    for backend in ("batched", "reference"):
        default, explicit = _record_consistency_pair(exp_id, backend)
        assert default.cache_key == explicit.cache_key
        a, b = default.to_jsonable(), explicit.to_jsonable()
        for key in ("elapsed_seconds", "cached"):
            a.pop(key, None)
            b.pop(key, None)
        assert a == b


@pytest.mark.parametrize("exp_id", TIER1)
def test_relaxed_records_identical_across_backends(exp_id):
    """Under relaxation both backends build the same scalar
    RelaxedSmContext (batched bulk steps assume SC visibility), so
    tso records must be bit-identical across backends too — and must
    never share a cache key with the sc records."""
    records = {}
    for backend in ("batched", "reference"):
        api.clear_memory_cache()
        overrides = dict(SMALL[exp_id], backend=backend, consistency="tso")
        records[backend] = api.record_for(exp_id, overrides, use_cache=False)
    a = records["batched"].to_jsonable()
    b = records["reference"].to_jsonable()
    assert a["config"]["consistency"] == "tso"
    for key in PROVENANCE:
        a.pop(key, None)
        b.pop(key, None)
    assert a == b


# -- invariant suites under the batched backend ------------------------------


def test_litmus_identical_histograms_across_backends():
    from repro.check.litmus import LITMUS_TESTS, run_suite

    seeds = tuple(range(6))
    batched = run_suite(LITMUS_TESTS, seeds=seeds, backend="batched")
    reference = run_suite(LITMUS_TESTS, seeds=seeds, backend="reference")
    assert batched == reference
    assert set(batched) == {t.name for t in LITMUS_TESTS}


def test_sm_stress_clean_and_identical_across_backends():
    from repro.check.stress import run_sm_stress

    batched = run_sm_stress(ops=300, seed=7, backend="batched")
    reference = run_sm_stress(ops=300, seed=7, backend="reference")
    assert batched == reference


def test_mp_stress_clean_and_identical_across_backends():
    from repro.check.stress import run_mp_stress

    batched = run_mp_stress(ops=150, seed=7, backend="batched")
    reference = run_mp_stress(ops=150, seed=7, backend="reference")
    assert batched == reference
