"""Executor and API tests: grouping, parallelism, determinism, cache.

The simulation-running tests use sweep overrides to shrink workloads
(the harness's own parameterization feature), so they run in seconds.
"""

import warnings

import pytest

from repro.core import experiments
from repro.runner import api
from repro.runner.cache import ResultCache
from repro.runner.config import ExperimentConfig
from repro.runner.executor import group_root, plan_groups

#: A small Gauss pair: the cheapest real two-machine experiment.
SMALL_GAUSS = {"procs": 4, "app": {"n": 40}}


@pytest.fixture(autouse=True)
def _fresh_memo():
    """The in-process memo is module state; isolate it per test."""
    api.clear_memory_cache()
    yield
    api.clear_memory_cache()


# ---------------------------------------------------------------------------
# Group planning.
# ---------------------------------------------------------------------------


def test_group_root_follows_after_chain():
    assert group_root("em3d_bigcache") == "em3d"
    assert group_root("em3d_localalloc") == "em3d"
    assert group_root("alcp") == "lcp"
    assert group_root("gauss") == "gauss"


def test_plan_groups_colocates_baselines():
    items = [(exp_id, None) for exp_id in experiments.EXPERIMENTS]
    groups = plan_groups(items)
    by_member = {item[0]: tuple(i[0] for i in g) for g in groups for item in g}
    assert by_member["em3d_bigcache"] == ("em3d", "em3d_bigcache", "em3d_localalloc")
    assert by_member["alcp"] == ("lcp", "alcp")
    assert by_member["validation"] == ("validation",)
    # A baseline always precedes its dependents within the group.
    assert by_member["em3d"].index("em3d") == 0
    # Full coverage, no duplication.
    assert sorted(by_member) == sorted(experiments.EXPERIMENTS)
    assert sum(len(g) for g in groups) == len(experiments.EXPERIMENTS)


# ---------------------------------------------------------------------------
# run_raw / run_experiment compatibility.
# ---------------------------------------------------------------------------


def test_run_raw_memoizes_per_config():
    api.clear_memory_cache()
    first = api.run_raw("validation")
    assert api.run_raw("validation") is first
    # A different configuration is a different memo slot.
    swept = api.run_raw("validation", {"seed": 7})
    assert swept is not first
    api.clear_memory_cache()


def test_run_experiment_wrapper_warns_but_still_works():
    api.clear_memory_cache()
    with pytest.warns(DeprecationWarning):
        pair = experiments.run_experiment("gauss", overrides=SMALL_GAUSS)
    assert pair.name == "Gauss"
    assert pair.mp_result.board.num_procs == 4
    api.clear_memory_cache()


def test_clear_cache_shim_warns_and_delegates():
    api.clear_memory_cache()
    first = api.run_raw("validation")
    with pytest.warns(DeprecationWarning):
        experiments.clear_cache()
    assert api.run_raw("validation") is not first
    api.clear_memory_cache()


# ---------------------------------------------------------------------------
# Cache behavior through the API.
# ---------------------------------------------------------------------------


def _counting_spec(counter):
    def runner(config):
        counter.append(config)
        return {"value": 1.0}

    return experiments.ExperimentSpec(
        id="fake_counting",
        title="fake",
        paper_tables="none",
        description="test-only",
        runner=runner,
        config=ExperimentConfig(exp_id="fake_counting"),
        shape=lambda result: [("has value", result["value"] == 1.0, "ok")],
        paper={"n/a": 0},
    )


def test_warm_cache_runs_zero_simulations(tmp_path, monkeypatch):
    counter = []
    monkeypatch.setitem(
        experiments.EXPERIMENTS, "fake_counting", _counting_spec(counter)
    )
    cache = ResultCache(tmp_path)
    cold = api.execute(["fake_counting"], jobs=1, cache=cache)
    assert len(counter) == 1
    assert cold["fake_counting"].cached is False
    api.clear_memory_cache()  # even the in-process memo is gone
    warm = api.execute(["fake_counting"], jobs=1, cache=cache)
    assert len(counter) == 1  # nothing re-simulated
    assert warm["fake_counting"].cached is True
    assert warm["fake_counting"].checks == cold["fake_counting"].checks
    assert warm["fake_counting"].summary == cold["fake_counting"].summary


def test_force_bypasses_cache(tmp_path, monkeypatch):
    counter = []
    monkeypatch.setitem(
        experiments.EXPERIMENTS, "fake_counting", _counting_spec(counter)
    )
    cache = ResultCache(tmp_path)
    api.execute(["fake_counting"], jobs=1, cache=cache)
    api.clear_memory_cache()
    api.execute(["fake_counting"], jobs=1, cache=cache, force=True)
    assert len(counter) == 2


def test_record_for_serves_fidelity_from_cache(tmp_path, monkeypatch):
    counter = []
    monkeypatch.setitem(
        experiments.EXPERIMENTS, "fake_counting", _counting_spec(counter)
    )
    cache = ResultCache(tmp_path)
    first = api.record_for("fake_counting", cache=cache)
    api.clear_memory_cache()
    second = api.record_for("fake_counting", cache=cache)
    assert len(counter) == 1
    assert second.cached is True
    assert second.summary == first.summary


# ---------------------------------------------------------------------------
# Worker-process determinism and --jobs equivalence.
# ---------------------------------------------------------------------------


def _strip_timing(record):
    data = record.to_jsonable()
    data.pop("elapsed_seconds")
    return data


@pytest.mark.slow
def test_worker_vs_inprocess_determinism(tmp_path):
    """A spawned worker must produce bit-identical cycle counts."""
    api.clear_memory_cache()
    overrides = {"gauss": SMALL_GAUSS}
    inproc = api.execute(
        ["gauss"], jobs=1, cache=ResultCache(tmp_path / "a"),
        overrides=overrides,
    )["gauss"]
    api.clear_memory_cache()
    worker = api.execute(
        ["gauss"], jobs=2, cache=ResultCache(tmp_path / "b"),
        overrides=overrides,
    )["gauss"]
    assert worker.cached is False
    assert _strip_timing(worker) == _strip_timing(inproc)
    # The headline quantities really are cycle counts, not just shapes.
    assert worker.summary["mp"]["overall"]["total"] > 0
    assert (
        worker.summary["mp"]["overall"]["total"]
        == inproc.summary["mp"]["overall"]["total"]
    )
    api.clear_memory_cache()


@pytest.mark.slow
def test_jobs_1_and_jobs_4_equivalent(tmp_path):
    api.clear_memory_cache()
    ids = ["validation", "gauss"]
    overrides = {"gauss": SMALL_GAUSS, "validation": {"seed": 11}}
    serial = api.execute(
        ids, jobs=1, cache=ResultCache(tmp_path / "s"), overrides=overrides
    )
    api.clear_memory_cache()
    parallel = api.execute(
        ids, jobs=4, cache=ResultCache(tmp_path / "p"), overrides=overrides
    )
    assert list(serial) == list(parallel) == ids
    for exp_id in ids:
        assert _strip_timing(serial[exp_id]) == _strip_timing(parallel[exp_id])
    assert serial["validation"].all_ok
    api.clear_memory_cache()


def test_dependent_shape_checks_work_in_one_group(tmp_path, monkeypatch):
    """An `after` experiment's checks can reach their baseline's result."""
    calls = []

    def base_runner(config):
        calls.append("base")
        return {"total": 10.0}

    def dep_runner(config):
        calls.append("dep")
        return {"total": 5.0}

    def dep_shape(result):
        base = api.run_raw("fake_base")
        return [("improves", result["total"] < base["total"], "ok")]

    base_spec = experiments.ExperimentSpec(
        id="fake_base", title="b", paper_tables="none", description="d",
        runner=base_runner, config=ExperimentConfig(exp_id="fake_base"),
        shape=lambda r: [("ran", True, "ok")], paper={"n/a": 0},
    )
    dep_spec = experiments.ExperimentSpec(
        id="fake_dep", title="d", paper_tables="none", description="d",
        runner=dep_runner, config=ExperimentConfig(exp_id="fake_dep"),
        shape=dep_shape, paper={"n/a": 0}, after=("fake_base",),
    )
    monkeypatch.setitem(experiments.EXPERIMENTS, "fake_base", base_spec)
    monkeypatch.setitem(experiments.EXPERIMENTS, "fake_dep", dep_spec)
    api.clear_memory_cache()
    records = api.execute(
        ["fake_base", "fake_dep"], jobs=1, cache=ResultCache(tmp_path)
    )
    assert records["fake_dep"].all_ok
    # The baseline ran once; the dep's shape check reused the memo.
    assert calls == ["base", "dep"]
    api.clear_memory_cache()
