"""Tests for the content-addressed on-disk result cache."""

import json

from repro.core.experiments import EXPERIMENTS
from repro.runner.cache import ResultCache, cache_key
from repro.runner.record import RECORD_SCHEMA, RunRecord


def _record(key: str, exp_id: str = "gauss") -> RunRecord:
    return RunRecord(
        exp_id=exp_id,
        title="t",
        paper_tables="p",
        cache_key=key,
        config={"exp_id": exp_id},
        elapsed_seconds=1.5,
        checks=[["a check", True, "fine"]],
        rendered="table",
        summary={"kind": "scalars", "data": {"x": 1.0}},
    )


def test_cache_key_is_stable_and_content_addressed():
    config = EXPERIMENTS["gauss"].config
    assert cache_key(config) == cache_key(config)
    # Any config change moves the address (invalidation on change).
    assert cache_key(config) != cache_key(config.with_overrides({"seed": 7}))
    assert cache_key(config) != cache_key(config.with_overrides({"procs": 4}))
    assert cache_key(config) != cache_key(
        config.with_overrides({"app": {"n": 96}})
    )
    # Different experiments never collide.
    assert cache_key(config) != cache_key(EXPERIMENTS["mse"].config)


def test_store_load_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    config = EXPERIMENTS["gauss"].config
    record = _record(cache_key(config))
    cache.store(record)
    loaded = cache.load(config)
    assert loaded is not None
    assert loaded.cached is True
    assert loaded.checks == record.checks
    assert loaded.summary == record.summary
    assert loaded.rendered == record.rendered


def test_miss_on_config_change(tmp_path):
    cache = ResultCache(tmp_path)
    config = EXPERIMENTS["gauss"].config
    cache.store(_record(cache_key(config)))
    assert cache.load(config.with_overrides({"app": {"n": 64}})) is None


def test_miss_on_schema_change(tmp_path):
    cache = ResultCache(tmp_path)
    config = EXPERIMENTS["gauss"].config
    record = _record(cache_key(config))
    path = cache.store(record)
    data = json.loads(path.read_text())
    data["schema"] = RECORD_SCHEMA + 1
    path.write_text(json.dumps(data))
    assert cache.load(config) is None


def test_corrupt_file_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    config = EXPERIMENTS["gauss"].config
    path = cache.store(_record(cache_key(config)))
    path.write_text("{not json")
    assert cache.load(config) is None


def test_ls_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.ls() == []
    cache.store(_record(cache_key(EXPERIMENTS["gauss"].config), "gauss"))
    cache.store(_record(cache_key(EXPERIMENTS["mse"].config), "mse"))
    lines = cache.ls()
    assert len(lines) == 2
    assert any("gauss" in line for line in lines)
    assert cache.clear() == 2
    assert cache.ls() == []
    assert cache.clear() == 0


def test_env_var_controls_directory(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert ResultCache().directory == tmp_path / "elsewhere"
