"""Tests for the frozen experiment configurations."""

import pickle

import pytest

from repro.apps.gauss.common import GaussConfig
from repro.core.experiments import EXPERIMENTS
from repro.runner.config import ExperimentConfig


def test_options_are_sorted_and_frozen():
    config = ExperimentConfig(
        exp_id="x", options=(("zeta", 1), ("alpha", 2))
    )
    assert config.options == (("alpha", 2), ("zeta", 1))
    assert config.opt("alpha") == 2
    assert config.opt("missing", 7) == 7
    with pytest.raises(Exception):
        config.procs = 3  # frozen


def test_machine_params_resolution():
    config = ExperimentConfig(exp_id="x", procs=4, cache_bytes=8192)
    params = config.machine_params()
    assert params.common.num_processors == 4
    assert params.common.cache_bytes == 8192
    # No cache override -> the paper's default.
    default = ExperimentConfig(exp_id="x", procs=4).machine_params()
    assert default.common.cache_bytes == 256 * 1024
    # An explicit processor count wins (the contention sweep's lever).
    assert config.machine_params(procs=16).common.num_processors == 16


def test_with_overrides_top_level():
    base = EXPERIMENTS["gauss"].config
    swept = base.with_overrides({"procs": 4, "seed": 7})
    assert (swept.procs, swept.seed) == (4, 7)
    assert base.procs == 8  # original untouched
    assert swept.app == base.app


def test_with_overrides_app_mapping():
    base = EXPERIMENTS["gauss"].config
    swept = base.with_overrides({"app": {"n": 32}})
    assert swept.app.n == 32
    assert swept.app.seed == base.app.seed
    replaced = base.with_overrides({"app": GaussConfig(n=16)})
    assert replaced.app.n == 16


def test_with_overrides_options_merge():
    base = EXPERIMENTS["lcp"].config
    swept = base.with_overrides({"options": {"asynchronous": True}})
    assert swept.opt("asynchronous") is True
    assert base.opt("asynchronous") is False


def test_with_overrides_unknown_key_rejected():
    with pytest.raises(KeyError):
        EXPERIMENTS["gauss"].config.with_overrides({"nope": 1})


def test_app_override_without_app_rejected():
    with pytest.raises(ValueError):
        EXPERIMENTS["validation"].config.with_overrides({"app": {"n": 1}})


def test_configs_are_picklable():
    for spec in EXPERIMENTS.values():
        clone = pickle.loads(pickle.dumps(spec.config))
        assert clone == spec.config


def test_to_jsonable_includes_machine_params():
    data = EXPERIMENTS["em3d"].config.to_jsonable()
    assert data["machine"]["common"]["cache_bytes"] == 16 * 1024
    assert data["app"]["__type__"] == "Em3dConfig"
    assert data["seed"] == 1994


def test_registry_configs_match_ids():
    for exp_id, spec in EXPERIMENTS.items():
        assert spec.config.exp_id == exp_id
