"""Tests for the frozen experiment configurations."""

import pickle

import pytest

from repro.apps.gauss.common import GaussConfig
from repro.core.experiments import EXPERIMENTS
from repro.runner.config import ExperimentConfig


def test_options_are_sorted_and_frozen():
    config = ExperimentConfig(
        exp_id="x", options=(("zeta", 1), ("alpha", 2))
    )
    assert config.options == (("alpha", 2), ("zeta", 1))
    assert config.opt("alpha") == 2
    assert config.opt("missing", 7) == 7
    with pytest.raises(Exception):
        config.procs = 3  # frozen


def test_machine_params_resolution():
    config = ExperimentConfig(exp_id="x", procs=4, cache_bytes=8192)
    params = config.machine_params()
    assert params.common.num_processors == 4
    assert params.common.cache_bytes == 8192
    # No cache override -> the paper's default.
    default = ExperimentConfig(exp_id="x", procs=4).machine_params()
    assert default.common.cache_bytes == 256 * 1024
    # An explicit processor count wins (the contention sweep's lever).
    assert config.machine_params(procs=16).common.num_processors == 16


def test_with_overrides_top_level():
    base = EXPERIMENTS["gauss"].config
    swept = base.with_overrides({"procs": 4, "seed": 7})
    assert (swept.procs, swept.seed) == (4, 7)
    assert base.procs == 8  # original untouched
    assert swept.app == base.app


def test_with_overrides_app_mapping():
    base = EXPERIMENTS["gauss"].config
    swept = base.with_overrides({"app": {"n": 32}})
    assert swept.app.n == 32
    assert swept.app.seed == base.app.seed
    replaced = base.with_overrides({"app": GaussConfig(n=16)})
    assert replaced.app.n == 16


def test_with_overrides_options_merge():
    base = EXPERIMENTS["lcp"].config
    swept = base.with_overrides({"options": {"asynchronous": True}})
    assert swept.opt("asynchronous") is True
    assert base.opt("asynchronous") is False


def test_with_overrides_unknown_key_rejected():
    with pytest.raises(ValueError, match="unknown gauss config override"):
        EXPERIMENTS["gauss"].config.with_overrides({"nope": 1})


def test_with_overrides_suggests_close_match():
    with pytest.raises(ValueError, match="did you mean 'procs'"):
        EXPERIMENTS["gauss"].config.with_overrides({"prcs": 4})
    with pytest.raises(ValueError, match="did you mean 'n'"):
        EXPERIMENTS["gauss"].config.with_overrides({"app": {"nn": 8}})


def test_with_overrides_machine_channel():
    base = EXPERIMENTS["em3d"].config
    swept = base.with_overrides({"machine": {"network_latency": 50}})
    assert swept.machine == (("network_latency", 50),)
    assert swept.machine_params().common.network_latency == 50
    # The base config's resolved params are untouched.
    assert base.machine_params().common.network_latency != 50
    # Merging keeps earlier machine overrides, later ones win per key.
    merged = swept.with_overrides(
        {"machine": {"network_latency": 75, "block_bytes": 64}}
    )
    assert dict(merged.machine) == {"network_latency": 75, "block_bytes": 64}


def test_with_overrides_unknown_machine_field_rejected():
    with pytest.raises(ValueError, match="unknown machine override"):
        EXPERIMENTS["em3d"].config.with_overrides(
            {"machine": {"network_latncy": 50}}
        )


def test_machine_override_changes_cache_identity():
    from repro.runner.cache import cache_key

    base = EXPERIMENTS["em3d"].config
    swept = base.with_overrides({"machine": {"network_latency": 50}})
    assert cache_key(base) != cache_key(swept)
    data = swept.to_jsonable()
    # The override's effect is contained in the resolved params, which
    # to_jsonable already serializes — no new payload field needed.
    assert data["machine"]["common"]["network_latency"] == 50


def test_app_override_without_app_rejected():
    with pytest.raises(ValueError):
        EXPERIMENTS["validation"].config.with_overrides({"app": {"n": 1}})


def test_configs_are_picklable():
    for spec in EXPERIMENTS.values():
        clone = pickle.loads(pickle.dumps(spec.config))
        assert clone == spec.config


def test_to_jsonable_includes_machine_params():
    data = EXPERIMENTS["em3d"].config.to_jsonable()
    assert data["machine"]["common"]["cache_bytes"] == 16 * 1024
    assert data["app"]["__type__"] == "Em3dConfig"
    assert data["seed"] == 1994


def test_registry_configs_match_ids():
    for exp_id, spec in EXPERIMENTS.items():
        assert spec.config.exp_id == exp_id


def test_backend_field_validated_with_suggestion():
    with pytest.raises(ValueError, match="did you mean 'batched'"):
        ExperimentConfig(exp_id="x", backend="bathced")
    with pytest.raises(ValueError, match="unknown backend 'fast'"):
        ExperimentConfig(exp_id="x", backend="fast")


def test_backend_override_changes_cache_identity():
    from repro.runner.cache import cache_key

    base = EXPERIMENTS["mse"].config
    assert base.backend == "batched"
    reference = base.with_overrides({"backend": "reference"})
    assert reference.backend == "reference"
    # The two backends are bit-identical in simulated facts, but records
    # must still say which backend produced them.
    assert cache_key(base) != cache_key(reference)
    assert base.to_jsonable()["backend"] == "batched"
    assert reference.to_jsonable()["backend"] == "reference"


def test_consistency_field_validated_with_suggestion():
    with pytest.raises(ValueError, match="did you mean 'tso'"):
        ExperimentConfig(exp_id="x", consistency="tsso")
    with pytest.raises(ValueError, match="unknown consistency 'weak'"):
        ExperimentConfig(exp_id="x", consistency="weak")


def test_preset_field_validated_with_suggestion():
    with pytest.raises(ValueError, match="did you mean 'multicore'"):
        ExperimentConfig(exp_id="x", preset="multicre")
    with pytest.raises(ValueError, match="unknown preset 'cm5'"):
        ExperimentConfig(exp_id="x", preset="cm5")


def test_consistency_override_changes_cache_identity():
    """Unlike backend, the model changes simulated results — it must be
    both validated and cache-keyed."""
    from repro.runner.cache import cache_key

    base = EXPERIMENTS["mse"].config
    assert base.consistency == "sc"
    tso = base.with_overrides({"consistency": "tso"})
    assert tso.consistency == "tso"
    assert cache_key(base) != cache_key(tso)
    assert base.to_jsonable()["consistency"] == "sc"
    assert tso.to_jsonable()["consistency"] == "tso"


def test_preset_override_flows_through_machine_params():
    """`preset` needs no cache-key entry of its own: its whole effect is
    the resolved machine table, which is already keyed."""
    from repro.arch.params import MachineParams
    from repro.runner.cache import cache_key

    base = EXPERIMENTS["mse"].config
    multi = base.with_overrides({"preset": "multicore"})
    assert multi.machine_params().common.dram_cycles == (
        MachineParams.multicore().common.dram_cycles
    )
    assert cache_key(base) != cache_key(multi)
    # `machine` overrides still apply on top of the preset table.
    tuned = multi.with_overrides({"machine": {"network_latency": 45}})
    assert tuned.machine_params().common.network_latency == 45
    assert tuned.machine_params().common.dram_cycles == (
        MachineParams.multicore().common.dram_cycles
    )
