"""The query layer: filters, salt freshness, the cross-preset pivot."""

import pytest

import repro.runner.cache as cache_mod
from repro.lake import (
    QueryFilters,
    pivot,
    query_runs,
    render_rows,
    rows_to_csv,
)


def test_default_query_returns_fresh_rows_with_headline_metrics(lake):
    rows = query_runs(lake)
    assert len(rows) == 2
    for row in rows:
        assert row["exp_id"] == "em3d"
        assert row["fresh"] is True
        assert row["sm_over_mp"] == pytest.approx(
            row["sm_total"] / row["mp_total"]
        )


def test_filters_narrow_by_preset_and_app(lake):
    only = query_runs(lake, QueryFilters(preset="multicore"))
    assert [row["preset"] for row in only] == ["multicore"]
    assert query_runs(lake, QueryFilters(app="gauss")) == []


def test_unknown_metric_suggests(lake):
    with pytest.raises(ValueError, match="did you mean 'sm_over_mp'"):
        query_runs(lake, QueryFilters(metrics=("sm_over_mpp",)))


def test_stale_rows_hidden_by_default_visible_with_all_salts(lake, monkeypatch):
    ingest_salt = cache_mod.CODE_SALT
    monkeypatch.setattr(cache_mod, "CODE_SALT", "repro-runner-vNEXT")
    assert query_runs(lake) == []
    rows = query_runs(lake, QueryFilters(all_salts=True))
    assert len(rows) == 2
    assert all(row["fresh"] is False for row in rows)
    # The salt column still names the salt the rows were ingested under,
    # so a cross-version comparison stays explicit.
    assert all(row["salt"] == ingest_salt for row in rows)


def test_cross_preset_pivot_answers_from_lake_rows_only(lake):
    # The acceptance scenario: EM3D sm_over_mp under the paper vs
    # multicore presets, purely lake arithmetic — no simulation here.
    rows = query_runs(lake, QueryFilters(app="em3d", metrics=("sm_over_mp",)))
    (row,) = pivot(rows, "preset", "sm_over_mp")
    assert row["exp_id"] == "em3d"
    assert row["paper"] > 1.0  # MP wins EM3D on the paper table
    assert row["multicore"] > 1.0  # and on the multicore table
    assert row["multicore"] != row["paper"]  # distinct machine, distinct ratio


def test_pivot_unknown_column_suggests(lake):
    rows = query_runs(lake)
    with pytest.raises(ValueError, match="cannot pivot on 'presett'"):
        pivot(rows, "presett", "sm_over_mp")


def test_render_rows_and_csv(lake):
    rows = query_runs(lake)
    table = render_rows(rows)
    assert "sm_over_mp" in table.splitlines()[0]
    assert len(table.splitlines()) == 2 + len(rows)
    csv_text = rows_to_csv(rows)
    assert csv_text.splitlines()[0].startswith("exp_id,")
    assert render_rows([]) == "(no rows)"
    assert rows_to_csv([]) == ""
