"""Shared lake fixtures: two tiny EM3D records, simulated once."""

import pytest

#: A grid small enough that the pair simulates in well under a second.
TINY_EM3D = {
    "procs": 2,
    "app": {"nodes_per_proc": 8, "degree": 2, "iterations": 2},
}


@pytest.fixture(scope="session")
def em3d_records():
    """One paper-preset and one multicore-preset EM3D RunRecord."""
    from repro.runner.api import record_for

    paper = record_for("em3d", dict(TINY_EM3D), use_cache=False)
    multicore = record_for(
        "em3d", {**TINY_EM3D, "preset": "multicore"}, use_cache=False
    )
    return paper, multicore


@pytest.fixture
def lake(tmp_path, em3d_records):
    """A fresh lake holding both records."""
    from repro.lake import RunLake

    with RunLake(tmp_path / "lake.sqlite") as store:
        for record in em3d_records:
            assert store.ingest_record(record)
        yield store
