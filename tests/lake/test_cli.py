"""`repro lake` / `repro query` / `repro sweep --glob`: exit codes, plumbing."""

import json
import textwrap

import pytest

from repro.cli import main
from repro.core import experiments
from repro.lake import RunLake
from repro.runner.api import clear_memory_cache
from repro.runner.config import ExperimentConfig


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memory_cache()
    yield
    clear_memory_cache()


@pytest.fixture
def fake_exp(monkeypatch):
    """A registered experiment that runs instantly."""

    def runner(config):
        return {"value": 10.0 * config.procs}

    exp = experiments.ExperimentSpec(
        id="fake_lake", title="f", paper_tables="none", description="d",
        runner=runner, config=ExperimentConfig(exp_id="fake_lake"),
        shape=lambda r: [("ran", True, "ok")], paper={},
    )
    monkeypatch.setitem(experiments.EXPERIMENTS, "fake_lake", exp)
    return exp


# ---------------------------------------------------------------------------
# repro run --lake / repro lake
# ---------------------------------------------------------------------------


def test_run_lake_ingests(fake_exp, tmp_path, capsys):
    lake_path = tmp_path / "l.sqlite"
    assert main(["run", "fake_lake", "--lake",
                 "--lake-path", str(lake_path)]) == 0
    assert "1 new of 1 record(s) ingested" in capsys.readouterr().err
    with RunLake(lake_path) as lake:
        assert lake.counts()["runs"] == 1


def test_lake_ingest_backfills_warm_cache_idempotently(fake_exp, tmp_path, capsys):
    lake_path = str(tmp_path / "l.sqlite")
    assert main(["run", "fake_lake"]) == 0  # warms the result cache
    capsys.readouterr()
    assert main(["lake", "ingest", "--lake-path", lake_path]) == 0
    assert "ingested 1 new of 1" in capsys.readouterr().out
    assert main(["lake", "ingest", "--lake-path", lake_path]) == 0
    assert "ingested 0 new of 1" in capsys.readouterr().out


def test_lake_stats_missing_file_exits_1(tmp_path, capsys):
    assert main(["lake", "stats",
                 "--lake-path", str(tmp_path / "none.sqlite")]) == 1
    assert "no lake at" in capsys.readouterr().err


def test_lake_stats_json_to_stdout(fake_exp, tmp_path, capsys):
    lake_path = str(tmp_path / "l.sqlite")
    assert main(["run", "fake_lake", "--lake", "--lake-path", lake_path]) == 0
    capsys.readouterr()
    assert main(["lake", "stats", "--lake-path", lake_path,
                 "--json", "-"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["runs"] == 1
    assert stats["fresh_runs"] == 1


# ---------------------------------------------------------------------------
# repro query
# ---------------------------------------------------------------------------


def test_query_missing_lake_exits_1(tmp_path, capsys):
    assert main(["query", "--lake-path", str(tmp_path / "none.sqlite")]) == 1
    assert "no lake at" in capsys.readouterr().err


def test_query_unknown_app_exits_2(capsys):
    assert main(["query", "--app", "em3dd"]) == 2
    assert "did you mean 'em3d'" in capsys.readouterr().err


def test_query_unknown_metric_exits_2(fake_exp, tmp_path, capsys):
    lake_path = str(tmp_path / "l.sqlite")
    assert main(["run", "fake_lake", "--lake", "--lake-path", lake_path]) == 0
    assert main(["query", "--lake-path", lake_path,
                 "--metrics", "sm_over_mpp"]) == 2
    assert "did you mean 'sm_over_mp'" in capsys.readouterr().err


def test_query_json_row_count_and_footer(fake_exp, tmp_path, capsys):
    lake_path = str(tmp_path / "l.sqlite")
    assert main(["run", "fake_lake", "--lake", "--lake-path", lake_path]) == 0
    capsys.readouterr()
    assert main(["query", "--lake-path", lake_path, "--json", "-"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 1
    assert rows[0]["exp_id"] == "fake_lake"
    assert rows[0]["fresh"] is True
    assert main(["query", "--lake-path", lake_path]) == 0
    out = capsys.readouterr().out
    assert "1 row(s)" in out
    assert "stale-salt rows hidden" in out


def test_query_pivot_unknown_column_exits_2(fake_exp, tmp_path, capsys):
    lake_path = str(tmp_path / "l.sqlite")
    assert main(["run", "fake_lake", "--lake", "--lake-path", lake_path]) == 0
    assert main(["query", "--lake-path", lake_path,
                 "--pivot", "presett"]) == 2
    assert "cannot pivot on" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# repro sweep --glob
# ---------------------------------------------------------------------------

TINY_GLOB_SWEEP = textwrap.dedent(
    """\
    kind: sweep
    id: {id}
    experiment: em3d
    description: tiny glob spec
    base_overrides: {{procs: 2, app: {{nodes_per_proc: 8, degree: 2, iterations: 2}}}}
    axes:
      - axis: net_latency
        values: [{values}]
    metrics: [mp_total, sm_total]
    """
)


def test_sweep_requires_exactly_one_of_spec_or_glob(capsys):
    assert main(["sweep"]) == 2
    assert "not both" in capsys.readouterr().err
    assert main(["sweep", "em3d-latency", "--glob", "x*.yaml"]) == 2


def test_sweep_glob_no_match_exits_2(capsys):
    assert main(["sweep", "--glob", "specs/sweeps/zzz-nothing-*.yaml"]) == 2
    assert "matched no" in capsys.readouterr().err


def test_sweep_glob_batch_runs_lake_and_suffixed_artifacts(tmp_path, capsys):
    sweeps_dir = tmp_path / "sweeps"
    sweeps_dir.mkdir()
    (sweeps_dir / "glob-a.yaml").write_text(
        TINY_GLOB_SWEEP.format(id="glob-a", values="0, 50")
    )
    (sweeps_dir / "glob-b.yaml").write_text(
        TINY_GLOB_SWEEP.format(id="glob-b", values="0, 100")
    )
    lake_path = tmp_path / "l.sqlite"
    json_path = tmp_path / "out.json"
    assert main(["sweep", "--glob", str(sweeps_dir / "glob-*.yaml"),
                 "--jobs", "1", "--lake", "--lake-path", str(lake_path),
                 "--json", str(json_path)]) == 0
    # Multi-spec exports get the spec name suffixed into the filename.
    for name in ("glob-a", "glob-b"):
        payload = json.loads((tmp_path / f"out-{name}.json").read_text())
        assert payload["spec_name"] == name
        assert len(payload["points"]) == 2
    with RunLake(lake_path) as lake:
        counts = lake.counts()
    assert counts["sweeps"] == 2
    assert counts["sweep_points"] == 4
    # The two grids share the latency-0 point, so three unique runs.
    assert counts["runs"] == 3
