"""RunLake ingestion: idempotency, provenance columns, salt freshness."""

import pytest

import repro.runner.cache as cache_mod
from repro.lake import RunLake, infer_preset, record_metrics
from repro.runner.cache import ResultCache
from tests.lake.conftest import TINY_EM3D


def test_reingest_adds_zero_rows(lake, em3d_records):
    before = lake.counts()
    for record in em3d_records:
        assert lake.ingest_record(record) is False
    assert lake.counts() == before


def test_ingest_cache_is_idempotent(tmp_path):
    from repro.runner.api import record_for

    record_for("em3d", dict(TINY_EM3D))  # lands in the per-test cache dir
    cache = ResultCache()
    with RunLake(tmp_path / "lake.sqlite") as lake:
        assert lake.ingest_cache(cache) == (1, 1)
        assert lake.ingest_cache(cache) == (0, 1)
        assert lake.counts()["runs"] == 1


def test_preset_provenance_column(lake):
    presets = {row["preset"] for row in lake.run_rows()}
    assert presets == {"paper", "multicore"}


def test_preset_inferred_for_legacy_records(tmp_path, em3d_records):
    # Records written before RunRecord.preset existed carry no preset
    # field; the lake reconstructs it from the resolved machine params.
    paper, multicore = em3d_records
    with RunLake(tmp_path / "lake.sqlite") as lake:
        for record in (paper, multicore):
            data = record.to_jsonable()
            data.pop("preset", None)
            assert lake.ingest_record(data)
        presets = {row["preset"] for row in lake.run_rows()}
    assert presets == {"paper", "multicore"}


def test_infer_preset_direct(em3d_records):
    paper, multicore = em3d_records
    assert infer_preset(paper.to_jsonable()["config"]) == "paper"
    assert infer_preset(multicore.to_jsonable()["config"]) == "multicore"
    import copy

    perturbed = copy.deepcopy(paper.to_jsonable()["config"])
    perturbed["machine"]["net_latency"] = 9999
    assert infer_preset(perturbed) == "custom"
    assert infer_preset({}) == "unknown"


def test_fresh_rows_and_stats(lake):
    stats = lake.stats()
    assert stats["runs"] == 2
    assert stats["fresh_runs"] == 2
    assert stats["stale_runs"] == 0
    assert stats["salt"] == cache_mod.CODE_SALT
    assert all(row["fresh"] for row in lake.run_rows())


def test_salt_bump_marks_rows_stale_at_query_time(lake, monkeypatch):
    monkeypatch.setattr(cache_mod, "CODE_SALT", "repro-runner-vNEXT")
    assert not any(row["fresh"] for row in lake.run_rows())
    stats = lake.stats()
    assert stats["fresh_runs"] == 0
    assert stats["stale_runs"] == 2


def test_record_stale_at_ingest_gets_pre_salt(tmp_path, em3d_records, monkeypatch):
    # Bump the salt before ingest: the record was built under the old
    # salt, so the lake can only say it predates the current one.
    monkeypatch.setattr(cache_mod, "CODE_SALT", "repro-runner-vNEXT")
    with RunLake(tmp_path / "lake.sqlite") as lake:
        assert lake.ingest_record(em3d_records[0])
        (row,) = list(lake.run_rows())
    assert row["salt"].startswith("pre-")
    assert row["fresh"] is False


def test_record_metrics_projects_registry_and_breakdown(em3d_records):
    summary = em3d_records[0].to_jsonable()["summary"]
    metrics = record_metrics(summary)
    assert metrics["sm_over_mp"] == pytest.approx(
        metrics["sm_total"] / metrics["mp_total"]
    )
    # The per-side cycle-breakdown components land as mp_*/sm_* columns.
    assert any(k.startswith("mp_") and k != "mp_total" for k in metrics)
    assert any(k.startswith("sm_") and k != "sm_total" for k in metrics)


def test_metrics_rows_written_once_per_run(lake):
    counts = lake.counts()
    assert counts["metrics"] > counts["runs"]  # several metrics per run
    row = next(lake.run_rows())
    assert isinstance(row["sm_over_mp"], float)
