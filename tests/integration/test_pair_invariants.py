"""Cross-machine invariants: the paper's methodological core.

"Because of the commonalities, we can compare where these pairs of
programs spend their time" — which requires that each pair charges
(nearly) the same computation. These tests assert that property for
every application pair, plus accounting sanity: a processor's charged
cycles track its elapsed time.
"""

import numpy as np
import pytest

from repro.apps.em3d.common import Em3dConfig
from repro.apps.em3d.mp import run_em3d_mp
from repro.apps.em3d.sm import run_em3d_sm
from repro.apps.gauss.common import GaussConfig
from repro.apps.gauss.mp import run_gauss_mp
from repro.apps.gauss.sm import run_gauss_sm
from repro.apps.lcp.common import LcpConfig
from repro.apps.lcp.mp import run_lcp_mp
from repro.apps.lcp.sm import run_lcp_sm
from repro.apps.mse.common import MseConfig
from repro.apps.mse.mp import run_mse_mp
from repro.apps.mse.sm import run_mse_sm
from repro.arch.params import MachineParams
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine
from repro.stats.categories import MpCat, SmCat

PARAMS = MachineParams.paper(num_processors=4)


@pytest.fixture(scope="module")
def pairs():
    """Run all four application pairs once at test scale."""
    results = {}
    r, _ = run_gauss_mp(MpMachine(PARAMS, seed=6), GaussConfig.small(n=24))
    results["gauss_mp"] = r
    r, _ = run_gauss_sm(SmMachine(PARAMS, seed=6), GaussConfig.small(n=24))
    results["gauss_sm"] = r
    em3d_config = Em3dConfig.small(nodes_per_proc=16, degree=3, iterations=3)
    r, _e, _h = run_em3d_mp(MpMachine(PARAMS, seed=6), em3d_config)
    results["em3d_mp"] = r
    r, _e, _h = run_em3d_sm(SmMachine(PARAMS, seed=6), em3d_config)
    results["em3d_sm"] = r
    lcp_config = LcpConfig.small(n=32, tolerance=1e-4)
    r, _z, _s = run_lcp_mp(MpMachine(PARAMS, seed=6), lcp_config)
    results["lcp_mp"] = r
    r, _z, _s = run_lcp_sm(SmMachine(PARAMS, seed=6), lcp_config)
    results["lcp_sm"] = r
    mse_config = MseConfig.small(bodies=8, elements_per_body=3, iterations=4)
    r, _s = run_mse_mp(MpMachine(PARAMS, seed=6), mse_config)
    results["mse_mp"] = r
    r, _s = run_mse_sm(SmMachine(PARAMS, seed=6), mse_config)
    results["mse_sm"] = r
    return results


@pytest.mark.parametrize("app", ["gauss", "em3d", "lcp", "mse"])
def test_computation_cycles_match_across_machines(pairs, app):
    """Same algorithm + same cost model => nearly equal computation.

    (The paper: "the time each pair of programs spent computing was
    very close".) Library/sync bookkeeping differs; pure computation
    must agree within a few percent.
    """
    mp_compute = pairs[f"{app}_mp"].board.mean_cycles(MpCat.COMPUTE)
    sm_compute = pairs[f"{app}_sm"].board.mean_cycles(SmCat.COMPUTE)
    assert mp_compute > 0 and sm_compute > 0
    ratio = mp_compute / sm_compute
    assert 0.85 <= ratio <= 1.25, f"{app}: compute ratio {ratio:.2f}"


@pytest.mark.parametrize(
    "key",
    ["gauss_mp", "gauss_sm", "em3d_mp", "em3d_sm",
     "lcp_mp", "lcp_sm", "mse_mp", "mse_sm"],
)
def test_charged_cycles_track_elapsed_time(pairs, key):
    """Every processor's charged categories approximate its busy life.

    Charged cycles can under-count elapsed (time parked in uncharged
    states is small) and never meaningfully exceed it.
    """
    result = pairs[key]
    elapsed = result.elapsed_cycles
    for proc in result.board.procs:
        total = proc.total_cycles()
        assert total <= 1.05 * elapsed, (
            f"{key} p{proc.pid}: charged {total} > elapsed {elapsed}"
        )
        assert total >= 0.5 * elapsed, (
            f"{key} p{proc.pid}: charged {total} < half of elapsed {elapsed}"
        )


@pytest.mark.parametrize("app", ["gauss", "em3d", "lcp", "mse"])
def test_every_processor_contributes(pairs, app):
    """No processor sits entirely idle in any version."""
    for suffix in ("mp", "sm"):
        board = pairs[f"{app}_{suffix}"].board
        for proc in board.procs:
            assert proc.total_cycles() > 0


def test_mp_machines_report_message_traffic(pairs):
    for app in ("gauss", "em3d", "lcp", "mse"):
        board = pairs[f"{app}_mp"].board
        assert board.total_count("messages_sent") > 0
        assert board.total_count("data_bytes") > 0


def test_sm_machines_report_coherence_traffic(pairs):
    for app in ("gauss", "em3d", "lcp"):
        board = pairs[f"{app}_sm"].board
        misses = board.total_count("shared_misses_remote")
        assert misses > 0
        assert board.total_count("control_bytes") > 0
